//! Fixed-bucket log2 latency histograms.
//!
//! Four process-wide latency families ([`Hist`]) share one bucket layout:
//! bucket `i` holds durations in `[2^i, 2^(i+1))` nanoseconds, with the
//! last bucket open-ended. The hot path is zero-alloc — one
//! `leading_zeros` plus two relaxed atomic adds on the thread-local
//! recorder — and recording is gated on [`active`], so a disabled build
//! costs the usual one-relaxed-load check and no clock read.
//!
//! Buckets merge across ranks by plain addition; the summary sink renders
//! count/p50/p90/p99/max quantile columns and the Prometheus exporter
//! emits the cumulative-bucket form (`_bucket{le=...}`, `_sum`, `_count`).

use crate::recorder;
use crate::trace;

/// Which latency family a sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Wall-clock between successive accepted Krylov iterations.
    IterTime = 0,
    /// Time blocked draining halo receives in a distributed SpMV.
    HaloDrain = 1,
    /// Latency of one blocking reduction (`allreduce`/`allreduce_vec`).
    Collective = 2,
    /// Duration of one level sweep in a scheduled triangular solve.
    SptrsvLevel = 3,
}

/// Number of histogram families.
pub const HIST_COUNT: usize = 4;

/// Number of log2 buckets: `[2^0, 2^1) ns` through `[2^39, ∞) ns` (~9 min),
/// which comfortably spans sub-microsecond level sweeps to stalled solves.
pub const BUCKETS: usize = 40;

/// Every family, in declaration order (render / export order).
pub const ALL: [Hist; HIST_COUNT] =
    [Hist::IterTime, Hist::HaloDrain, Hist::Collective, Hist::SptrsvLevel];

impl Hist {
    /// Stable snake_case name used by the sink and the exporter.
    pub fn name(self) -> &'static str {
        match self {
            Hist::IterTime => "iter_time",
            Hist::HaloDrain => "halo_drain_wait",
            Hist::Collective => "collective",
            Hist::SptrsvLevel => "sptrsv_level",
        }
    }

    #[inline]
    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

/// Bucket index for a duration in nanoseconds.
#[inline]
pub(crate) fn bucket(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        ((63 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Upper edge of bucket `i` in seconds (`+inf` for the last bucket).
pub(crate) fn upper_edge_s(i: usize) -> f64 {
    if i + 1 >= BUCKETS {
        f64::INFINITY
    } else {
        (1u64 << (i + 1)) as f64 * 1e-9
    }
}

/// Whether histogram points should read the clock right now: latency
/// histograms fill whenever spans do — probe enabled, or a causal trace
/// active on this thread (see [`crate::trace`]).
#[inline]
pub fn active() -> bool {
    recorder::enabled() || trace::thread_active()
}

/// Record one duration sample. Callers gate the surrounding clock reads
/// on [`active`]; recording unconditionally here keeps the API usable
/// from tests.
#[inline]
pub fn record_ns(h: Hist, ns: u64) {
    recorder::with_local(|r| r.record_hist(h, ns));
}

/// RAII sample: reads the clock at construction and records the elapsed
/// time on drop. Inert (no clock read) when histograms are not [`active`].
#[must_use = "binding the timer keeps the sample open until end of scope"]
pub struct HistTimer {
    live: Option<(Hist, std::time::Instant)>,
}

impl HistTimer {
    /// Start a sample for family `h` (inert when not [`active`]).
    #[inline]
    pub fn start(h: Hist) -> HistTimer {
        if !active() {
            return HistTimer { live: None };
        }
        HistTimer { live: Some((h, std::time::Instant::now())) }
    }
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        if let Some((h, t0)) = self.live.take() {
            record_ns(h, t0.elapsed().as_nanos() as u64);
        }
    }
}

/// Merged view of one family's buckets: counts, total, and quantiles.
#[derive(Debug, Default, Clone, Copy)]
pub struct HistSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples in seconds.
    pub sum_s: f64,
    /// Median (bucket upper edge containing the 50th percentile).
    pub p50_s: f64,
    /// 90th percentile (bucket upper edge).
    pub p90_s: f64,
    /// 99th percentile (bucket upper edge).
    pub p99_s: f64,
    /// Upper edge of the highest non-empty bucket.
    pub max_s: f64,
}

/// Summarize a bucket array (counts per log2 bucket) into quantiles.
/// Quantiles resolve to the *upper edge* of the containing bucket — a
/// conservative estimate consistent with Prometheus `histogram_quantile`.
pub fn summarize(buckets: &[u64; BUCKETS], sum_ns: u64) -> HistSummary {
    let count: u64 = buckets.iter().sum();
    if count == 0 {
        return HistSummary::default();
    }
    let q = |frac: f64| -> f64 {
        let target = (frac * count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return upper_edge_s(i);
            }
        }
        upper_edge_s(BUCKETS - 1)
    };
    let max_bucket = buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
    HistSummary {
        count,
        sum_s: sum_ns as f64 * 1e-9,
        p50_s: q(0.50),
        p90_s: q(0.90),
        p99_s: q(0.99),
        max_s: upper_edge_s(max_bucket),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_log2() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 0);
        assert_eq!(bucket(2), 1);
        assert_eq!(bucket(3), 1);
        assert_eq!(bucket(1024), 10);
        assert_eq!(bucket(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn upper_edges_are_powers_of_two_with_open_tail() {
        assert_eq!(upper_edge_s(0), 2e-9);
        assert_eq!(upper_edge_s(10), 2048e-9);
        assert!(upper_edge_s(BUCKETS - 1).is_infinite());
    }

    #[test]
    fn summarize_reports_quantiles_from_cumulative_counts() {
        let mut b = [0u64; BUCKETS];
        // 90 samples at ~1µs (bucket 10: [1024, 2048) ns), 10 at ~1ms
        // (bucket 20: [2^20, 2^21) ns).
        b[10] = 90;
        b[20] = 10;
        let s = summarize(&b, 90 * 1500 + 10 * 1_500_000);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_s, upper_edge_s(10));
        assert_eq!(s.p90_s, upper_edge_s(10));
        assert_eq!(s.p99_s, upper_edge_s(20));
        assert_eq!(s.max_s, upper_edge_s(20));
        assert!((s.sum_s - 0.015135).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_summarizes_to_zeros() {
        let s = summarize(&[0u64; BUCKETS], 0);
        assert_eq!(s.count, 0);
        assert_eq!(s.max_s, 0.0);
    }
}
