//! Per-iteration solver monitoring.
//!
//! A [`SolveMonitor`] streams convergence data out of a solve as it
//! happens, instead of the legacy pattern of accumulating a residual
//! history `Vec<f64>` inside the result. The Krylov and direct solvers
//! drive the callbacks; monitor delivery is an explicit caller opt-in and
//! therefore independent of the global probe mode.

use std::io::Write;

/// Callback interface driven by the iterative and direct solvers.
///
/// All methods have default no-op bodies, so implementors override only
/// what they need. `Send` because solves run on SPMD rank threads.
pub trait SolveMonitor: Send {
    /// Called once before iteration 0 with the initial residual norm.
    fn on_start(&mut self, initial_residual: f64) {
        let _ = initial_residual;
    }

    /// Called after each iteration with the current residual norm and the
    /// cumulative number of allreduce collectives this solve has issued.
    fn on_iteration(&mut self, iteration: usize, residual: f64, collectives: u64) {
        let _ = (iteration, residual, collectives);
    }

    /// Called when a named solver phase completes (e.g. `"factorize"`,
    /// `"triangular_solve"`) with its wall-clock duration.
    fn on_phase(&mut self, phase: &'static str, seconds: f64) {
        let _ = (phase, seconds);
    }

    /// Called once when the solve finishes.
    fn on_finish(&mut self, iterations: usize, final_residual: f64, converged: bool) {
        let _ = (iterations, final_residual, converged);
    }
}

/// A monitor that retains everything it is told — the drop-in replacement
/// for reading `KspResult::history` after the fact.
#[derive(Debug, Default)]
pub struct ResidualHistory {
    /// Residual norms: `history[0]` is the initial residual, `history[k]`
    /// the norm after iteration `k`.
    pub history: Vec<f64>,
    /// Cumulative allreduce count reported at each iteration.
    pub collectives: Vec<u64>,
    /// `(phase, seconds)` pairs in completion order.
    pub phases: Vec<(&'static str, f64)>,
    /// Iteration count reported at finish.
    pub iterations: usize,
    /// Final residual norm reported at finish.
    pub final_residual: f64,
    /// Whether the solve converged.
    pub converged: bool,
}

impl ResidualHistory {
    /// New, empty history monitor.
    pub fn new() -> ResidualHistory {
        ResidualHistory::default()
    }
}

impl SolveMonitor for ResidualHistory {
    fn on_start(&mut self, initial_residual: f64) {
        self.history.push(initial_residual);
    }

    fn on_iteration(&mut self, _iteration: usize, residual: f64, collectives: u64) {
        self.history.push(residual);
        self.collectives.push(collectives);
    }

    fn on_phase(&mut self, phase: &'static str, seconds: f64) {
        self.phases.push((phase, seconds));
    }

    fn on_finish(&mut self, iterations: usize, final_residual: f64, converged: bool) {
        self.iterations = iterations;
        self.final_residual = final_residual;
        self.converged = converged;
    }
}

/// A monitor that writes one JSON object per event to a writer (JSON
/// lines), for piping a live solve into external tooling.
pub struct JsonlMonitor<W: Write + Send> {
    out: W,
    /// Optional rank tag included in every line.
    rank: Option<usize>,
}

impl<W: Write + Send> JsonlMonitor<W> {
    /// Stream events to `out`, untagged.
    pub fn new(out: W) -> JsonlMonitor<W> {
        JsonlMonitor { out, rank: None }
    }

    /// Stream events to `out`, tagging each line with `rank`.
    pub fn with_rank(out: W, rank: usize) -> JsonlMonitor<W> {
        JsonlMonitor { out, rank: Some(rank) }
    }

    fn emit(&mut self, body: &str) {
        let mut line = String::from("{");
        if let Some(r) = self.rank {
            line.push_str(&format!("\"rank\":{r},"));
        }
        line.push_str(body);
        line.push('}');
        // A broken pipe must not abort the solve.
        let _ = writeln!(self.out, "{line}");
    }
}

/// Render an `f64` as JSON: finite values verbatim, NaN/inf as `null`.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

impl<W: Write + Send> SolveMonitor for JsonlMonitor<W> {
    fn on_start(&mut self, initial_residual: f64) {
        self.emit(&format!(
            "\"event\":\"start\",\"residual\":{}",
            json_f64(initial_residual)
        ));
    }

    fn on_iteration(&mut self, iteration: usize, residual: f64, collectives: u64) {
        self.emit(&format!(
            "\"event\":\"iteration\",\"iteration\":{iteration},\"residual\":{},\"collectives\":{collectives}",
            json_f64(residual)
        ));
    }

    fn on_phase(&mut self, phase: &'static str, seconds: f64) {
        self.emit(&format!(
            "\"event\":\"phase\",\"phase\":\"{phase}\",\"seconds\":{}",
            json_f64(seconds)
        ));
    }

    fn on_finish(&mut self, iterations: usize, final_residual: f64, converged: bool) {
        self.emit(&format!(
            "\"event\":\"finish\",\"iterations\":{iterations},\"residual\":{},\"converged\":{converged}",
            json_f64(final_residual)
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residual_history_retains_stream() {
        let mut m = ResidualHistory::new();
        m.on_start(10.0);
        m.on_iteration(1, 5.0, 3);
        m.on_iteration(2, 1.0, 6);
        m.on_phase("factorize", 0.25);
        m.on_finish(2, 1.0, true);
        assert_eq!(m.history, vec![10.0, 5.0, 1.0]);
        assert_eq!(m.collectives, vec![3, 6]);
        assert_eq!(m.phases, vec![("factorize", 0.25)]);
        assert_eq!(m.iterations, 2);
        assert!(m.converged);
    }

    #[test]
    fn jsonl_monitor_emits_one_line_per_event() {
        let mut buf = Vec::new();
        {
            let mut m = JsonlMonitor::with_rank(&mut buf, 2);
            m.on_start(8.0);
            m.on_iteration(1, 4.0, 2);
            m.on_finish(1, 4.0, false);
        }
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"rank\":2"));
        assert!(lines[0].contains("\"event\":\"start\""));
        assert!(lines[1].contains("\"collectives\":2"));
        assert!(lines[2].contains("\"converged\":false"));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn non_finite_residuals_become_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert!(json_f64(1.5).contains("1.5"));
    }
}
