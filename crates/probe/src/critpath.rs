//! Critical-path analysis over merged causal traces.
//!
//! [`analyze_latest`] merges every rank's [`crate::trace`] records for
//! the most recent trace id into one happens-before graph and walks it
//! *backward* from the last rank to finish: at each step it finds the
//! latest blocking event — a matched receive whose sender had not yet
//! posted when the receive was, or a collective some other rank entered
//! last — jumps to the rank that released the block, and attributes the
//! interval in between. The result decomposes end-to-end solve
//! wall-clock into **local** (computing on the critical rank),
//! **wait-on-peer** (blocked on a named rank's send), and **collective**
//! (everyone arrived; the reduction itself) segments, and names the
//! top-k blocking edges.
//!
//! Per-rank totals reported alongside the path reuse the same records as
//! the summary sink's wait-time attribution table — phase events share
//! the span table's clock reads — so the two views reconcile.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::recorder;
use crate::trace::{TraceKind, TraceRecord};

/// Per-rank totals over the whole traced solve, mirroring the columns of
/// the summary sink's wait-time attribution table.
#[derive(Debug, Clone, Copy)]
pub struct RankTotals {
    /// SPMD rank.
    pub rank: usize,
    /// Seconds in the halo exchange (`halo_post` + `halo_drain` phases).
    pub halo_wait_s: f64,
    /// Seconds in blocking reductions (indexed collectives).
    pub reduce_s: f64,
    /// Seconds in local SpMV compute (`spmv_interior` + `spmv_boundary`).
    pub compute_s: f64,
}

/// What one critical-path segment was doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// The critical rank was computing (or otherwise locally busy).
    Local,
    /// The critical rank sat blocked waiting for a peer's send.
    Wait,
    /// The cohort was inside a collective (last rank already arrived).
    Collective,
}

/// One contiguous interval on the critical path.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Rank the path ran on during this interval.
    pub rank: usize,
    /// What the rank was doing.
    pub kind: SegmentKind,
    /// Interval length in seconds.
    pub seconds: f64,
}

/// One blocking edge: `waiter` sat on the critical path blocked until
/// `holder` released it.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Rank that was blocked.
    pub waiter: usize,
    /// Rank whose send / collective arrival released the block.
    pub holder: usize,
    /// Seconds the critical path spent blocked on this edge.
    pub seconds: f64,
    /// Human-readable cause (`"p2p seq 37"`, `"allreduce #81"`).
    pub via: String,
}

/// A complete critical-path decomposition of one traced solve.
#[derive(Debug, Clone)]
pub struct CritPath {
    /// Trace id the analysis covers.
    pub trace: u64,
    /// Per-rank totals (reconcile with the wait-attribution table).
    pub ranks: Vec<RankTotals>,
    /// Last `End` minus first `Begin` across ranks, in seconds.
    pub end_to_end_s: f64,
    /// Path segments in chronological order.
    pub segments: Vec<Segment>,
    /// Blocking edges, largest first.
    pub edges: Vec<Edge>,
}

impl CritPath {
    /// Summed seconds of all path segments of one kind.
    pub fn kind_seconds(&self, kind: SegmentKind) -> f64 {
        self.segments.iter().filter(|s| s.kind == kind).map(|s| s.seconds).sum()
    }

    /// Summed seconds of all path segments (ideally ≈ `end_to_end_s`).
    pub fn covered_s(&self) -> f64 {
        self.segments.iter().map(|s| s.seconds).sum()
    }
}

const NS: f64 = 1e-9;

/// Halo-exchange phases (must match the sink's `WAIT_SPANS` halo rows).
const HALO_PHASES: [&str; 2] = ["halo_post", "halo_drain"];

/// Local-compute phases (must match the sink's `COMPUTE_SPANS`).
const COMPUTE_PHASES: [&str; 2] = ["spmv_interior", "spmv_boundary"];

/// Collect every ranked recorder's records for the most recent trace id.
fn latest_trace() -> Option<(u64, BTreeMap<usize, Vec<TraceRecord>>)> {
    let recorders = recorder::all_recorders();
    let mut latest = 0u64;
    let mut per_rank: BTreeMap<usize, Vec<TraceRecord>> = BTreeMap::new();
    for r in &recorders {
        let Some(rank) = r.rank() else { continue };
        for rec in r.trace_snapshot() {
            latest = latest.max(rec.trace);
            per_rank.entry(rank).or_default().push(rec);
        }
    }
    if latest == 0 {
        return None;
    }
    for recs in per_rank.values_mut() {
        recs.retain(|r| r.trace == latest);
        recs.sort_by_key(|r| (r.t1_ns, r.t0_ns));
    }
    per_rank.retain(|_, recs| !recs.is_empty());
    Some((latest, per_rank))
}

/// Analyze the most recent trace found in the recorder registry.
/// `None` when no ranked thread recorded any trace (tracing disarmed).
pub fn analyze_latest() -> Option<CritPath> {
    let (trace, per_rank) = latest_trace()?;
    Some(analyze(trace, &per_rank))
}

fn analyze(trace: u64, per_rank: &BTreeMap<usize, Vec<TraceRecord>>) -> CritPath {
    // Per-rank totals from phase/collective durations.
    let mut ranks: Vec<RankTotals> = Vec::new();
    for (&rank, recs) in per_rank {
        let mut t = RankTotals { rank, halo_wait_s: 0.0, reduce_s: 0.0, compute_s: 0.0 };
        for r in recs {
            let dur = (r.t1_ns - r.t0_ns) as f64 * NS;
            match r.kind {
                TraceKind::Phase { name } if HALO_PHASES.contains(&name) => t.halo_wait_s += dur,
                TraceKind::Phase { name } if COMPUTE_PHASES.contains(&name) => t.compute_s += dur,
                TraceKind::Collective { .. } => t.reduce_s += dur,
                _ => {}
            }
        }
        ranks.push(t);
    }

    // Index sends by (sender, seq) and collectives by index.
    let mut sends: BTreeMap<(usize, u64), u64> = BTreeMap::new();
    let mut collectives: BTreeMap<u64, Vec<(usize, u64, u64)>> = BTreeMap::new();
    let mut begin: BTreeMap<usize, u64> = BTreeMap::new();
    let mut end: BTreeMap<usize, u64> = BTreeMap::new();
    for (&rank, recs) in per_rank {
        for r in recs {
            match r.kind {
                TraceKind::Send { seq, .. } => {
                    sends.insert((rank, seq), r.t0_ns);
                }
                TraceKind::Collective { index, .. } => {
                    collectives.entry(index).or_default().push((rank, r.t0_ns, r.t1_ns));
                }
                TraceKind::Begin => {
                    begin.insert(rank, r.t0_ns);
                }
                TraceKind::End => {
                    end.insert(rank, r.t1_ns);
                }
                _ => {}
            }
        }
    }
    let first_begin = begin.values().copied().min().unwrap_or(0);
    let last_end = end.values().copied().max().unwrap_or(first_begin);
    let end_to_end_s = last_end.saturating_sub(first_begin) as f64 * NS;

    // Backward walk from the last-finishing rank.
    let mut segments: Vec<Segment> = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    let (mut cur, mut t) = end
        .iter()
        .max_by_key(|(_, &t1)| t1)
        .map(|(&r, &t1)| (r, t1))
        .unwrap_or((0, first_begin));
    let mut push_seg = |rank: usize, kind: SegmentKind, ns: u64| {
        if ns > 0 {
            segments.push(Segment { rank, kind, seconds: ns as f64 * NS });
        }
    };
    'walk: for _ in 0..100_000 {
        let Some(recs) = per_rank.get(&cur) else { break };
        // Latest blocking event on `cur` ending at or before `t`.
        let hi = recs.partition_point(|r| r.t1_ns <= t);
        for r in recs[..hi].iter().rev() {
            match r.kind {
                TraceKind::Recv { peer, src_seq, .. } if src_seq != 0 => {
                    let Some(&send_t0) = sends.get(&(peer, src_seq)) else { continue };
                    if send_t0 <= r.t0_ns {
                        // Message was already posted when the receive
                        // was: the receive did not shape the path.
                        continue;
                    }
                    push_seg(cur, SegmentKind::Local, t - r.t1_ns);
                    let wait = r.t1_ns - send_t0.max(r.t0_ns);
                    push_seg(cur, SegmentKind::Wait, wait);
                    edges.push(Edge {
                        waiter: cur,
                        holder: peer,
                        seconds: wait as f64 * NS,
                        via: format!("p2p seq {src_seq}"),
                    });
                    cur = peer;
                    t = send_t0;
                    continue 'walk;
                }
                TraceKind::Collective { op, index } => {
                    let Some(group) = collectives.get(&index) else { continue };
                    let &(last, last_t0, _) =
                        group.iter().max_by_key(|&&(_, t0, _)| t0).unwrap();
                    if last == cur {
                        // This rank arrived last: the collective itself
                        // (not a peer) occupied the path.
                        push_seg(cur, SegmentKind::Local, t - r.t1_ns);
                        push_seg(cur, SegmentKind::Collective, r.t1_ns - r.t0_ns);
                        t = r.t0_ns;
                        continue 'walk;
                    }
                    push_seg(cur, SegmentKind::Local, t - r.t1_ns);
                    let wait = r.t1_ns.saturating_sub(last_t0.max(r.t0_ns));
                    push_seg(cur, SegmentKind::Wait, wait);
                    edges.push(Edge {
                        waiter: cur,
                        holder: last,
                        seconds: wait as f64 * NS,
                        via: format!("{op} #{index}"),
                    });
                    cur = last;
                    t = last_t0;
                    continue 'walk;
                }
                _ => {}
            }
        }
        // No blocking event left: local work back to this rank's Begin.
        let b = begin.get(&cur).copied().unwrap_or(first_begin);
        push_seg(cur, SegmentKind::Local, t.saturating_sub(b));
        break;
    }
    segments.reverse();
    edges.sort_by(|a, b| b.seconds.total_cmp(&a.seconds));

    CritPath { trace, ranks, end_to_end_s, segments, edges }
}

/// Render a [`CritPath`] as the text block the drivers append to the
/// probe summary.
pub fn render(cp: &CritPath) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== critical path (trace {}, {} ranks) ==",
        cp.trace,
        cp.ranks.len()
    );
    let covered = cp.covered_s();
    let cover_pct =
        if cp.end_to_end_s > 0.0 { 100.0 * covered / cp.end_to_end_s } else { 0.0 };
    let _ = writeln!(
        out,
        "  end-to-end {:.6} s; path covers {:.1}% in {} segments",
        cp.end_to_end_s,
        cover_pct,
        cp.segments.len()
    );
    let local = cp.kind_seconds(SegmentKind::Local);
    let wait = cp.kind_seconds(SegmentKind::Wait);
    let coll = cp.kind_seconds(SegmentKind::Collective);
    if covered > 0.0 {
        let _ = writeln!(
            out,
            "  attribution: local {:.1}%  wait-on-peer {:.1}%  collective {:.1}%",
            100.0 * local / covered,
            100.0 * wait / covered,
            100.0 * coll / covered
        );
    }
    let _ = writeln!(
        out,
        "  per-rank totals (cf. wait attribution table):"
    );
    let _ = writeln!(
        out,
        "  {:<10} {:>14} {:>14} {:>14}",
        "rank", "halo wait (s)", "reduce (s)", "compute (s)"
    );
    for r in &cp.ranks {
        let _ = writeln!(
            out,
            "  {:<10} {:>14.6} {:>14.6} {:>14.6}",
            format!("rank {}", r.rank),
            r.halo_wait_s,
            r.reduce_s,
            r.compute_s
        );
    }
    if !cp.edges.is_empty() {
        let _ = writeln!(out, "  top blocking edges:");
        for (i, e) in cp.edges.iter().take(5).enumerate() {
            let _ = writeln!(
                out,
                "   {}. rank {} waited {:.6} s on rank {} ({})",
                i + 1,
                e.waiter,
                e.seconds,
                e.holder,
                e.via
            );
        }
    }
    out
}

/// Render the latest trace's critical path, or `""` when none exists.
pub fn render_latest() -> String {
    analyze_latest().map(|cp| render(&cp)).unwrap_or_default()
}

fn json_f64(v: f64) -> String {
    if v.is_finite() { format!("{v:e}") } else { "null".into() }
}

/// Compact JSON summary of a [`CritPath`] (embedded in postmortems).
pub fn summary_json(cp: &CritPath) -> String {
    let mut out = format!(
        "{{\"trace\":{},\"end_to_end_s\":{},\"local_s\":{},\"wait_s\":{},\"collective_s\":{},\"per_rank\":[",
        cp.trace,
        json_f64(cp.end_to_end_s),
        json_f64(cp.kind_seconds(SegmentKind::Local)),
        json_f64(cp.kind_seconds(SegmentKind::Wait)),
        json_f64(cp.kind_seconds(SegmentKind::Collective)),
    );
    for (i, r) in cp.ranks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rank\":{},\"halo_wait_s\":{},\"reduce_s\":{},\"compute_s\":{}}}",
            r.rank,
            json_f64(r.halo_wait_s),
            json_f64(r.reduce_s),
            json_f64(r.compute_s)
        );
    }
    out.push_str("],\"top_edges\":[");
    for (i, e) in cp.edges.iter().take(5).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"waiter\":{},\"holder\":{},\"seconds\":{},\"via\":\"{}\"}}",
            e.waiter,
            e.holder,
            json_f64(e.seconds),
            e.via
        );
    }
    out.push_str("]}");
    out
}

/// JSON summary of the latest trace's critical path (`"null"` when no
/// trace was recorded).
pub fn latest_json() -> String {
    analyze_latest().map(|cp| summary_json(&cp)).unwrap_or_else(|| "null".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace: u64, t0: u64, t1: u64, kind: TraceKind) -> TraceRecord {
        TraceRecord { trace, t0_ns: t0, t1_ns: t1, kind }
    }

    /// Two ranks: rank 1 computes 100ns then sends; rank 0 posts its recv
    /// at 20ns and blocks until the send lands at 110ns; both finish via
    /// a collective that rank 1 enters last.
    fn two_rank_trace() -> BTreeMap<usize, Vec<TraceRecord>> {
        let mut m = BTreeMap::new();
        m.insert(
            0,
            vec![
                rec(1, 0, 0, TraceKind::Begin),
                rec(1, 0, 20, TraceKind::Phase { name: "spmv_interior" }),
                rec(1, 20, 110, TraceKind::Recv { peer: 1, src_seq: 1, bytes: 8 }),
                rec(1, 20, 110, TraceKind::Phase { name: "halo_drain" }),
                rec(1, 110, 150, TraceKind::Collective { op: "allreduce", index: 1 }),
                rec(1, 150, 150, TraceKind::End),
            ],
        );
        m.insert(
            1,
            vec![
                rec(1, 0, 0, TraceKind::Begin),
                rec(1, 0, 100, TraceKind::Phase { name: "spmv_interior" }),
                rec(
                    1,
                    100,
                    100,
                    TraceKind::Send { peer: 0, seq: 1, bytes: 8, phase: "halo_post" },
                ),
                rec(1, 120, 150, TraceKind::Collective { op: "allreduce", index: 1 }),
                rec(1, 150, 150, TraceKind::End),
            ],
        );
        for recs in m.values_mut() {
            recs.sort_by_key(|r: &TraceRecord| (r.t1_ns, r.t0_ns));
        }
        m
    }

    #[test]
    fn walk_crosses_the_blocking_send_and_names_the_edge() {
        let cp = analyze(1, &two_rank_trace());
        assert_eq!(cp.end_to_end_s, 150.0 * NS);
        // Rank 1 entered the collective last (t0 = 120 vs rank 0's 110),
        // so the path ends on a collective segment from rank 1's side and
        // crosses to rank 0... no — the walk starts at the latest End
        // (tie → rank 1 by max_by_key keeping the later entry) and the
        // collective resolves to rank 1 itself, then the send edge pulls
        // the path onto rank 1's compute. Either way the p2p edge from
        // rank 0's recv appears only if the walk passes rank 0; assert
        // the robust invariants instead of one exact path shape.
        assert!(cp.covered_s() > 0.0);
        assert!(cp.covered_s() <= cp.end_to_end_s + 1e-12);
        // Totals reconcile with the phase durations we injected.
        let r0 = cp.ranks.iter().find(|r| r.rank == 0).unwrap();
        assert!((r0.halo_wait_s - 90.0 * NS).abs() < 1e-15);
        assert!((r0.reduce_s - 40.0 * NS).abs() < 1e-15);
        assert!((r0.compute_s - 20.0 * NS).abs() < 1e-15);
        let r1 = cp.ranks.iter().find(|r| r.rank == 1).unwrap();
        assert!((r1.compute_s - 100.0 * NS).abs() < 1e-15);
        assert!((r1.reduce_s - 30.0 * NS).abs() < 1e-15);
    }

    #[test]
    fn walk_from_rank0_crosses_to_the_sender() {
        // Make rank 0 finish last so the walk starts there.
        let mut m = two_rank_trace();
        for r in m.get_mut(&0).unwrap() {
            if matches!(r.kind, TraceKind::End) {
                r.t0_ns = 160;
                r.t1_ns = 160;
            }
        }
        m.get_mut(&0).unwrap().sort_by_key(|r| (r.t1_ns, r.t0_ns));
        let cp = analyze(1, &m);
        // Path: rank 0 end ← collective (rank 1 last) ← rank 1 compute
        // ← ... the collective edge names rank 1 as holder.
        assert!(
            cp.edges.iter().any(|e| e.waiter == 0 && e.holder == 1),
            "expected a rank0-waits-on-rank1 edge, got {:?}",
            cp.edges
        );
        let json = summary_json(&cp);
        assert!(json.contains("\"per_rank\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
        let rendered = render(&cp);
        assert!(rendered.contains("critical path"));
        assert!(rendered.contains("top blocking edges"));
    }
}
