//! `probe` — per-rank structured tracing and metrics for the CCA-LISI
//! reproduction.
//!
//! The paper's entire evaluation (Figure 5, Table 1) is an
//! overhead-accounting exercise: proving the CCA component layer adds only
//! a small constant cost over the native solver libraries. This crate is
//! the measurement substrate that makes such claims first-class instead of
//! ad-hoc stopwatch plumbing:
//!
//! * **Scoped spans** with nesting and wall-clock accumulation —
//!   `let _s = probe::span!("halo_exchange");` — tracking both *total*
//!   (inclusive) and *self* (exclusive of children) time per span name.
//!   The self-time of the `port:*` spans recorded by the LISI component
//!   shim **is** the paper's component-layer overhead, measured by the
//!   framework itself.
//! * **Typed counters** ([`Counter`]): collective calls, bytes moved,
//!   halo messages, steady-state allocations, matvec/apply counts,
//!   port-call counts. Counters are always-on relaxed atomics.
//! * **[`SolveMonitor`]** — a per-iteration callback trait the iterative
//!   and direct solvers drive, streaming residual history, collective
//!   counts and per-phase timings out of the solve instead of returning
//!   post-hoc `Vec<f64>`s.
//! * **Sinks**: a human-readable per-rank summary table (Table-1-style
//!   setup/solve breakdown), JSON lines, and a chrome://tracing
//!   (`trace_event`) JSON export for timeline inspection.
//!
//! # Runtime control
//!
//! The global mode comes from the `RSPARSE_PROBE` environment variable
//! (`off`, `summary`, `json`, `chrome`, `flight`; default off) or
//! programmatically via [`set_mode`]. The LISI port also accepts
//! `set("probe", "<mode>")`. Independently of the mode, the [`flight`]
//! recorder — a bounded per-thread ring of recent comm/solver/fault
//! events — is always on unless `RSPARSE_FLIGHT=off`; it is the black
//! box the postmortem writer drains when a solve fails.
//! When the probe is off, a span costs one relaxed atomic load and no
//! allocation — verified by the `probe_overhead` bench guard — while
//! counters keep counting (they are the near-zero-cost part by design).
//!
//! # Ranks
//!
//! Recording is per OS thread; the SPMD launcher calls [`set_rank`] on
//! every rank thread it spawns, so reports group naturally by rank.
//! [`aggregate`] merges every recorder created since the last [`reset`],
//! combining recorders that share a rank (e.g. across repeated
//! `Universe::run` launches).
//!
//! # Causality and export
//!
//! Three layers answer *why* a solve was slow rather than just *where*
//! the time went: [`trace`] propagates a per-solve trace context and
//! stamps every p2p message and collective so a post-solve merge
//! reconstructs the cross-rank happens-before graph — armed via
//! `RSPARSE_TRACE` or `set("trace", "on")`, one relaxed load when off;
//! [`critpath`] walks that graph backward and attributes end-to-end
//! wall-clock to local / wait-on-rank-r / collective segments, naming
//! the top blocking edges; [`hist`] keeps zero-alloc log2 latency
//! histograms (per-iteration time, halo-drain wait, collective latency,
//! sptrsv level sweeps) rendered as quantile columns in the summary
//! sink. [`export`] serves all of it — counters, span totals,
//! histograms — as Prometheus text over localhost TCP
//! (`RSPARSE_METRICS_ADDR`; default off) or as a one-shot
//! [`export::snapshot`] string.

#![warn(missing_docs)]

mod counter;
pub mod critpath;
pub mod export;
pub mod flight;
pub mod hist;
pub mod ledger;
pub mod model;
mod monitor;
mod recorder;
mod sink;
mod span;
pub mod trace;

pub use counter::{add, get, incr, Counter};
pub use model::{KernelEfficiency, KernelModel, Roofline, TimeBase, WorkUnit};
pub use monitor::{JsonlMonitor, ResidualHistory, SolveMonitor};
pub use recorder::{
    enabled, mode, mode_from_env, note, reset, reset_epoch, set_forced, set_mode, set_rank,
    PeerStat, ProbeMode,
};
pub use sink::{
    aggregate, chrome_trace_json, comm_matrix, kernel_efficiency_json, local_report,
    render_breakdown, render_comm_matrix, render_flight, render_imbalance, render_jsonl,
    render_summary, render_wait_attribution, write_chrome_trace, CommMatrix, RankReport,
    SpanSummary,
};
pub use span::{timed, SectionTimer, SpanGuard};

/// Account one posted p2p send to `peer` (a world rank) on this thread.
/// Always-on like the counters: the rank×rank communication matrix is
/// built from these and must reconcile exactly against
/// `SendsPosted`/`BytesSent`.
#[inline]
pub fn peer_send(peer: usize, bytes: u64) {
    recorder::with_local(|r| r.peer_send(peer, bytes));
}

/// Account one completed p2p receive from `peer` (a world rank) on this
/// thread; mirrors `RecvsCompleted`/`BytesReceived`.
#[inline]
pub fn peer_recv(peer: usize, bytes: u64) {
    recorder::with_local(|r| r.peer_recv(peer, bytes));
}

/// Open a scoped span: records wall-clock time under `$name` (a `&'static
/// str`) from here to the end of the enclosing scope, attributing the
/// elapsed time to any enclosing span's child total. Bind the guard —
/// `let _span = probe::span!("halo_drain");` — or it closes immediately.
///
/// When the probe is disabled this is a single relaxed atomic load and an
/// inert guard: no clock read, no allocation.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

/// Emit one pre-formatted JSON line to stderr when the probe mode is
/// [`ProbeMode::Json`]. Layers that stream structured events as they
/// happen (e.g. the resilient solver's per-attempt records) use this so
/// `RSPARSE_PROBE=json` shows the event stream alongside the rank
/// reports; in every other mode the call is a single mode check.
pub fn emit_jsonl(line: &str) {
    if mode() == ProbeMode::Json {
        eprintln!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tests that flip the global mode must not interleave.
    static MODE_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn mode_parses_all_spellings() {
        assert_eq!(ProbeMode::parse("off"), Some(ProbeMode::Off));
        assert_eq!(ProbeMode::parse(""), Some(ProbeMode::Off));
        assert_eq!(ProbeMode::parse("0"), Some(ProbeMode::Off));
        assert_eq!(ProbeMode::parse("summary"), Some(ProbeMode::Summary));
        assert_eq!(ProbeMode::parse("SUMMARY"), Some(ProbeMode::Summary));
        assert_eq!(ProbeMode::parse("json"), Some(ProbeMode::Json));
        assert_eq!(ProbeMode::parse("jsonl"), Some(ProbeMode::Json));
        assert_eq!(ProbeMode::parse("chrome"), Some(ProbeMode::Chrome));
        assert_eq!(ProbeMode::parse("trace"), Some(ProbeMode::Chrome));
        assert_eq!(ProbeMode::parse("flight"), Some(ProbeMode::Flight));
        assert_eq!(ProbeMode::parse("blackbox"), Some(ProbeMode::Flight));
        assert_eq!(ProbeMode::parse("bogus"), None);
        for m in [
            ProbeMode::Off,
            ProbeMode::Summary,
            ProbeMode::Json,
            ProbeMode::Chrome,
            ProbeMode::Flight,
        ] {
            assert_eq!(ProbeMode::parse(m.name()), Some(m));
        }
    }

    #[test]
    fn counters_accumulate_on_this_thread() {
        let _g = locked();
        reset();
        let before = get(Counter::HaloMessages);
        add(Counter::HaloMessages, 3);
        incr(Counter::HaloMessages);
        assert_eq!(get(Counter::HaloMessages), before + 4);
        let report = local_report();
        assert_eq!(report.counter(Counter::HaloMessages), before + 4);
    }

    #[test]
    fn spans_nest_and_split_self_time() {
        let _g = locked();
        reset();
        set_mode(ProbeMode::Summary);
        {
            let _outer = span!("outer");
            std::thread::sleep(std::time::Duration::from_millis(4));
            {
                let _inner = span!("inner");
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
        }
        set_mode(ProbeMode::Off);
        let report = local_report();
        let outer = report.span("outer").expect("outer recorded");
        let inner = report.span("inner").expect("inner recorded");
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        // Outer's total covers inner; outer's self excludes it.
        assert!(outer.total_s >= inner.total_s);
        assert!(outer.self_s <= outer.total_s - inner.total_s + 1e-6);
        assert!(inner.self_s > 0.0);
        reset();
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = locked();
        reset();
        set_mode(ProbeMode::Off);
        {
            let _s = span!("ghost");
        }
        assert!(local_report().span("ghost").is_none());
    }

    #[test]
    fn section_timer_returns_seconds_even_when_disabled() {
        let _g = locked();
        reset();
        set_mode(ProbeMode::Off);
        let t = SectionTimer::start("always_timed");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let secs = t.stop();
        assert!(secs >= 0.001);
        // Disabled: timing is returned to the caller but no span recorded.
        assert!(local_report().span("always_timed").is_none());

        set_mode(ProbeMode::Summary);
        let (value, secs) = timed("timed_closure", || 41 + 1);
        set_mode(ProbeMode::Off);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
        assert_eq!(local_report().span("timed_closure").unwrap().calls, 1);
        reset();
    }

    #[test]
    fn notes_flow_through_reports_and_sinks() {
        let _g = locked();
        reset();
        note("format", "sell");
        note("format", "bcsr"); // last write wins
        add(Counter::FormatChosenBcsr, 1);
        let report = local_report();
        assert_eq!(report.note("format"), Some("bcsr"));
        assert_eq!(report.counter(Counter::FormatChosenBcsr), 1);
        let summary = render_summary(std::slice::from_ref(&report));
        assert!(summary.contains("notes:"), "missing notes block:\n{summary}");
        assert!(summary.contains("format"));
        assert!(summary.contains("bcsr"));
        assert!(summary.contains("format_chosen_bcsr"));
        let jsonl = render_jsonl(std::slice::from_ref(&report));
        assert!(jsonl.contains("\"notes\":{\"format\":\"bcsr\"}"), "{jsonl}");
        reset();
        assert_eq!(local_report().note("format"), None);
    }

    #[test]
    fn aggregate_merges_recorders_by_rank() {
        let _g = locked();
        reset();
        set_mode(ProbeMode::Summary);
        // Two waves of threads with the same ranks, as repeated SPMD
        // launches produce.
        for _wave in 0..2 {
            let handles: Vec<_> = (0..3)
                .map(|rank| {
                    std::thread::spawn(move || {
                        set_rank(rank);
                        add(Counter::Allreduces, (rank + 1) as u64);
                        let _s = span!("work");
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        }
        set_mode(ProbeMode::Off);
        let reports = aggregate();
        let ranked: Vec<&RankReport> =
            reports.iter().filter(|r| r.rank.is_some()).collect();
        assert_eq!(ranked.len(), 3);
        for (i, r) in ranked.iter().enumerate() {
            assert_eq!(r.rank, Some(i));
            assert_eq!(r.counter(Counter::Allreduces), 2 * (i + 1) as u64);
            assert_eq!(r.span("work").unwrap().calls, 2);
        }
        reset();
    }

    #[test]
    fn comm_matrix_and_imbalance_render_from_peer_accounting() {
        let _g = locked();
        reset();
        set_mode(ProbeMode::Summary);
        let handles: Vec<_> = (0..3usize)
            .map(|rank| {
                std::thread::spawn(move || {
                    set_rank(rank);
                    // Ring pattern: each rank sends 2 msgs of 8 bytes to
                    // the next rank and receives 2 from the previous.
                    let next = (rank + 1) % 3;
                    let prev = (rank + 2) % 3;
                    peer_send(next, 8);
                    peer_send(next, 8);
                    peer_recv(prev, 8);
                    peer_recv(prev, 8);
                    add(Counter::SendsPosted, 2);
                    add(Counter::BytesSent, 16);
                    let _s = span!("work");
                    std::thread::sleep(std::time::Duration::from_millis(1 + rank as u64));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_mode(ProbeMode::Off);
        let reports = aggregate();
        let m = comm_matrix(&reports);
        assert_eq!(m.ranks, vec![0, 1, 2]);
        for (i, row) in m.msgs.iter().enumerate() {
            assert_eq!(row.iter().sum::<u64>(), 2, "row {i} total");
            assert_eq!(m.bytes[i].iter().sum::<u64>(), 16);
            // Column totals match the receive side of the ring.
            let col: u64 = m.msgs.iter().map(|r| r[i]).sum();
            assert_eq!(col, 2, "col {i} total");
        }
        let rendered = render_comm_matrix(&reports);
        assert!(rendered.contains("comm matrix"));
        assert!(rendered.contains("2/16"));
        let imb = render_imbalance(&reports);
        assert!(imb.contains("cross-rank span imbalance"));
        assert!(imb.contains("work"));
        assert!(imb.contains("max/mean"));
        // The summary embeds both sections.
        let summary = render_summary(&reports);
        assert!(summary.contains("comm matrix"));
        assert!(summary.contains("span imbalance"));
        reset();
    }

    #[test]
    fn breakdown_appends_imbalance_rows_for_multirank_reports() {
        let _g = locked();
        reset();
        set_mode(ProbeMode::Summary);
        let handles: Vec<_> = (0..2usize)
            .map(|rank| {
                std::thread::spawn(move || {
                    set_rank(rank);
                    let t = SectionTimer::start("cca_solve");
                    std::thread::sleep(std::time::Duration::from_millis(1 + 2 * rank as u64));
                    t.stop();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_mode(ProbeMode::Off);
        let table = render_breakdown(&aggregate());
        for label in ["min", "mean", "max", "imbalance"] {
            assert!(table.contains(label), "missing {label} row:\n{table}");
        }
        reset();
    }

    #[test]
    fn chrome_trace_is_loadable_json_shape() {
        let _g = locked();
        reset();
        set_mode(ProbeMode::Chrome);
        {
            let _s = span!("traced");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        set_mode(ProbeMode::Off);
        let json = chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"name\":\"traced\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":"));
        assert!(json.contains("\"dur\":"));
        // Balanced braces/brackets — cheap structural sanity without a
        // JSON parser dependency.
        let (mut braces, mut brackets) = (0i64, 0i64);
        for c in json.chars() {
            match c {
                '{' => braces += 1,
                '}' => braces -= 1,
                '[' => brackets += 1,
                ']' => brackets -= 1,
                _ => {}
            }
        }
        assert_eq!((braces, brackets), (0, 0));
        reset();
    }

    #[test]
    fn renderers_produce_rank_rows() {
        let _g = locked();
        reset();
        set_mode(ProbeMode::Summary);
        let handles: Vec<_> = (0..2)
            .map(|rank| {
                std::thread::spawn(move || {
                    set_rank(rank);
                    add(Counter::PortCalls, 5);
                    let t = SectionTimer::start("lisi_solve");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    t.stop();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_mode(ProbeMode::Off);
        let reports = aggregate();
        let summary = render_summary(&reports);
        assert!(summary.contains("rank 0"));
        assert!(summary.contains("rank 1"));
        assert!(summary.contains("lisi_solve"));
        assert!(summary.contains("port_calls"));
        let table = render_breakdown(&reports);
        assert!(table.contains("rank"));
        assert!(table.contains("port"));
        let jsonl = render_jsonl(&reports);
        assert_eq!(jsonl.trim().lines().count(), reports.len());
        for line in jsonl.trim().lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        reset();
    }
}
