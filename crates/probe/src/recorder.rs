//! Per-thread recorders, the global registry, and the probe mode.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::counter::{Counter, COUNTER_COUNT};
use crate::flight::{FlightRecord, FlightRing};
use crate::hist::{self, Hist, BUCKETS, HIST_COUNT};
use crate::trace::{self, TraceRecord};

// ---------------------------------------------------------------------------
// Probe mode
// ---------------------------------------------------------------------------

/// What the probe records and where it reports.
///
/// Counters are always on; the mode controls span timing and which sink
/// the top-level binaries drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ProbeMode {
    /// Spans disabled (one relaxed load per span site); counters only.
    Off = 0,
    /// Spans on; binaries print the per-rank summary/breakdown tables.
    Summary = 1,
    /// Spans on; binaries print one JSON object per rank (JSON lines).
    Json = 2,
    /// Spans on and every span also records a chrome://tracing event.
    Chrome = 3,
    /// Spans on; binaries dump the flight-recorder event tails per rank.
    Flight = 4,
}

impl ProbeMode {
    /// Parse a mode from an env-var or `set("probe", ...)` value.
    /// Case-insensitive; returns `None` for unrecognized spellings.
    pub fn parse(s: &str) -> Option<ProbeMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "off" | "0" | "none" | "false" => Some(ProbeMode::Off),
            "summary" | "table" | "1" | "on" | "true" => Some(ProbeMode::Summary),
            "json" | "jsonl" => Some(ProbeMode::Json),
            "chrome" | "trace" => Some(ProbeMode::Chrome),
            "flight" | "blackbox" => Some(ProbeMode::Flight),
            _ => None,
        }
    }

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ProbeMode::Off => "off",
            ProbeMode::Summary => "summary",
            ProbeMode::Json => "json",
            ProbeMode::Chrome => "chrome",
            ProbeMode::Flight => "flight",
        }
    }

    fn from_u8(v: u8) -> ProbeMode {
        match v {
            1 => ProbeMode::Summary,
            2 => ProbeMode::Json,
            3 => ProbeMode::Chrome,
            4 => ProbeMode::Flight,
            _ => ProbeMode::Off,
        }
    }
}

/// Sentinel meaning "not yet initialized from the environment".
const MODE_UNSET: u8 = u8::MAX;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

/// Read the `RSPARSE_PROBE` environment variable (unrecognized or unset
/// values mean [`ProbeMode::Off`]).
pub fn mode_from_env() -> ProbeMode {
    std::env::var("RSPARSE_PROBE")
        .ok()
        .and_then(|v| ProbeMode::parse(&v))
        .unwrap_or(ProbeMode::Off)
}

/// Current global probe mode, lazily initialized from `RSPARSE_PROBE` on
/// first use.
#[inline]
pub fn mode() -> ProbeMode {
    let raw = MODE.load(Ordering::Relaxed);
    if raw == MODE_UNSET {
        let m = mode_from_env();
        // Racing initializers compute the same value; either store wins.
        let _ = MODE.compare_exchange(MODE_UNSET, m as u8, Ordering::Relaxed, Ordering::Relaxed);
        m
    } else {
        ProbeMode::from_u8(raw)
    }
}

/// Set the global probe mode (overrides the environment).
pub fn set_mode(m: ProbeMode) {
    MODE.store(m as u8, Ordering::Relaxed);
}

/// Collection forced on independently of the mode (see [`set_forced`]).
static FORCED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Force span collection on regardless of the probe mode. The solve
/// ledger sets this when armed: a ledger needs span timings to join its
/// work models against even when no probe *sink* was requested. Purely
/// additive — it never turns an explicitly chosen mode off.
pub fn set_forced(on: bool) {
    FORCED.store(on, Ordering::Relaxed);
}

/// Whether span timing is currently active (`mode() != Off`, or forced
/// on by an armed solve ledger).
#[inline]
pub fn enabled() -> bool {
    // Single relaxed load on the hot path once initialized.
    let raw = MODE.load(Ordering::Relaxed);
    if raw == MODE_UNSET {
        return mode() != ProbeMode::Off || FORCED.load(Ordering::Relaxed);
    }
    raw != ProbeMode::Off as u8 || FORCED.load(Ordering::Relaxed)
}

#[inline]
pub(crate) fn chrome_enabled() -> bool {
    MODE.load(Ordering::Relaxed) == ProbeMode::Chrome as u8
}

// ---------------------------------------------------------------------------
// Epoch & chrome event budget
// ---------------------------------------------------------------------------

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Process-wide timestamp origin for chrome-trace `ts` fields.
pub(crate) fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Global cap on retained chrome events: a long solve in Chrome mode must
/// not grow memory without bound. ~0.5M events is plenty for a timeline.
const EVENT_BUDGET: u64 = 1 << 19;

static EVENTS_TOTAL: AtomicU64 = AtomicU64::new(0);

pub(crate) fn claim_event_slot() -> bool {
    EVENTS_TOTAL.fetch_add(1, Ordering::Relaxed) < EVENT_BUDGET
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

/// Accumulated statistics for one span name on one thread.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SpanStat {
    pub calls: u64,
    pub total_ns: u64,
    /// Time spent inside child spans (subtracted to get self time).
    pub child_ns: u64,
}

/// One complete chrome-trace event (`ph: "X"`).
#[derive(Debug, Clone)]
pub(crate) struct TraceEvent {
    pub name: &'static str,
    pub ts_us: u64,
    pub dur_us: u64,
    pub rank: Option<usize>,
    /// Process-unique recording-thread id (chrome `tid` lane).
    pub thread: u64,
}

/// Messages and bytes exchanged with one peer (world rank), mirroring the
/// byte/message counters exactly so the rank×rank communication matrix
/// row/column totals reconcile against them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PeerStat {
    /// Messages counted (one per `send`/`recv` completion).
    pub msgs: u64,
    /// Bytes counted (element size, as the byte counters count).
    pub bytes: u64,
}

const RANK_UNSET: usize = usize::MAX;

/// Monotonic id handed to each recorder so chrome traces can give every
/// thread its own `tid` lane (999 is reserved for unranked `pid`s).
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

/// Per-thread metric store. Shared with the global registry via `Arc` so
/// [`crate::aggregate`] can read it after the thread exits.
pub(crate) struct Recorder {
    rank: AtomicUsize,
    /// Stable chrome-trace `tid` for this recording thread.
    thread: u64,
    counters: [AtomicU64; COUNTER_COUNT],
    pub(crate) spans: Mutex<BTreeMap<&'static str, SpanStat>>,
    pub(crate) events: Mutex<Vec<TraceEvent>>,
    /// Chrome events dropped after the global budget was exhausted.
    pub(crate) dropped_events: AtomicU64,
    /// Flight-recorder ring (always-on black box; see [`crate::flight`]).
    flight: Mutex<FlightRing>,
    /// Per-peer send accounting (world rank → messages/bytes).
    pub(crate) peer_sends: Mutex<BTreeMap<usize, PeerStat>>,
    /// Per-peer receive accounting (world rank → messages/bytes).
    pub(crate) peer_recvs: Mutex<BTreeMap<usize, PeerStat>>,
    /// Free-form annotations (key → latest value), e.g. the sparse format
    /// an operator plan settled on. Last write wins.
    pub(crate) notes: Mutex<BTreeMap<&'static str, String>>,
    /// Log2 latency histogram buckets, one row per [`Hist`] family.
    hist_counts: [[AtomicU64; BUCKETS]; HIST_COUNT],
    /// Sum of recorded nanoseconds per [`Hist`] family (Prometheus `_sum`).
    hist_sums: [AtomicU64; HIST_COUNT],
    /// Causal trace records (see [`crate::trace`]).
    pub(crate) trace: Mutex<Vec<TraceRecord>>,
    /// Trace records dropped after the global budget was exhausted.
    pub(crate) dropped_trace: AtomicU64,
    /// Static work/traffic models registered at setup time (kernel name
    /// → model; see [`crate::model`]). Last registration wins.
    models: Mutex<BTreeMap<&'static str, crate::model::KernelModel>>,
}

impl Recorder {
    fn new() -> Recorder {
        Recorder {
            rank: AtomicUsize::new(RANK_UNSET),
            thread: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            spans: Mutex::new(BTreeMap::new()),
            events: Mutex::new(Vec::new()),
            dropped_events: AtomicU64::new(0),
            flight: Mutex::new(FlightRing::default()),
            peer_sends: Mutex::new(BTreeMap::new()),
            peer_recvs: Mutex::new(BTreeMap::new()),
            notes: Mutex::new(BTreeMap::new()),
            hist_counts: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            hist_sums: std::array::from_fn(|_| AtomicU64::new(0)),
            trace: Mutex::new(Vec::new()),
            dropped_trace: AtomicU64::new(0),
            models: Mutex::new(BTreeMap::new()),
        }
    }

    pub(crate) fn rank(&self) -> Option<usize> {
        match self.rank.load(Ordering::Relaxed) {
            RANK_UNSET => None,
            r => Some(r),
        }
    }

    #[inline]
    pub(crate) fn add_counter(&self, c: Counter, v: u64) {
        self.counters[c.index()].fetch_add(v, Ordering::Relaxed);
    }

    pub(crate) fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()].load(Ordering::Relaxed)
    }

    pub(crate) fn record_span(&self, name: &'static str, dur_ns: u64, child_ns: u64) {
        let mut spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        let stat = spans.entry(name).or_default();
        stat.calls += 1;
        stat.total_ns += dur_ns;
        stat.child_ns += child_ns;
    }

    pub(crate) fn record_event(&self, name: &'static str, ts_us: u64, dur_us: u64) {
        if claim_event_slot() {
            let mut events = self.events.lock().unwrap_or_else(|e| e.into_inner());
            events.push(TraceEvent { name, ts_us, dur_us, rank: self.rank(), thread: self.thread });
        } else {
            self.dropped_events.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn flight_push(&self, rec: FlightRecord) {
        self.flight.lock().unwrap_or_else(|e| e.into_inner()).push(rec);
    }

    /// Chronological snapshot of the flight ring plus the total number of
    /// records ever pushed.
    pub(crate) fn flight_tail(&self) -> (Vec<FlightRecord>, u64) {
        let ring = self.flight.lock().unwrap_or_else(|e| e.into_inner());
        (ring.tail(), ring.total())
    }

    pub(crate) fn peer_send(&self, peer: usize, bytes: u64) {
        let mut map = self.peer_sends.lock().unwrap_or_else(|e| e.into_inner());
        let stat = map.entry(peer).or_default();
        stat.msgs += 1;
        stat.bytes += bytes;
    }

    pub(crate) fn peer_recv(&self, peer: usize, bytes: u64) {
        let mut map = self.peer_recvs.lock().unwrap_or_else(|e| e.into_inner());
        let stat = map.entry(peer).or_default();
        stat.msgs += 1;
        stat.bytes += bytes;
    }

    pub(crate) fn set_note(&self, key: &'static str, value: String) {
        self.notes.lock().unwrap_or_else(|e| e.into_inner()).insert(key, value);
    }

    /// Record one latency sample: one bucket increment, one sum add.
    #[inline]
    pub(crate) fn record_hist(&self, h: Hist, ns: u64) {
        self.hist_counts[h.index()][hist::bucket(ns)].fetch_add(1, Ordering::Relaxed);
        self.hist_sums[h.index()].fetch_add(ns, Ordering::Relaxed);
    }

    /// Plain-integer snapshot of one histogram family's buckets and sum.
    pub(crate) fn hist_snapshot(&self, h: Hist) -> ([u64; BUCKETS], u64) {
        let buckets =
            std::array::from_fn(|i| self.hist_counts[h.index()][i].load(Ordering::Relaxed));
        (buckets, self.hist_sums[h.index()].load(Ordering::Relaxed))
    }

    /// Absorb one solve's staged trace batch under a single lock. The
    /// staging `Vec` is drained but keeps its capacity for the next
    /// solve; records beyond the per-recorder budget count as dropped.
    pub(crate) fn trace_extend(&self, staged: &mut Vec<TraceRecord>, dropped: u64) {
        let mut trace = self.trace.lock().unwrap_or_else(|e| e.into_inner());
        let room = trace::TRACE_BUDGET.saturating_sub(trace.len());
        let take = room.min(staged.len());
        let overflow = (staged.len() - take) as u64 + dropped;
        trace.extend(staged.drain(..take));
        staged.clear();
        if overflow > 0 {
            self.dropped_trace.fetch_add(overflow, Ordering::Relaxed);
        }
    }

    /// Snapshot of every retained trace record on this recorder.
    pub(crate) fn trace_snapshot(&self) -> Vec<TraceRecord> {
        self.trace.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Register (or replace) a kernel work model.
    pub(crate) fn set_model(&self, name: &'static str, m: crate::model::KernelModel) {
        self.models.lock().unwrap_or_else(|e| e.into_inner()).insert(name, m);
    }

    /// Snapshot of the registered kernel models.
    pub(crate) fn models_snapshot(&self) -> BTreeMap<&'static str, crate::model::KernelModel> {
        self.models.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn clear(&self) {
        self.rank.store(RANK_UNSET, Ordering::Relaxed);
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.events.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.dropped_events.store(0, Ordering::Relaxed);
        self.flight.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.peer_sends.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.peer_recvs.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.notes.lock().unwrap_or_else(|e| e.into_inner()).clear();
        for row in &self.hist_counts {
            for b in row {
                b.store(0, Ordering::Relaxed);
            }
        }
        for s in &self.hist_sums {
            s.store(0, Ordering::Relaxed);
        }
        self.trace.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.dropped_trace.store(0, Ordering::Relaxed);
        self.models.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

// ---------------------------------------------------------------------------
// Registry and thread-locals
// ---------------------------------------------------------------------------

static REGISTRY: Mutex<Vec<Arc<Recorder>>> = Mutex::new(Vec::new());

thread_local! {
    static LOCAL: Arc<Recorder> = {
        let r = Arc::new(Recorder::new());
        REGISTRY
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&r));
        r
    };

    /// Stack of child-time accumulators for currently-open spans on this
    /// thread. Each open span pushes a 0 frame; a closing child adds its
    /// duration to the top frame so the parent can compute self time.
    pub(crate) static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

#[inline]
pub(crate) fn with_local<T>(f: impl FnOnce(&Recorder) -> T) -> T {
    LOCAL.with(|r| f(r))
}

/// Clone the current thread's recorder handle.
pub(crate) fn local_arc() -> Arc<Recorder> {
    LOCAL.with(Arc::clone)
}

/// Tag the current thread's recorder with an SPMD rank. Called by the
/// `rcomm` launcher on every rank thread; reports then group by rank.
pub fn set_rank(rank: usize) {
    with_local(|r| r.rank.store(rank, Ordering::Relaxed));
}

/// Attach a free-form annotation to the current thread's recorder. Notes
/// surface in [`crate::RankReport::notes`], the summary sink, and
/// postmortems; the canonical use is `note("format", "sell")` when an
/// operator plan settles on a sparse format. Last write per key wins.
pub fn note(key: &'static str, value: impl Into<String>) {
    let value = value.into();
    with_local(|r| r.set_note(key, value));
}

/// Snapshot every live recorder (for [`crate::aggregate`]).
pub(crate) fn all_recorders() -> Vec<Arc<Recorder>> {
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Zero all recorded counters, spans, histograms, chrome events and trace
/// records in place, and reset the event budgets. Recorders stay
/// registered (thread-local handles remain valid); this is a measurement
/// reset, not a teardown.
pub fn reset() {
    for r in all_recorders() {
        r.clear();
    }
    EVENTS_TOTAL.store(0, Ordering::Relaxed);
    RESET_EPOCH.fetch_add(1, Ordering::Relaxed);
}

/// Number of [`reset`] calls so far. Session caches fold this into their
/// fingerprints: a reset wipes the registered kernel work models, so any
/// solve after it must run cold setup again to re-register them — a
/// warm solve would otherwise assemble a ledger with no kernel rows.
pub fn reset_epoch() -> u64 {
    RESET_EPOCH.load(Ordering::Relaxed)
}

static RESET_EPOCH: AtomicU64 = AtomicU64::new(0);
