//! Typed event counters.
//!
//! Counters are always-on: each is a relaxed per-thread atomic, so bumping
//! one costs a handful of nanoseconds regardless of the probe mode. The
//! probe mode only gates the *timing* machinery (spans, chrome events).

use crate::recorder;

/// Everything the instrumented layers count. One slot per variant in each
/// per-rank recorder.
///
/// The first block mirrors `rcomm::CommStats` (the communicator keeps its
/// own per-communicator snapshot; these are the per-rank totals across all
/// communicators). The rest are layer-specific: sparse halo traffic,
/// Krylov/direct solver work, and CCA component-layer activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// `barrier()` calls.
    Barriers,
    /// `bcast()` calls.
    Bcasts,
    /// Rooted `reduce()` calls.
    Reduces,
    /// `allreduce()` / `allreduce_vec()` calls.
    Allreduces,
    /// `gather()` / `gatherv()` calls.
    Gathers,
    /// `allgather()` / `allgatherv()` calls.
    Allgathers,
    /// `scatter()` calls.
    Scatters,
    /// `alltoall()` calls.
    Alltoalls,
    /// `scan()` / `exscan()` calls.
    Scans,
    /// Point-to-point sends posted.
    SendsPosted,
    /// Point-to-point receives completed.
    RecvsCompleted,
    /// Payload bytes handed to point-to-point sends.
    BytesSent,
    /// Payload bytes delivered by point-to-point receives.
    BytesReceived,
    /// Halo-exchange messages posted by the distributed matvec.
    HaloMessages,
    /// Halo-exchange payload bytes (the boundary values actually moved).
    HaloBytes,
    /// Allocations taken on the steady-state (primed-workspace) matvec
    /// path. Should stay 0 after the first matvec.
    SteadyStateAllocs,
    /// Operator applications (distributed matvec or shell apply).
    MatvecCalls,
    /// Preconditioner applications.
    PcApplies,
    /// Krylov iterations across all solves.
    KspIterations,
    /// Direct-solver numeric factorizations (incl. refactorizations).
    FactorCalls,
    /// Direct-solver triangular solves (one per right-hand side).
    TriangularSolves,
    /// CCA port method invocations crossing the component boundary.
    PortCalls,
    /// `Services::get_port` lookups.
    PortFetches,
    /// Faults fired by an armed `rcomm` fault plan.
    FaultsInjected,
    /// Non-finite values observed in received halo payloads.
    HaloNonFinite,
    /// Solver guard verdicts (non-finite residual, stagnation, or
    /// wall-clock budget) that stopped an iteration.
    GuardTrips,
    /// Solve attempts started by the resilient solver (first tries and
    /// retries alike).
    ResilientAttempts,
    /// Solves that succeeded only after a retry or a backend swap.
    ResilientRecoveries,
    /// Level-scheduled triangular solves executed (both sweeps of one
    /// preconditioner apply count once).
    SptrsvScheduledSolves,
    /// Triangular solves that fell back to the serial sweep although
    /// threads > 1 were configured (schedule too shallow/narrow, or the
    /// pool was busy with another rank).
    SptrsvSerialFallbacks,
    /// Total levels executed across scheduled triangular solves (divide by
    /// `sptrsv_scheduled_solves` for the average critical-path length).
    SptrsvLevels,
    /// Sum of the thread counts used by scheduled triangular solves
    /// (divide by `sptrsv_scheduled_solves` for the average fan-out).
    ThreadsActive,
    /// Level-width histogram, bumped once per level at schedule build:
    /// levels of width 1 (no exploitable parallelism).
    SptrsvLevelWidth1,
    /// Levels of width 2–7.
    SptrsvLevelWidth2to7,
    /// Levels of width 8–31.
    SptrsvLevelWidth8to31,
    /// Levels of width 32–127.
    SptrsvLevelWidth32to127,
    /// Levels of width ≥ 128.
    SptrsvLevelWidth128Plus,
    /// Operator plans that settled on CSR (explicitly or via the
    /// autotuner's model/measurement).
    FormatChosenCsr,
    /// Operator plans that settled on SELL-C-σ.
    FormatChosenSell,
    /// Operator plans that settled on block-CSR.
    FormatChosenBcsr,
    /// Nanoseconds spent inside the format autotuner (pattern analysis
    /// and, in measure mode, the candidate micro-benchmarks).
    FormatAutotuneNs,
    /// Nanoseconds spent converting CSR operators into the chosen
    /// format's storage (paid once at plan build, never per matvec).
    FormatConversionNs,
    /// World ranks marked lost in the cohort registry (killed by a fault
    /// rule or declared heartbeat-stale).
    RanksLost,
    /// Communicator shrinks performed by the elastic recovery path (one
    /// per successful `Communicator::shrink`-based repartition).
    CohortShrinks,
    /// Payload bytes fed through `allreduce`/`allreduce_vec` (per-rank
    /// contribution size; the unit the collective work model joins with).
    ReducedBytes,
    /// Solver-service session lookups that found a cached setup (halo
    /// plan, format plan, factorization) for the requested fingerprint.
    SessionCacheHits,
    /// Solver-service session lookups that had to build setup artifacts
    /// from scratch.
    SessionCacheMisses,
    /// Cached sessions evicted to respect the LRU byte budget
    /// (`RSPARSE_SESSION_CACHE_MB`).
    SessionCacheEvictions,
    /// Right-hand sides solved through the batched (multi-RHS) drivers;
    /// each `solve_batch` adds its column count.
    RhsBatched,
}

/// Number of counter variants (recorder slot-array length).
pub(crate) const COUNTER_COUNT: usize = 49;

impl Counter {
    /// All variants, in declaration order (matching slot indices).
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::Barriers,
        Counter::Bcasts,
        Counter::Reduces,
        Counter::Allreduces,
        Counter::Gathers,
        Counter::Allgathers,
        Counter::Scatters,
        Counter::Alltoalls,
        Counter::Scans,
        Counter::SendsPosted,
        Counter::RecvsCompleted,
        Counter::BytesSent,
        Counter::BytesReceived,
        Counter::HaloMessages,
        Counter::HaloBytes,
        Counter::SteadyStateAllocs,
        Counter::MatvecCalls,
        Counter::PcApplies,
        Counter::KspIterations,
        Counter::FactorCalls,
        Counter::TriangularSolves,
        Counter::PortCalls,
        Counter::PortFetches,
        Counter::FaultsInjected,
        Counter::HaloNonFinite,
        Counter::GuardTrips,
        Counter::ResilientAttempts,
        Counter::ResilientRecoveries,
        Counter::SptrsvScheduledSolves,
        Counter::SptrsvSerialFallbacks,
        Counter::SptrsvLevels,
        Counter::ThreadsActive,
        Counter::SptrsvLevelWidth1,
        Counter::SptrsvLevelWidth2to7,
        Counter::SptrsvLevelWidth8to31,
        Counter::SptrsvLevelWidth32to127,
        Counter::SptrsvLevelWidth128Plus,
        Counter::FormatChosenCsr,
        Counter::FormatChosenSell,
        Counter::FormatChosenBcsr,
        Counter::FormatAutotuneNs,
        Counter::FormatConversionNs,
        Counter::RanksLost,
        Counter::CohortShrinks,
        Counter::ReducedBytes,
        Counter::SessionCacheHits,
        Counter::SessionCacheMisses,
        Counter::SessionCacheEvictions,
        Counter::RhsBatched,
    ];

    /// Stable snake_case name used by the JSON and summary sinks.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Barriers => "barriers",
            Counter::Bcasts => "bcasts",
            Counter::Reduces => "reduces",
            Counter::Allreduces => "allreduces",
            Counter::Gathers => "gathers",
            Counter::Allgathers => "allgathers",
            Counter::Scatters => "scatters",
            Counter::Alltoalls => "alltoalls",
            Counter::Scans => "scans",
            Counter::SendsPosted => "sends_posted",
            Counter::RecvsCompleted => "recvs_completed",
            Counter::BytesSent => "bytes_sent",
            Counter::BytesReceived => "bytes_received",
            Counter::HaloMessages => "halo_messages",
            Counter::HaloBytes => "halo_bytes",
            Counter::SteadyStateAllocs => "steady_state_allocs",
            Counter::MatvecCalls => "matvec_calls",
            Counter::PcApplies => "pc_applies",
            Counter::KspIterations => "ksp_iterations",
            Counter::FactorCalls => "factor_calls",
            Counter::TriangularSolves => "triangular_solves",
            Counter::PortCalls => "port_calls",
            Counter::PortFetches => "port_fetches",
            Counter::FaultsInjected => "faults_injected",
            Counter::HaloNonFinite => "halo_non_finite",
            Counter::GuardTrips => "guard_trips",
            Counter::ResilientAttempts => "resilient_attempts",
            Counter::ResilientRecoveries => "resilient_recoveries",
            Counter::SptrsvScheduledSolves => "sptrsv_scheduled_solves",
            Counter::SptrsvSerialFallbacks => "sptrsv_serial_fallbacks",
            Counter::SptrsvLevels => "sptrsv_levels",
            Counter::ThreadsActive => "threads_active",
            Counter::SptrsvLevelWidth1 => "sptrsv_level_width_1",
            Counter::SptrsvLevelWidth2to7 => "sptrsv_level_width_2_7",
            Counter::SptrsvLevelWidth8to31 => "sptrsv_level_width_8_31",
            Counter::SptrsvLevelWidth32to127 => "sptrsv_level_width_32_127",
            Counter::SptrsvLevelWidth128Plus => "sptrsv_level_width_128_plus",
            Counter::FormatChosenCsr => "format_chosen_csr",
            Counter::FormatChosenSell => "format_chosen_sell",
            Counter::FormatChosenBcsr => "format_chosen_bcsr",
            Counter::FormatAutotuneNs => "format_autotune_ns",
            Counter::FormatConversionNs => "format_conversion_ns",
            Counter::RanksLost => "ranks_lost",
            Counter::CohortShrinks => "cohort_shrinks",
            Counter::ReducedBytes => "reduced_bytes",
            Counter::SessionCacheHits => "session_cache_hits",
            Counter::SessionCacheMisses => "session_cache_misses",
            Counter::SessionCacheEvictions => "session_cache_evictions",
            Counter::RhsBatched => "rhs_batched",
        }
    }

    #[inline]
    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

/// Add `v` to counter `c` on the current thread's recorder.
#[inline]
pub fn add(c: Counter, v: u64) {
    recorder::with_local(|r| r.add_counter(c, v));
}

/// Increment counter `c` by one on the current thread's recorder.
#[inline]
pub fn incr(c: Counter) {
    add(c, 1);
}

/// Read counter `c` from the current thread's recorder.
pub fn get(c: Counter) -> u64 {
    recorder::with_local(|r| r.counter(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_exhaustive_and_ordered() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{} out of order", c.name());
        }
        // Names are unique.
        let mut names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COUNTER_COUNT);
    }
}
