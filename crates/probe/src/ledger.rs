//! Solve-ledger plumbing: destination resolution, the per-path write
//! sequence, and the latest-document store.
//!
//! The ledger *content* is assembled by the driver layer (it owns the
//! solve report, the options and the communicator); this module owns the
//! process-global pieces every driver shares: where ledgers go
//! (`RSPARSE_LEDGER` or the `set("ledger", …)` port key), the
//! per-path sequence that keeps repeated solves from clobbering each
//! other, and the last published document so the postmortem writer can
//! embed it (mirroring `probe::critpath::latest_json`).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Default ledger path when armed with a bare switch (`RSPARSE_LEDGER=1`
/// or `set("ledger", "on")`).
pub const DEFAULT_PATH: &str = "solve_ledger.json";

/// Schema tag stamped into every ledger document.
pub const SCHEMA: &str = "rsparse-solve-ledger-v1";

#[derive(Debug, Clone, PartialEq, Eq)]
enum Destination {
    /// No programmatic override: fall back to `RSPARSE_LEDGER`.
    Unset,
    /// Explicitly disabled through the port key.
    Off,
    /// Explicit target path.
    Path(PathBuf),
}

static OVERRIDE: Mutex<Destination> = Mutex::new(Destination::Unset);
static LATEST: Mutex<Option<String>> = Mutex::new(None);
static SEQ: Mutex<BTreeMap<PathBuf, u64>> = Mutex::new(BTreeMap::new());

fn parse_spec(spec: &str) -> Destination {
    let spec = spec.trim();
    match spec.to_ascii_lowercase().as_str() {
        "" | "off" | "0" | "none" | "false" => Destination::Off,
        "1" | "on" | "true" => Destination::Path(PathBuf::from(DEFAULT_PATH)),
        _ => Destination::Path(PathBuf::from(spec)),
    }
}

/// Set the ledger destination programmatically (the `set("ledger", …)`
/// reserved port key). `off|0|none|false` disables emission, `1|on|true`
/// selects [`DEFAULT_PATH`], anything else is the target path. The
/// override beats `RSPARSE_LEDGER` until [`clear_destination`].
pub fn set_destination(spec: &str) {
    *OVERRIDE.lock().unwrap_or_else(|e| e.into_inner()) = parse_spec(spec);
}

/// Drop the programmatic destination; `RSPARSE_LEDGER` applies again.
pub fn clear_destination() {
    *OVERRIDE.lock().unwrap_or_else(|e| e.into_inner()) = Destination::Unset;
}

/// Resolve the ledger destination: the programmatic override when set,
/// else `RSPARSE_LEDGER` (same grammar), else `None` (the default —
/// emission off).
pub fn armed() -> Option<PathBuf> {
    match &*OVERRIDE.lock().unwrap_or_else(|e| e.into_inner()) {
        Destination::Off => return None,
        Destination::Path(p) => return Some(p.clone()),
        Destination::Unset => {}
    }
    match std::env::var("RSPARSE_LEDGER") {
        Ok(v) => match parse_spec(&v) {
            Destination::Path(p) => Some(p),
            _ => None,
        },
        Err(_) => None,
    }
}

/// Pick a destination that does not clobber an earlier ledger from this
/// process: the first write for a configured path uses the path as-is,
/// later ones insert a monotonic sequence before the extension
/// (`solve_ledger.json`, `solve_ledger.1.json`, …) — the same contract
/// as the postmortem writer.
pub fn sequenced_dest(base: &Path) -> PathBuf {
    let mut seq = SEQ.lock().unwrap_or_else(|e| e.into_inner());
    let n = seq.entry(base.to_path_buf()).or_insert(0);
    let dest = if *n == 0 {
        base.to_path_buf()
    } else {
        match base.extension().and_then(|e| e.to_str()) {
            Some(ext) => base.with_extension(format!("{n}.{ext}")),
            None => {
                let mut name = base.as_os_str().to_os_string();
                name.push(format!(".{n}"));
                PathBuf::from(name)
            }
        }
    };
    *n += 1;
    dest
}

/// Record `doc` as the latest ledger (for postmortem embedding) and
/// write it to the next sequenced destination under `base`. Returns the
/// path written. I/O failure still publishes the in-memory document —
/// the ledger is diagnostics and must never fail a solve.
pub fn publish(base: &Path, doc: String) -> std::io::Result<PathBuf> {
    let dest = sequenced_dest(base);
    let result = std::fs::write(&dest, &doc).map(|()| dest);
    *LATEST.lock().unwrap_or_else(|e| e.into_inner()) = Some(doc);
    result
}

/// The most recently published ledger document, or `"null"` — embedded
/// verbatim into postmortem dumps.
pub fn latest_json() -> String {
    LATEST
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
        .unwrap_or_else(|| "null".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_grammar_matches_the_postmortem_switch() {
        assert_eq!(parse_spec("off"), Destination::Off);
        assert_eq!(parse_spec("0"), Destination::Off);
        assert_eq!(parse_spec(""), Destination::Off);
        assert_eq!(parse_spec("1"), Destination::Path(PathBuf::from(DEFAULT_PATH)));
        assert_eq!(parse_spec("on"), Destination::Path(PathBuf::from(DEFAULT_PATH)));
        assert_eq!(parse_spec("/tmp/x.json"), Destination::Path(PathBuf::from("/tmp/x.json")));
    }

    #[test]
    fn sequenced_destinations_never_repeat() {
        let base = PathBuf::from("/tmp/lisi-test-ledger-seq/ledger.json");
        assert_eq!(sequenced_dest(&base), base);
        assert_eq!(
            sequenced_dest(&base),
            PathBuf::from("/tmp/lisi-test-ledger-seq/ledger.1.json")
        );
        let bare = PathBuf::from("/tmp/lisi-test-ledger-seq/ledger-bare");
        assert_eq!(sequenced_dest(&bare), bare);
        assert_eq!(
            sequenced_dest(&bare),
            PathBuf::from("/tmp/lisi-test-ledger-seq/ledger-bare.1")
        );
    }

    #[test]
    fn publish_stores_the_latest_document() {
        let dir = std::env::temp_dir().join("rsparse_ledger_publish_test");
        let _ = std::fs::create_dir_all(&dir);
        let base = dir.join("ledger.json");
        let doc = format!("{{\"schema\":\"{SCHEMA}\",\"marker\":1}}");
        let dest = publish(&base, doc.clone()).expect("write ledger");
        assert_eq!(std::fs::read_to_string(&dest).unwrap(), doc);
        assert_eq!(latest_json(), doc);
        let _ = std::fs::remove_file(&dest);
    }
}
