//! Scoped spans and section timers.

use std::time::Instant;

use crate::recorder::{self, chrome_enabled, enabled, epoch, STACK};

fn push_frame() {
    STACK.with(|s| s.borrow_mut().push(0));
}

/// Close a frame: record the span, pop our child accumulator, and add our
/// duration to the parent frame (if any).
fn close_frame(name: &'static str, start: Instant) {
    let dur_ns = start.elapsed().as_nanos() as u64;
    let child_ns = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let mine = stack.pop().unwrap_or(0);
        if let Some(parent) = stack.last_mut() {
            *parent += dur_ns;
        }
        mine
    });
    recorder::with_local(|r| {
        r.record_span(name, dur_ns, child_ns);
        if chrome_enabled() {
            let ts_us = start.duration_since(epoch()).as_micros() as u64;
            r.record_event(name, ts_us, dur_ns / 1_000);
        }
    });
}

/// RAII guard for a scoped span; created by [`crate::span!`]. Records on
/// drop. Inert (no clock read, no allocation) when the probe is disabled.
#[must_use = "binding the guard keeps the span open until end of scope"]
pub struct SpanGuard {
    live: Option<(&'static str, Instant)>,
}

impl SpanGuard {
    /// Open a span named `name`. Prefer the [`crate::span!`] macro.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        if !enabled() {
            return SpanGuard { live: None };
        }
        push_frame();
        SpanGuard { live: Some((name, Instant::now())) }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, start)) = self.live.take() {
            close_frame(name, start);
        }
    }
}

/// A timer that always measures wall-clock seconds (its callers need the
/// number regardless of probe mode) and additionally records a span when
/// the probe is enabled. Replaces ad-hoc `Stopwatch` plumbing in the
/// adapters and bench harness: one construct yields both the caller's
/// `SolveReport` seconds and the probe's per-rank breakdown.
#[must_use = "call stop() to retrieve the measured seconds"]
pub struct SectionTimer {
    name: &'static str,
    start: Instant,
    /// Whether we pushed a span frame at start (probe was enabled).
    pushed: bool,
    done: bool,
}

impl SectionTimer {
    /// Start timing a named section.
    pub fn start(name: &'static str) -> SectionTimer {
        let pushed = enabled();
        if pushed {
            push_frame();
        }
        SectionTimer { name, start: Instant::now(), pushed, done: false }
    }

    /// Stop and return the elapsed wall-clock seconds, recording the span
    /// if the probe was enabled at start.
    pub fn stop(mut self) -> f64 {
        self.done = true;
        if self.pushed {
            close_frame(self.name, self.start);
        }
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for SectionTimer {
    fn drop(&mut self) {
        // Early-return/`?` paths still close the span frame; the measured
        // seconds are simply lost to the caller.
        if !self.done && self.pushed {
            close_frame(self.name, self.start);
        }
    }
}

/// Run `f` under a span named `name`, returning its result and the
/// elapsed wall-clock seconds.
pub fn timed<R>(name: &'static str, f: impl FnOnce() -> R) -> (R, f64) {
    let t = SectionTimer::start(name);
    let out = f();
    (out, t.stop())
}
