//! Scoped spans and section timers.

use std::time::Instant;

use crate::recorder::{self, chrome_enabled, enabled, epoch, STACK};
use crate::trace;

fn push_frame() {
    STACK.with(|s| s.borrow_mut().push(0));
}

/// Close a frame: record the span, pop our child accumulator, and add our
/// duration to the parent frame (if any).
fn close_frame(name: &'static str, start: Instant) {
    let dur_ns = start.elapsed().as_nanos() as u64;
    let child_ns = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let mine = stack.pop().unwrap_or(0);
        if let Some(parent) = stack.last_mut() {
            *parent += dur_ns;
        }
        mine
    });
    recorder::with_local(|r| {
        r.record_span(name, dur_ns, child_ns);
        if chrome_enabled() {
            let ts_us = start.duration_since(epoch()).as_micros() as u64;
            r.record_event(name, ts_us, dur_ns / 1_000);
        }
    });
    if trace::thread_active() {
        // Same clock reads as the span table, so the causal trace and the
        // wait-time attribution describe identical instants.
        let t0_ns = start.duration_since(epoch()).as_nanos() as u64;
        trace::on_span_close(name, t0_ns, dur_ns);
    }
}

/// Whether spans should time right now: probe enabled, or a causal trace
/// active on this thread (traced solves fill the span table even with
/// the probe off, so the attribution table always accompanies a trace).
#[inline]
fn span_active() -> bool {
    enabled() || trace::thread_active()
}

/// RAII guard for a scoped span; created by [`crate::span!`]. Records on
/// drop. Inert (no clock read, no allocation) when the probe is disabled
/// and no trace is active.
#[must_use = "binding the guard keeps the span open until end of scope"]
pub struct SpanGuard {
    live: Option<(&'static str, Instant)>,
    /// Previous innermost phase to restore (`Some` only while tracing).
    phase_prev: Option<&'static str>,
}

impl SpanGuard {
    /// Open a span named `name`. Prefer the [`crate::span!`] macro.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        if !span_active() {
            return SpanGuard { live: None, phase_prev: None };
        }
        let phase_prev = trace::thread_active().then(|| trace::push_phase(name));
        push_frame();
        SpanGuard { live: Some((name, Instant::now())), phase_prev }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, start)) = self.live.take() {
            close_frame(name, start);
        }
        if let Some(prev) = self.phase_prev.take() {
            trace::pop_phase(prev);
        }
    }
}

/// A timer that always measures wall-clock seconds (its callers need the
/// number regardless of probe mode) and additionally records a span when
/// the probe is enabled. Replaces ad-hoc `Stopwatch` plumbing in the
/// adapters and bench harness: one construct yields both the caller's
/// `SolveReport` seconds and the probe's per-rank breakdown.
#[must_use = "call stop() to retrieve the measured seconds"]
pub struct SectionTimer {
    name: &'static str,
    start: Instant,
    /// Whether we pushed a span frame at start (spans were active).
    pushed: bool,
    /// Previous innermost phase to restore (`Some` only while tracing).
    phase_prev: Option<&'static str>,
    done: bool,
}

impl SectionTimer {
    /// Start timing a named section.
    pub fn start(name: &'static str) -> SectionTimer {
        let pushed = span_active();
        let phase_prev = (pushed && trace::thread_active()).then(|| trace::push_phase(name));
        if pushed {
            push_frame();
        }
        SectionTimer { name, start: Instant::now(), pushed, phase_prev, done: false }
    }

    fn close(&mut self) {
        if self.pushed {
            close_frame(self.name, self.start);
        }
        if let Some(prev) = self.phase_prev.take() {
            trace::pop_phase(prev);
        }
    }

    /// Stop and return the elapsed wall-clock seconds, recording the span
    /// if spans were active at start.
    pub fn stop(mut self) -> f64 {
        self.done = true;
        self.close();
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for SectionTimer {
    fn drop(&mut self) {
        // Early-return/`?` paths still close the span frame; the measured
        // seconds are simply lost to the caller.
        if !self.done {
            self.close();
        }
    }
}

/// Run `f` under a span named `name`, returning its result and the
/// elapsed wall-clock seconds.
pub fn timed<R>(name: &'static str, f: impl FnOnce() -> R) -> (R, f64) {
    let t = SectionTimer::start(name);
    let out = f();
    (out, t.stop())
}
