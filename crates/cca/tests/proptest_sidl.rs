//! Property tests on the SIDL layer: the parser must never panic on
//! arbitrary input, and valid generated packages must round-trip through
//! the registry.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Fuzz: arbitrary strings may fail to parse, but must never panic.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = cca::sidl::parse(&input);
    }

    /// Fuzz with SIDL-flavoured tokens to reach deeper parser states.
    #[test]
    fn parser_never_panics_on_tokeny_soup(
        words in proptest::collection::vec(
            proptest::sample::select(vec![
                "package", "version", "interface", "enum", "extends", "in",
                "inout", "out", "int", "double", "rarray", "<", ">", "{",
                "}", "(", ")", ";", ",", "[", "]", "x", "Foo", "gov.cca.Port",
                "1", "0.1",
            ]),
            0..40,
        )
    ) {
        let input = words.join(" ");
        let _ = cca::sidl::parse(&input);
    }

    /// Generated valid packages parse and register.
    #[test]
    fn generated_interfaces_round_trip(
        pkg in "[a-z][a-z0-9]{0,8}",
        iface in "[A-Z][A-Za-z0-9]{0,8}",
        n_methods in 0usize..5,
    ) {
        let mut src = format!("package {pkg} version 1.0 {{ interface {iface} {{ ");
        for i in 0..n_methods {
            src.push_str(&format!("int m{i}(in int a{i}); "));
        }
        src.push_str("} }");
        let reg = cca::sidl::SidlRegistry::parse(&src).unwrap();
        let q = format!("{pkg}.{iface}");
        prop_assert!(reg.has_interface(&q));
        prop_assert_eq!(reg.interface(&q).unwrap().methods.len(), n_methods);
    }
}

#[test]
fn registry_reparses_its_own_embedded_spec_deterministically() {
    let a = cca::sidl::SidlRegistry::lisi();
    let b = cca::sidl::SidlRegistry::parse(cca::sidl::LISI_SIDL).unwrap();
    assert_eq!(a.interface_names(), b.interface_names());
    let ia = a.interface("lisi.SparseSolver").unwrap();
    let ib = b.interface("lisi.SparseSolver").unwrap();
    assert_eq!(ia, ib);
}
