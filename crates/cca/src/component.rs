//! The component contract.

use crate::error::CcaResult;
use crate::services::Services;

/// A CCA component: one `set_services` call wires it to the framework,
/// during which it registers its provides ports and declares its uses
/// ports — the direct analogue of `gov.cca.Component.setServices`.
pub trait Component: Send + Sync {
    /// Called exactly once when the component is instantiated. The
    /// component keeps a clone of `services` if it needs to fetch uses
    /// ports later (the usual case).
    fn set_services(&mut self, services: &Services) -> CcaResult<()>;

    /// Component type name (diagnostics; defaults to the Rust type name).
    fn type_name(&self) -> &'static str {
        std::any::type_name::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Widget {
        wired: bool,
    }

    impl Component for Widget {
        fn set_services(&mut self, _services: &Services) -> CcaResult<()> {
            self.wired = true;
            Ok(())
        }
    }

    #[test]
    fn default_type_name_is_rust_path() {
        let w = Widget { wired: false };
        assert!(w.type_name().contains("Widget"));
    }

    #[test]
    fn set_services_is_callable() {
        let mut w = Widget { wired: false };
        w.set_services(&Services::new("w")).unwrap();
        assert!(w.wired);
    }
}
