//! A parser for the SIDL subset the CCA-LISI paper uses.
//!
//! Babel's role in the paper is to take interfaces written in SIDL and
//! generate language bindings; inside a single-language reproduction the
//! useful remnant of that role is *machine-checked interface conformance*:
//! the LISI specification is data, not prose. This module parses SIDL
//! packages (enums + interfaces with `in`/`inout`/`out` parameters,
//! `rarray<T,n>` raw-array types with shape annotations, and `[suffix]`
//! method overloads), and [`SidlRegistry`] lets the framework validate
//! port types while tests assert that the Rust traits implement every
//! method of the spec.
//!
//! [`LISI_SIDL`] is the paper's "CCA LISI SIDL Interface" listing
//! (§7.2), transcribed with its obvious scanner typos corrected.

mod ast;
mod lexer;
mod parser;

pub use ast::{EnumDef, InterfaceDef, MethodDef, ParamDef, ParamMode, SidlFile, SidlType};
pub use lexer::{tokenize, Token};
pub use parser::parse;

use std::collections::BTreeMap;

/// The LISI 0.1 specification from the paper (code listing in §7.2).
pub const LISI_SIDL: &str = r#"
package lisi version 0.1 {
  enum SparseStruct { CSR, COO, MSR, VBR, FEM }
  enum ID { MATRIX, PRECONDITIONER }

  interface MatrixFree extends gov.cca.Port {
    int matMult(in ID id,
                in rarray<double,1> x(length),
                inout rarray<double,1> y(length),
                in int length);
  }

  interface SparseSolver extends gov.cca.Port {
    int initialize(in long comm);
    int setBlockSize(in int bs);
    int setStartRow(in int startrow);
    int setLocalRows(in int rows);
    int setLocalNNZ(in int nnz);
    int setGlobalCols(in int cols);
    int setupMatrix[few_args](
      in rarray<double,1> Values(NNZ),
      in rarray<int,1> Rows(NNZ),
      in rarray<int,1> Columns(NNZ),
      in int NNZ);
    int setupMatrix[media_args](
      in rarray<double,1> Values(NNZ),
      in rarray<int,1> Rows(RowsLength),
      in rarray<int,1> Columns(NNZ),
      in SparseStruct DataStruct,
      in int RowsLength, in int NNZ);
    int setupMatrix[large_args](
      in rarray<double,1> Values(NNZ),
      in rarray<int,1> Rows(RowsLength),
      in rarray<int,1> Columns(NNZ),
      in SparseStruct DataStruct,
      in int RowsLength,
      in int NNZ, in int Offset);
    int setupRHS(
      in rarray<double,1> RightHandSide(NumLocalRow),
      in int NumLocalRow, in int nRhs);
    int solve(
      inout rarray<double,1> Solution(NumLocalRow),
      inout rarray<double,1> Status(StatusLength),
      in int NumLocalRow, in int StatusLength);
    int set(in string key, in string value);
    int setInt(in string key, in int value);
    int setBool(in string key, in bool value);
    int setDouble(in string key, in double value);
    string get_all();
  }
}
"#;

/// A lookup table of parsed interfaces, keyed by fully qualified name
/// (`package.Interface`). `gov.cca.Port` is predefined (it is the base
/// port type every CCA port extends).
#[derive(Debug, Clone, Default)]
pub struct SidlRegistry {
    interfaces: BTreeMap<String, InterfaceDef>,
    enums: BTreeMap<String, EnumDef>,
}

impl SidlRegistry {
    /// Parse SIDL source and build a registry from it.
    pub fn parse(source: &str) -> Result<Self, String> {
        let file = parse(source)?;
        let mut reg = SidlRegistry::default();
        reg.add_file(&file);
        Ok(reg)
    }

    /// The registry for the paper's LISI specification.
    pub fn lisi() -> Self {
        Self::parse(LISI_SIDL).expect("embedded LISI spec must parse")
    }

    /// Merge a parsed file into the registry.
    pub fn add_file(&mut self, file: &SidlFile) {
        for i in &file.interfaces {
            self.interfaces.insert(format!("{}.{}", file.package, i.name), i.clone());
        }
        for e in &file.enums {
            self.enums.insert(format!("{}.{}", file.package, e.name), e.clone());
        }
    }

    /// Does the registry define (or predefine) this interface?
    pub fn has_interface(&self, qualified: &str) -> bool {
        qualified == "gov.cca.Port" || self.interfaces.contains_key(qualified)
    }

    /// Fetch an interface definition.
    pub fn interface(&self, qualified: &str) -> Option<&InterfaceDef> {
        self.interfaces.get(qualified)
    }

    /// Fetch an enum definition.
    pub fn enum_def(&self, qualified: &str) -> Option<&EnumDef> {
        self.enums.get(qualified)
    }

    /// All interface names, sorted.
    pub fn interface_names(&self) -> Vec<String> {
        self.interfaces.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lisi_spec_parses_and_registers() {
        let reg = SidlRegistry::lisi();
        assert!(reg.has_interface("lisi.SparseSolver"));
        assert!(reg.has_interface("lisi.MatrixFree"));
        assert!(reg.has_interface("gov.cca.Port"));
        assert!(!reg.has_interface("lisi.Nope"));
        assert_eq!(
            reg.interface_names(),
            vec!["lisi.MatrixFree".to_string(), "lisi.SparseSolver".to_string()]
        );
    }

    #[test]
    fn lisi_enums_match_the_paper() {
        let reg = SidlRegistry::lisi();
        let ss = reg.enum_def("lisi.SparseStruct").unwrap();
        assert_eq!(ss.variants, vec!["CSR", "COO", "MSR", "VBR", "FEM"]);
        let id = reg.enum_def("lisi.ID").unwrap();
        assert_eq!(id.variants, vec!["MATRIX", "PRECONDITIONER"]);
    }

    #[test]
    fn sparse_solver_has_the_papers_method_set() {
        let reg = SidlRegistry::lisi();
        let iface = reg.interface("lisi.SparseSolver").unwrap();
        assert_eq!(iface.extends.as_deref(), Some("gov.cca.Port"));
        let names: Vec<&str> = iface.methods.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "initialize",
                "setBlockSize",
                "setStartRow",
                "setLocalRows",
                "setLocalNNZ",
                "setGlobalCols",
                "setupMatrix",
                "setupMatrix",
                "setupMatrix",
                "setupRHS",
                "solve",
                "set",
                "setInt",
                "setBool",
                "setDouble",
                "get_all",
            ]
        );
        // Overload suffixes distinguish the three setupMatrix flavours.
        let suffixes: Vec<_> = iface
            .methods
            .iter()
            .filter(|m| m.name == "setupMatrix")
            .map(|m| m.overload_suffix.clone().unwrap())
            .collect();
        assert_eq!(suffixes, vec!["few_args", "media_args", "large_args"]);
    }

    #[test]
    fn rarray_parameters_carry_shapes_and_modes() {
        let reg = SidlRegistry::lisi();
        let iface = reg.interface("lisi.SparseSolver").unwrap();
        let solve = iface.methods.iter().find(|m| m.name == "solve").unwrap();
        assert_eq!(solve.params.len(), 4);
        assert_eq!(solve.params[0].mode, ParamMode::InOut);
        assert_eq!(solve.params[0].name, "Solution");
        assert_eq!(solve.params[0].shape, vec!["NumLocalRow".to_string()]);
        assert!(matches!(
            &solve.params[0].ty,
            SidlType::RArray { elem, dims: 1 } if **elem == SidlType::Double
        ));
        let get_all = iface.methods.iter().find(|m| m.name == "get_all").unwrap();
        assert_eq!(get_all.ret, SidlType::String_);
        assert!(get_all.params.is_empty());

        let mf = reg.interface("lisi.MatrixFree").unwrap();
        let mat_mult = &mf.methods[0];
        assert_eq!(mat_mult.params[0].ty, SidlType::Named("ID".into()));
        assert_eq!(mat_mult.params[2].mode, ParamMode::InOut);
    }
}
