//! Abstract syntax for the SIDL subset.

/// A parsed SIDL file: one package with enums and interfaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SidlFile {
    /// Package name (possibly dotted).
    pub package: String,
    /// Version string, e.g. `"0.1"`.
    pub version: String,
    /// Enum definitions in order.
    pub enums: Vec<EnumDef>,
    /// Interface definitions in order.
    pub interfaces: Vec<InterfaceDef>,
}

/// `enum Name { A, B, C }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// Variant names in order.
    pub variants: Vec<String>,
}

/// `interface Name extends base { methods }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceDef {
    /// Interface name.
    pub name: String,
    /// Qualified base interface, if any.
    pub extends: Option<String>,
    /// Methods in order (overloads repeat the name with distinct
    /// suffixes).
    pub methods: Vec<MethodDef>,
}

/// One method signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodDef {
    /// Return type.
    pub ret: SidlType,
    /// Method name (without the overload suffix).
    pub name: String,
    /// Babel overload suffix (`name[suffix]`), if present.
    pub overload_suffix: Option<String>,
    /// Parameters in order.
    pub params: Vec<ParamDef>,
}

impl MethodDef {
    /// The Babel "long name": `name_suffix` for overloads, `name`
    /// otherwise — what generated bindings actually call the function.
    pub fn long_name(&self) -> String {
        match &self.overload_suffix {
            Some(s) => format!("{}_{s}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Parameter passing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamMode {
    /// Caller → callee.
    In,
    /// Both directions (r-arrays support only `in` and `inout`).
    InOut,
    /// Callee → caller (not allowed for r-arrays).
    Out,
}

/// One parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDef {
    /// Passing mode.
    pub mode: ParamMode,
    /// Declared type.
    pub ty: SidlType,
    /// Parameter name.
    pub name: String,
    /// Shape annotation for r-arrays (`x(length)`); empty otherwise.
    pub shape: Vec<String>,
}

/// The SIDL types this subset knows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SidlType {
    /// 32-bit integer.
    Int,
    /// 64-bit integer.
    Long,
    /// Boolean.
    Bool,
    /// 32-bit float.
    Float,
    /// 64-bit float.
    Double,
    /// String.
    String_,
    /// No value (return type only).
    Void,
    /// Raw array `rarray<elem, dims>`.
    RArray {
        /// Element type.
        elem: Box<SidlType>,
        /// Dimensionality.
        dims: usize,
    },
    /// A named (enum or interface) type.
    Named(String),
}

impl SidlType {
    /// Parse a primitive type keyword.
    pub fn from_keyword(word: &str) -> Option<SidlType> {
        Some(match word {
            "int" => SidlType::Int,
            "long" => SidlType::Long,
            "bool" => SidlType::Bool,
            "float" => SidlType::Float,
            "double" => SidlType::Double,
            "string" => SidlType::String_,
            "void" => SidlType::Void,
            _ => return None,
        })
    }

    /// Is this type legal as an r-array element? (Babel: int, long,
    /// float, double, fcomplex, dcomplex.)
    pub fn rarray_legal_element(&self) -> bool {
        matches!(self, SidlType::Int | SidlType::Long | SidlType::Float | SidlType::Double)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_names_encode_overloads() {
        let m = MethodDef {
            ret: SidlType::Int,
            name: "setupMatrix".into(),
            overload_suffix: Some("few_args".into()),
            params: vec![],
        };
        assert_eq!(m.long_name(), "setupMatrix_few_args");
        let m2 = MethodDef { overload_suffix: None, ..m };
        assert_eq!(m2.long_name(), "setupMatrix");
    }

    #[test]
    fn keyword_types_parse() {
        assert_eq!(SidlType::from_keyword("int"), Some(SidlType::Int));
        assert_eq!(SidlType::from_keyword("string"), Some(SidlType::String_));
        assert_eq!(SidlType::from_keyword("SparseStruct"), None);
    }

    #[test]
    fn rarray_element_legality_follows_babel() {
        assert!(SidlType::Double.rarray_legal_element());
        assert!(SidlType::Int.rarray_legal_element());
        assert!(!SidlType::Bool.rarray_legal_element());
        assert!(!SidlType::String_.rarray_legal_element());
    }
}
