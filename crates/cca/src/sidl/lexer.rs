//! Tokenizer for the SIDL subset.

/// SIDL tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword (may contain dots: `gov.cca.Port`) or a
    /// version number (`0.1`).
    Word(String),
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `<`.
    Lt,
    /// `>`.
    Gt,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `,`.
    Comma,
    /// `;`.
    Semi,
}

/// Tokenize SIDL source; `//` and `/* */` comments are skipped.
pub fn tokenize(src: &str) -> Result<Vec<Token>, String> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                i += 2;
                while i + 1 < n && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    i += 1;
                }
                if i + 1 >= n {
                    return Err("unterminated block comment".into());
                }
                i += 2;
            }
            '{' => {
                out.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Token::RBrace);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '<' => {
                out.push(Token::Lt);
                i += 1;
            }
            '>' => {
                out.push(Token::Gt);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < n
                    && (bytes[i].is_alphanumeric()
                        || bytes[i] == '_'
                        || (bytes[i] == '.'
                            && i + 1 < n
                            && bytes[i + 1].is_alphanumeric()))
                {
                    i += 1;
                }
                out.push(Token::Word(bytes[start..i].iter().collect()));
            }
            other => return Err(format!("unexpected character '{other}'")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_symbols_and_words() {
        let toks = tokenize("interface Foo extends gov.cca.Port { int f(in rarray<double,1> x(n)); }")
            .unwrap();
        assert_eq!(toks[0], Token::Word("interface".into()));
        assert_eq!(toks[3], Token::Word("gov.cca.Port".into()));
        assert!(toks.contains(&Token::Lt));
        assert!(toks.contains(&Token::Semi));
    }

    #[test]
    fn versions_lex_as_single_words() {
        let toks = tokenize("package lisi version 0.1").unwrap();
        assert_eq!(toks.last(), Some(&Token::Word("0.1".into())));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("int /* block */ x; // line\nint y;").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("int".into()),
                Token::Word("x".into()),
                Token::Semi,
                Token::Word("int".into()),
                Token::Word("y".into()),
                Token::Semi
            ]
        );
        assert!(tokenize("/* open").is_err());
    }

    #[test]
    fn stray_characters_error() {
        assert!(tokenize("int $x;").is_err());
    }

    #[test]
    fn trailing_dot_does_not_join() {
        // A dot not followed by an alphanumeric stays outside the word.
        let r = tokenize("a. b");
        assert!(r.is_err(), "bare dot is not a token in this subset");
    }
}
