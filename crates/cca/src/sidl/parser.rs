//! Recursive-descent parser for the SIDL subset.

use crate::sidl::ast::*;
use crate::sidl::lexer::{tokenize, Token};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Parse one SIDL package.
pub fn parse(src: &str) -> Result<SidlFile, String> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let file = p.package()?;
    if p.pos != p.tokens.len() {
        return Err(format!("trailing tokens after package (at {})", p.pos));
    }
    Ok(file)
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token, String> {
        let t = self.tokens.get(self.pos).cloned().ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, t: &Token) -> Result<(), String> {
        let got = self.next()?;
        if &got == t {
            Ok(())
        } else {
            Err(format!("expected {t:?}, got {got:?}"))
        }
    }

    fn word(&mut self) -> Result<String, String> {
        match self.next()? {
            Token::Word(w) => Ok(w),
            other => Err(format!("expected identifier, got {other:?}")),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), String> {
        let w = self.word()?;
        if w == kw {
            Ok(())
        } else {
            Err(format!("expected '{kw}', got '{w}'"))
        }
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn package(&mut self) -> Result<SidlFile, String> {
        self.keyword("package")?;
        let package = self.word()?;
        self.keyword("version")?;
        let version = self.word()?;
        // Braces around the body are standard SIDL but the paper's listing
        // omits them — accept both.
        let braced = self.eat(&Token::LBrace);
        let mut enums = Vec::new();
        let mut interfaces = Vec::new();
        loop {
            match self.peek() {
                Some(Token::Word(w)) if w == "enum" => {
                    self.pos += 1;
                    enums.push(self.enum_def()?);
                }
                Some(Token::Word(w)) if w == "interface" => {
                    self.pos += 1;
                    interfaces.push(self.interface_def()?);
                }
                Some(Token::RBrace) if braced => {
                    self.pos += 1;
                    break;
                }
                None if !braced => break,
                other => return Err(format!("expected enum/interface, got {other:?}")),
            }
        }
        Ok(SidlFile { package, version, enums, interfaces })
    }

    fn enum_def(&mut self) -> Result<EnumDef, String> {
        let name = self.word()?;
        self.expect(&Token::LBrace)?;
        let mut variants = Vec::new();
        loop {
            if self.eat(&Token::RBrace) {
                break;
            }
            variants.push(self.word()?);
            // Optional trailing comma.
            self.eat(&Token::Comma);
        }
        if variants.is_empty() {
            return Err(format!("enum {name} has no variants"));
        }
        Ok(EnumDef { name, variants })
    }

    fn interface_def(&mut self) -> Result<InterfaceDef, String> {
        let name = self.word()?;
        let extends = if matches!(self.peek(), Some(Token::Word(w)) if w == "extends") {
            self.pos += 1;
            Some(self.word()?)
        } else {
            None
        };
        self.expect(&Token::LBrace)?;
        let mut methods = Vec::new();
        while !self.eat(&Token::RBrace) {
            methods.push(self.method()?);
        }
        Ok(InterfaceDef { name, extends, methods })
    }

    fn method(&mut self) -> Result<MethodDef, String> {
        let ret = self.type_expr()?;
        let name = self.word()?;
        let overload_suffix = if self.eat(&Token::LBracket) {
            let s = self.word()?;
            self.expect(&Token::RBracket)?;
            Some(s)
        } else {
            None
        };
        self.expect(&Token::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Token::RParen) {
            loop {
                params.push(self.param()?);
                if self.eat(&Token::RParen) {
                    break;
                }
                self.expect(&Token::Comma)?;
            }
        }
        self.expect(&Token::Semi)?;
        Ok(MethodDef { ret, name, overload_suffix, params })
    }

    fn param(&mut self) -> Result<ParamDef, String> {
        let mode = match self.word()?.as_str() {
            "in" => ParamMode::In,
            "inout" => ParamMode::InOut,
            "out" => ParamMode::Out,
            other => return Err(format!("expected parameter mode, got '{other}'")),
        };
        let ty = self.type_expr()?;
        if let SidlType::RArray { elem, .. } = &ty {
            if !elem.rarray_legal_element() {
                return Err(format!("illegal rarray element type {elem:?}"));
            }
            if mode == ParamMode::Out {
                return Err("rarray parameters cannot be 'out' (Babel restriction)".into());
            }
        }
        let name = self.word()?;
        // Optional shape annotation `(dim, dim, …)`.
        let mut shape = Vec::new();
        if self.eat(&Token::LParen) {
            loop {
                shape.push(self.word()?);
                if self.eat(&Token::RParen) {
                    break;
                }
                self.expect(&Token::Comma)?;
            }
        }
        Ok(ParamDef { mode, ty, name, shape })
    }

    fn type_expr(&mut self) -> Result<SidlType, String> {
        let w = self.word()?;
        if w == "rarray" {
            self.expect(&Token::Lt)?;
            let elem = self.type_expr()?;
            self.expect(&Token::Comma)?;
            let dims_word = self.word()?;
            let dims: usize =
                dims_word.parse().map_err(|_| format!("bad rarray rank '{dims_word}'"))?;
            self.expect(&Token::Gt)?;
            return Ok(SidlType::RArray { elem: Box::new(elem), dims });
        }
        Ok(SidlType::from_keyword(&w).unwrap_or(SidlType::Named(w)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_package_parses() {
        let f = parse("package p version 1.0 { }").unwrap();
        assert_eq!(f.package, "p");
        assert_eq!(f.version, "1.0");
        assert!(f.enums.is_empty() && f.interfaces.is_empty());
    }

    #[test]
    fn unbraced_package_body_is_accepted() {
        let f = parse("package p version 2 enum E { A, B }").unwrap();
        assert_eq!(f.enums[0].variants, vec!["A", "B"]);
    }

    #[test]
    fn trailing_comma_in_enum_is_tolerated() {
        let f = parse("package p version 1 { enum E { A, B, } }").unwrap();
        assert_eq!(f.enums[0].variants, vec!["A", "B"]);
    }

    #[test]
    fn methods_parse_with_overloads_and_shapes() {
        let src = "package p version 1 {
            interface I extends gov.cca.Port {
                int f[variant](in rarray<double,1> x(n), in int n);
                void g();
                string h(in I other);
            }
        }";
        let f = parse(src).unwrap();
        let i = &f.interfaces[0];
        assert_eq!(i.extends.as_deref(), Some("gov.cca.Port"));
        assert_eq!(i.methods.len(), 3);
        assert_eq!(i.methods[0].long_name(), "f_variant");
        assert_eq!(i.methods[0].params[0].shape, vec!["n"]);
        assert_eq!(i.methods[1].ret, SidlType::Void);
        assert_eq!(i.methods[2].params[0].ty, SidlType::Named("I".into()));
    }

    #[test]
    fn babel_rarray_restrictions_are_enforced() {
        // 'out' rarray is illegal.
        let bad = "package p version 1 {
            interface I { int f(out rarray<double,1> x(n)); }
        }";
        assert!(parse(bad).unwrap_err().contains("out"));
        // bool rarray element is illegal.
        let bad2 = "package p version 1 {
            interface I { int f(in rarray<bool,1> x(n)); }
        }";
        assert!(parse(bad2).unwrap_err().contains("element"));
    }

    #[test]
    fn malformed_inputs_report_errors() {
        assert!(parse("interface X {}").is_err()); // no package
        assert!(parse("package p version 1 { enum E { } }").is_err()); // empty enum
        assert!(parse("package p version 1 { interface I { int f(in int); } }").is_err());
        assert!(parse("package p version 1 { junk }").is_err());
        assert!(parse("package p version 1 { } extra").is_err());
    }

    #[test]
    fn multidimensional_rarrays_parse() {
        let src = "package p version 1 {
            interface I { int f(in rarray<int,2> a(r, c), in int r, in int c); }
        }";
        let f = parse(src).unwrap();
        let m = &f.interfaces[0].methods[0];
        assert!(matches!(&m.params[0].ty, SidlType::RArray { dims: 2, .. }));
        assert_eq!(m.params[0].shape, vec!["r", "c"]);
    }
}
