//! The framework and its builder service: instantiate, connect,
//! disconnect, replace — the Ccaffeine operations the paper relies on for
//! run-time solver switching (Figure 4).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::component::Component;
use crate::error::{CcaError, CcaResult};
use crate::services::Services;
use crate::sidl::SidlRegistry;

/// Opaque component instance handle.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(String);

impl ComponentId {
    /// The instance name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

/// A builder-service event, recorded for diagnostics and asserted on by
/// tests (Ccaffeine's GUI shows exactly this stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuilderEvent {
    /// Component instantiated.
    Instantiated(String),
    /// Component destroyed.
    Destroyed(String),
    /// `user.uses_port` connected to `provider.provides_port`.
    Connected {
        /// Using instance.
        user: String,
        /// Uses-port name.
        uses_port: String,
        /// Providing instance.
        provider: String,
        /// Provides-port name.
        provides_port: String,
    },
    /// A connection removed.
    Disconnected {
        /// Using instance.
        user: String,
        /// Uses-port name.
        uses_port: String,
    },
}

struct Instance {
    component: Box<dyn Component>,
    services: Services,
}

/// One rank's framework. Under SPMD every rank builds an identical
/// framework; the instances with the same name across ranks form a
/// *cohort*.
#[derive(Default)]
pub struct Framework {
    instances: BTreeMap<String, Instance>,
    registry: Option<SidlRegistry>,
    events: Arc<RwLock<Vec<BuilderEvent>>>,
}

impl Framework {
    /// A framework without SIDL validation.
    pub fn new() -> Self {
        Framework::default()
    }

    /// A framework that validates every port type against a SIDL
    /// registry (Babel's conformance role).
    pub fn with_registry(registry: SidlRegistry) -> Self {
        Framework { registry: Some(registry), ..Default::default() }
    }

    /// Instantiate a component under `name`; calls its `set_services`.
    pub fn instantiate(
        &mut self,
        name: &str,
        mut component: Box<dyn Component>,
    ) -> CcaResult<ComponentId> {
        if self.instances.contains_key(name) {
            return Err(CcaError::Duplicate(format!("component instance '{name}'")));
        }
        let services = Services::new(name);
        component.set_services(&services)?;
        // Validate declared port types against the registry, if present.
        if let Some(reg) = &self.registry {
            for rec in services.provides_ports().iter().chain(services.uses_ports().iter()) {
                if !reg.has_interface(&rec.sidl_type) {
                    return Err(CcaError::UnknownSidlType(rec.sidl_type.clone()));
                }
            }
        }
        self.instances.insert(name.to_string(), Instance { component, services });
        self.events.write().push(BuilderEvent::Instantiated(name.to_string()));
        Ok(ComponentId(name.to_string()))
    }

    /// Destroy an instance (its connections into other components are
    /// severed).
    pub fn destroy(&mut self, id: &ComponentId) -> CcaResult<()> {
        self.instances
            .remove(id.name())
            .ok_or_else(|| CcaError::NoSuchComponent(id.name().to_string()))?;
        // Drop any connections that used this provider.
        for inst in self.instances.values_mut() {
            let mut st = inst.services.state.write();
            st.connections.retain(|_, (provider, _)| provider != id.name());
        }
        self.events.write().push(BuilderEvent::Destroyed(id.name().to_string()));
        Ok(())
    }

    fn instance(&self, id: &ComponentId) -> CcaResult<&Instance> {
        self.instances
            .get(id.name())
            .ok_or_else(|| CcaError::NoSuchComponent(id.name().to_string()))
    }

    /// Connect `user.uses_port` to `provider.provides_port`, with port
    /// type checking.
    pub fn connect(
        &mut self,
        user: &ComponentId,
        uses_port: &str,
        provider: &ComponentId,
        provides_port: &str,
    ) -> CcaResult<()> {
        let provider_inst = self.instance(provider)?;
        let provides_rec = {
            let st = provider_inst.services.state.read();
            st.provides
                .get(provides_port)
                .cloned()
                .ok_or_else(|| CcaError::NoSuchPort {
                    component: provider.name().to_string(),
                    port: provides_port.to_string(),
                    kind: "provides",
                })?
        };
        let user_inst = self.instance(user)?;
        let mut st = user_inst.services.state.write();
        let uses_rec = st.uses.get(uses_port).cloned().ok_or_else(|| CcaError::NoSuchPort {
            component: user.name().to_string(),
            port: uses_port.to_string(),
            kind: "uses",
        })?;
        if uses_rec.sidl_type != provides_rec.sidl_type {
            return Err(CcaError::TypeMismatch {
                uses_type: uses_rec.sidl_type,
                provides_type: provides_rec.sidl_type,
            });
        }
        if st.connections.contains_key(uses_port) {
            return Err(CcaError::AlreadyConnected {
                component: user.name().to_string(),
                port: uses_port.to_string(),
            });
        }
        st.connections.insert(
            uses_port.to_string(),
            (
                provider.name().to_string(),
                provides_rec.value.expect("provides ports always carry a value"),
            ),
        );
        drop(st);
        self.events.write().push(BuilderEvent::Connected {
            user: user.name().to_string(),
            uses_port: uses_port.to_string(),
            provider: provider.name().to_string(),
            provides_port: provides_port.to_string(),
        });
        Ok(())
    }

    /// Disconnect a uses port.
    pub fn disconnect(&mut self, user: &ComponentId, uses_port: &str) -> CcaResult<()> {
        let user_inst = self.instance(user)?;
        let mut st = user_inst.services.state.write();
        if st.connections.remove(uses_port).is_none() {
            return Err(CcaError::NotConnected {
                component: user.name().to_string(),
                port: uses_port.to_string(),
            });
        }
        drop(st);
        self.events.write().push(BuilderEvent::Disconnected {
            user: user.name().to_string(),
            uses_port: uses_port.to_string(),
        });
        Ok(())
    }

    /// Atomically rewire a uses port to a different provider — the
    /// dynamic-switching primitive.
    pub fn reconnect(
        &mut self,
        user: &ComponentId,
        uses_port: &str,
        provider: &ComponentId,
        provides_port: &str,
    ) -> CcaResult<()> {
        self.disconnect(user, uses_port)?;
        self.connect(user, uses_port, provider, provides_port)
    }

    /// The `Services` handle of an instance (tests, drivers).
    pub fn services(&self, id: &ComponentId) -> CcaResult<Services> {
        Ok(self.instance(id)?.services.clone())
    }

    /// Component type name of an instance (diagnostics).
    pub fn component_type(&self, id: &ComponentId) -> CcaResult<&'static str> {
        Ok(self.instance(id)?.component.type_name())
    }

    /// Instance names, sorted.
    pub fn component_names(&self) -> Vec<String> {
        self.instances.keys().cloned().collect()
    }

    /// Look up an instance handle by name.
    pub fn component_id(&self, name: &str) -> Option<ComponentId> {
        self.instances.contains_key(name).then(|| ComponentId(name.to_string()))
    }

    /// The event log so far.
    pub fn events(&self) -> Vec<BuilderEvent> {
        self.events.read().clone()
    }
}

/// A thin named façade over [`Framework`] mirroring
/// `gov.cca.ports.BuilderService`.
pub struct BuilderService<'f> {
    framework: &'f mut Framework,
}

impl<'f> BuilderService<'f> {
    /// Wrap a framework.
    pub fn new(framework: &'f mut Framework) -> Self {
        BuilderService { framework }
    }

    /// `createInstance`.
    pub fn create_instance(
        &mut self,
        name: &str,
        component: Box<dyn Component>,
    ) -> CcaResult<ComponentId> {
        self.framework.instantiate(name, component)
    }

    /// `connect`.
    pub fn connect(
        &mut self,
        user: &ComponentId,
        uses_port: &str,
        provider: &ComponentId,
        provides_port: &str,
    ) -> CcaResult<()> {
        self.framework.connect(user, uses_port, provider, provides_port)
    }

    /// `disconnect`.
    pub fn disconnect(&mut self, user: &ComponentId, uses_port: &str) -> CcaResult<()> {
        self.framework.disconnect(user, uses_port)
    }

    /// `destroyInstance`.
    pub fn destroy_instance(&mut self, id: &ComponentId) -> CcaResult<()> {
        self.framework.destroy(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    trait Answer: Send + Sync {
        fn value(&self) -> i32;
    }
    struct Fixed(i32);
    impl Answer for Fixed {
        fn value(&self) -> i32 {
            self.0
        }
    }

    struct ProviderComp {
        answer: i32,
    }
    impl Component for ProviderComp {
        fn set_services(&mut self, services: &Services) -> CcaResult<()> {
            let port: Arc<dyn Answer> = Arc::new(Fixed(self.answer));
            services.add_provides_port("answer", "demo.Answer", port)
        }
    }

    struct UserComp {
        services: Option<Services>,
    }
    impl Component for UserComp {
        fn set_services(&mut self, services: &Services) -> CcaResult<()> {
            services.register_uses_port("answer", "demo.Answer")?;
            self.services = Some(services.clone());
            Ok(())
        }
    }

    fn wire() -> (Framework, ComponentId, ComponentId, ComponentId) {
        let mut fw = Framework::new();
        let p1 = fw.instantiate("p1", Box::new(ProviderComp { answer: 1 })).unwrap();
        let p2 = fw.instantiate("p2", Box::new(ProviderComp { answer: 2 })).unwrap();
        let u = fw.instantiate("user", Box::new(UserComp { services: None })).unwrap();
        (fw, p1, p2, u)
    }

    fn read_answer(fw: &Framework, u: &ComponentId) -> CcaResult<i32> {
        let services = fw.services(u)?;
        let port: Arc<dyn Answer> = services.get_port("answer")?;
        Ok(port.value())
    }

    #[test]
    fn connect_fetch_and_call() {
        let (mut fw, p1, _, u) = wire();
        fw.connect(&u, "answer", &p1, "answer").unwrap();
        assert_eq!(read_answer(&fw, &u).unwrap(), 1);
    }

    #[test]
    fn dynamic_switching_changes_the_provider_seen_at_next_get_port() {
        let (mut fw, p1, p2, u) = wire();
        fw.connect(&u, "answer", &p1, "answer").unwrap();
        assert_eq!(read_answer(&fw, &u).unwrap(), 1);
        fw.reconnect(&u, "answer", &p2, "answer").unwrap();
        assert_eq!(read_answer(&fw, &u).unwrap(), 2, "rewire must take effect");
        let events = fw.events();
        assert!(matches!(events.last(), Some(BuilderEvent::Connected { provider, .. }) if provider == "p2"));
    }

    #[test]
    fn connection_errors_are_specific() {
        let (mut fw, p1, _, u) = wire();
        // Unknown ports.
        assert!(matches!(
            fw.connect(&u, "nope", &p1, "answer"),
            Err(CcaError::NoSuchPort { kind: "uses", .. })
        ));
        assert!(matches!(
            fw.connect(&u, "answer", &p1, "nope"),
            Err(CcaError::NoSuchPort { kind: "provides", .. })
        ));
        // Double connect.
        fw.connect(&u, "answer", &p1, "answer").unwrap();
        assert!(matches!(
            fw.connect(&u, "answer", &p1, "answer"),
            Err(CcaError::AlreadyConnected { .. })
        ));
        // Disconnect twice.
        fw.disconnect(&u, "answer").unwrap();
        assert!(matches!(
            fw.disconnect(&u, "answer"),
            Err(CcaError::NotConnected { .. })
        ));
    }

    #[test]
    fn type_mismatch_is_rejected() {
        struct OtherProvider;
        impl Component for OtherProvider {
            fn set_services(&mut self, services: &Services) -> CcaResult<()> {
                let port: Arc<dyn Answer> = Arc::new(Fixed(9));
                services.add_provides_port("answer", "demo.SomethingElse", port)
            }
        }
        let mut fw = Framework::new();
        let p = fw.instantiate("p", Box::new(OtherProvider)).unwrap();
        let u = fw.instantiate("u", Box::new(UserComp { services: None })).unwrap();
        assert!(matches!(
            fw.connect(&u, "answer", &p, "answer"),
            Err(CcaError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn destroy_severs_connections() {
        let (mut fw, p1, _, u) = wire();
        fw.connect(&u, "answer", &p1, "answer").unwrap();
        fw.destroy(&p1).unwrap();
        assert!(matches!(read_answer(&fw, &u), Err(CcaError::NotConnected { .. })));
        assert!(fw.instantiate("p1", Box::new(ProviderComp { answer: 3 })).is_ok());
    }

    #[test]
    fn duplicate_instance_names_are_rejected() {
        let mut fw = Framework::new();
        fw.instantiate("x", Box::new(ProviderComp { answer: 1 })).unwrap();
        assert!(matches!(
            fw.instantiate("x", Box::new(ProviderComp { answer: 2 })),
            Err(CcaError::Duplicate(_))
        ));
    }

    #[test]
    fn registry_validation_rejects_unknown_port_types() {
        let registry = crate::sidl::SidlRegistry::parse(
            "package demo version 1.0 { interface Answer extends gov.cca.Port { int value(); } }",
        )
        .unwrap();
        let mut fw = Framework::with_registry(registry);
        // demo.Answer is known.
        assert!(fw.instantiate("ok", Box::new(ProviderComp { answer: 1 })).is_ok());
        // A port type outside the registry is rejected.
        struct Bad;
        impl Component for Bad {
            fn set_services(&mut self, services: &Services) -> CcaResult<()> {
                services.register_uses_port("p", "demo.Missing")
            }
        }
        assert!(matches!(
            fw.instantiate("bad", Box::new(Bad)),
            Err(CcaError::UnknownSidlType(_))
        ));
    }

    #[test]
    fn builder_service_facade_drives_the_framework() {
        let mut fw = Framework::new();
        let mut builder = BuilderService::new(&mut fw);
        let p = builder
            .create_instance("p", Box::new(ProviderComp { answer: 7 }))
            .unwrap();
        let u = builder.create_instance("u", Box::new(UserComp { services: None })).unwrap();
        builder.connect(&u, "answer", &p, "answer").unwrap();
        builder.disconnect(&u, "answer").unwrap();
        builder.destroy_instance(&p).unwrap();
        assert_eq!(fw.component_names(), vec!["u".to_string()]);
        assert_eq!(fw.events().len(), 5);
    }

    #[test]
    fn cohorts_run_identically_across_ranks() {
        // SPMD pattern: each rank builds the same wiring; the answer is
        // rank-independent but the components are per-rank instances.
        let out = rcomm_universe(3);
        assert_eq!(out, vec![1, 1, 1]);

        fn rcomm_universe(n: usize) -> Vec<i32> {
            // Local duplicate of the SPMD harness to avoid a dev-dependency
            // cycle: plain threads, one framework per "rank".
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n)
                    .map(|_| {
                        scope.spawn(|| {
                            let (mut fw, p1, _, u) = wire();
                            fw.connect(&u, "answer", &p1, "answer").unwrap();
                            read_answer(&fw, &u).unwrap()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        }
    }
}
