//! The per-component `Services` handle — the component's window onto the
//! framework, mirroring `gov.cca.Services`.

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{CcaError, CcaResult};

/// A type-erased port value. By convention the erased concrete type is an
/// `Arc<dyn SomePortTrait>`, so consumers recover it with
/// [`Services::get_port::<Arc<dyn SomePortTrait>>`] — type-safe sharing of
/// a trait object across the framework boundary.
pub type ErasedPort = Arc<dyn Any + Send + Sync>;

/// Metadata + value for one registered port.
#[derive(Clone)]
pub struct PortRecord {
    /// Port instance name (unique per component and direction).
    pub name: String,
    /// SIDL interface name, e.g. `"lisi.SparseSolver"`.
    pub sidl_type: String,
    /// The port value (provides ports only).
    pub value: Option<ErasedPort>,
}

impl std::fmt::Debug for PortRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortRecord")
            .field("name", &self.name)
            .field("sidl_type", &self.sidl_type)
            .field("has_value", &self.value.is_some())
            .finish()
    }
}

/// Inner mutable state, shared between the component and the framework.
#[derive(Debug, Default)]
pub(crate) struct ServicesState {
    pub provides: BTreeMap<String, PortRecord>,
    pub uses: BTreeMap<String, PortRecord>,
    /// Current connections of uses ports: name → provider's port.
    pub connections: BTreeMap<String, (String, ErasedPort)>,
}

/// The component's framework handle. Cloneable; clones share state (the
/// framework holds one, the component may keep another).
#[derive(Debug, Clone, Default)]
pub struct Services {
    pub(crate) state: Arc<RwLock<ServicesState>>,
    pub(crate) component_name: String,
}

/// A non-owning handle to a component's [`Services`].
///
/// A provides-port object often needs its own component's services (to
/// look up connected uses ports at call time). Holding a full `Services`
/// there would create a reference cycle — the services' state owns the
/// port value, which would own the services — leaking the component. A
/// `WeakServices` breaks the cycle: upgrade at use time, and get `None`
/// once the component is destroyed.
#[derive(Debug, Clone)]
pub struct WeakServices {
    state: std::sync::Weak<RwLock<ServicesState>>,
    component_name: String,
}

impl WeakServices {
    /// Recover the full handle while the component is alive.
    pub fn upgrade(&self) -> Option<Services> {
        self.state.upgrade().map(|state| Services {
            state,
            component_name: self.component_name.clone(),
        })
    }
}

impl Services {
    pub(crate) fn new(component_name: &str) -> Self {
        Services {
            state: Arc::new(RwLock::new(ServicesState::default())),
            component_name: component_name.to_string(),
        }
    }

    /// A non-owning handle, safe to store inside this component's own
    /// port objects (see [`WeakServices`]).
    pub fn downgrade(&self) -> WeakServices {
        WeakServices {
            state: Arc::downgrade(&self.state),
            component_name: self.component_name.clone(),
        }
    }

    /// The owning component's instance name.
    pub fn component_name(&self) -> &str {
        &self.component_name
    }

    /// Register a provides port. `port` should be an `Arc<dyn Trait>` for
    /// the Rust trait realizing `sidl_type`.
    pub fn add_provides_port<P: Any + Send + Sync>(
        &self,
        name: &str,
        sidl_type: &str,
        port: P,
    ) -> CcaResult<()> {
        let mut st = self.state.write();
        if st.provides.contains_key(name) {
            return Err(CcaError::Duplicate(format!(
                "provides port '{name}' on '{}'",
                self.component_name
            )));
        }
        st.provides.insert(
            name.to_string(),
            PortRecord {
                name: name.to_string(),
                sidl_type: sidl_type.to_string(),
                value: Some(Arc::new(port)),
            },
        );
        Ok(())
    }

    /// Declare a uses port of the given SIDL type.
    pub fn register_uses_port(&self, name: &str, sidl_type: &str) -> CcaResult<()> {
        let mut st = self.state.write();
        if st.uses.contains_key(name) {
            return Err(CcaError::Duplicate(format!(
                "uses port '{name}' on '{}'",
                self.component_name
            )));
        }
        st.uses.insert(
            name.to_string(),
            PortRecord { name: name.to_string(), sidl_type: sidl_type.to_string(), value: None },
        );
        Ok(())
    }

    /// Fetch the port currently connected to the named uses port,
    /// downcast to `P` (conventionally `Arc<dyn Trait>`). The CCA
    /// `getPort` — called at use time, so a rewired connection is picked
    /// up automatically.
    pub fn get_port<P: Any + Clone>(&self, name: &str) -> CcaResult<P> {
        probe::incr(probe::Counter::PortFetches);
        let st = self.state.read();
        if !st.uses.contains_key(name) {
            return Err(CcaError::NoSuchPort {
                component: self.component_name.clone(),
                port: name.to_string(),
                kind: "uses",
            });
        }
        let (_, erased) = st.connections.get(name).ok_or_else(|| CcaError::NotConnected {
            component: self.component_name.clone(),
            port: name.to_string(),
        })?;
        erased
            .downcast_ref::<P>()
            .cloned()
            .ok_or_else(|| CcaError::WrongPortType { port: name.to_string() })
    }

    /// Which provider is connected to a uses port, if any.
    pub fn connected_provider(&self, name: &str) -> Option<String> {
        self.state.read().connections.get(name).map(|(p, _)| p.clone())
    }

    /// List registered provides ports.
    pub fn provides_ports(&self) -> Vec<PortRecord> {
        self.state.read().provides.values().cloned().collect()
    }

    /// List registered uses ports.
    pub fn uses_ports(&self) -> Vec<PortRecord> {
        self.state.read().uses.values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    trait Greeter: Send + Sync {
        fn greet(&self) -> String;
    }
    struct Hello;
    impl Greeter for Hello {
        fn greet(&self) -> String {
            "hello".into()
        }
    }

    #[test]
    fn provides_and_uses_registration() {
        let s = Services::new("comp");
        let port: Arc<dyn Greeter> = Arc::new(Hello);
        s.add_provides_port("greet", "demo.Greeter", port).unwrap();
        s.register_uses_port("needs-greet", "demo.Greeter").unwrap();
        assert_eq!(s.provides_ports().len(), 1);
        assert_eq!(s.uses_ports().len(), 1);
        assert_eq!(s.provides_ports()[0].sidl_type, "demo.Greeter");
        // Duplicates rejected.
        let port2: Arc<dyn Greeter> = Arc::new(Hello);
        assert!(s.add_provides_port("greet", "demo.Greeter", port2).is_err());
        assert!(s.register_uses_port("needs-greet", "demo.Greeter").is_err());
    }

    #[test]
    fn get_port_errors_when_unknown_or_disconnected() {
        let s = Services::new("comp");
        assert!(matches!(
            s.get_port::<Arc<dyn Greeter>>("nope"),
            Err(CcaError::NoSuchPort { .. })
        ));
        s.register_uses_port("g", "demo.Greeter").unwrap();
        assert!(matches!(
            s.get_port::<Arc<dyn Greeter>>("g"),
            Err(CcaError::NotConnected { .. })
        ));
        assert_eq!(s.connected_provider("g"), None);
    }

    #[test]
    fn connected_port_round_trips_through_erasure() {
        let s = Services::new("user");
        s.register_uses_port("g", "demo.Greeter").unwrap();
        let value: Arc<dyn Greeter> = Arc::new(Hello);
        s.state
            .write()
            .connections
            .insert("g".into(), ("provider".into(), Arc::new(value)));
        let got: Arc<dyn Greeter> = s.get_port("g").unwrap();
        assert_eq!(got.greet(), "hello");
        assert_eq!(s.connected_provider("g").as_deref(), Some("provider"));
        // Wrong type is caught.
        assert!(matches!(
            s.get_port::<Arc<String>>("g"),
            Err(CcaError::WrongPortType { .. })
        ));
    }
}
