//! `cca` — a Common Component Architecture framework (Ccaffeine stand-in).
//!
//! The CCA model (paper §4): a *component* is a collection of *ports*;
//! ports a component implements are **provides** ports, ports it plans to
//! call are **uses** ports. A framework instantiates components, wires
//! uses ports to provides ports, and can rewire them at run time —
//! dynamic solver switching (paper Figure 4) is exactly a disconnect +
//! reconnect. Under SPMD execution every rank runs one instance of each
//! component; the set of instances is the component's *cohort*.
//!
//! * [`Services`] — the per-component handle through which it registers
//!   provides ports ([`Services::add_provides_port`]), declares uses ports
//!   ([`Services::register_uses_port`]) and fetches connected ports
//!   ([`Services::get_port`]);
//! * [`Component`] — the component contract (`set_services`, the CCA
//!   `setServices` call);
//! * [`Framework`] + [`BuilderService`] — instantiation, connection,
//!   disconnection, dynamic replacement, with port-type checking against
//!   a [`sidl`] interface registry;
//! * [`sidl`] — a parser for the SIDL subset the paper uses, with the
//!   LISI 0.1 specification from the paper embedded verbatim
//!   ([`sidl::LISI_SIDL`]); the framework checks connections against
//!   parsed interface names, reproducing Babel's conformance role.

#![warn(missing_docs)]

mod component;
mod error;
mod framework;
mod services;

pub mod sidl;

pub use component::Component;
pub use error::{CcaError, CcaResult};
pub use framework::{BuilderEvent, BuilderService, ComponentId, Framework};
pub use services::{PortRecord, Services, WeakServices};
