//! Framework error type.

use std::fmt;

/// Result alias for framework operations.
pub type CcaResult<T> = Result<T, CcaError>;

/// Errors from the component framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcaError {
    /// A component id is unknown (destroyed or never created).
    NoSuchComponent(String),
    /// A port name is not registered on the named side.
    NoSuchPort {
        /// Component instance name.
        component: String,
        /// Port name.
        port: String,
        /// "uses" or "provides".
        kind: &'static str,
    },
    /// Port types disagree between a uses and a provides port.
    TypeMismatch {
        /// Uses-side declared type.
        uses_type: String,
        /// Provides-side declared type.
        provides_type: String,
    },
    /// A uses port is not currently connected.
    NotConnected {
        /// Component instance name.
        component: String,
        /// Port name.
        port: String,
    },
    /// A uses port is already connected (disconnect first).
    AlreadyConnected {
        /// Component instance name.
        component: String,
        /// Port name.
        port: String,
    },
    /// The fetched port could not be downcast to the requested Rust type.
    WrongPortType {
        /// Port name.
        port: String,
    },
    /// A port type name is absent from the SIDL registry.
    UnknownSidlType(String),
    /// A duplicate registration (instance name or port name).
    Duplicate(String),
    /// A component's `set_services` failed.
    SetServices(String),
}

impl fmt::Display for CcaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message())
    }
}

impl CcaError {
    fn message(&self) -> String {
        match self {
            CcaError::NoSuchComponent(c) => format!("no such component '{c}'"),
            CcaError::NoSuchPort { component, port, kind } => {
                format!("component '{component}' has no {kind} port '{port}'")
            }
            CcaError::TypeMismatch { uses_type, provides_type } => format!(
                "port type mismatch: uses side expects '{uses_type}', provider offers '{provides_type}'"
            ),
            CcaError::NotConnected { component, port } => {
                format!("uses port '{port}' of '{component}' is not connected")
            }
            CcaError::AlreadyConnected { component, port } => {
                format!("uses port '{port}' of '{component}' is already connected")
            }
            CcaError::WrongPortType { port } => {
                format!("port '{port}' holds a different Rust type than requested")
            }
            CcaError::UnknownSidlType(t) => format!("port type '{t}' not found in SIDL registry"),
            CcaError::Duplicate(d) => format!("duplicate registration: {d}"),
            CcaError::SetServices(m) => format!("set_services failed: {m}"),
        }
    }
}

impl std::error::Error for CcaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offenders() {
        let e = CcaError::NoSuchComponent("solver".into());
        assert!(e.to_string().contains("solver"));
        let e = CcaError::TypeMismatch {
            uses_type: "lisi.SparseSolver".into(),
            provides_type: "lisi.MatrixFree".into(),
        };
        assert!(e.to_string().contains("lisi.SparseSolver"));
        assert!(e.to_string().contains("lisi.MatrixFree"));
        let e = CcaError::NotConnected { component: "app".into(), port: "solver".into() };
        assert!(e.to_string().contains("app"));
    }
}
