//! Property tests on the RAztec package: solvers must recover random
//! manufactured solutions under every preconditioner, the status record
//! must be honest, and the matrix-free trait route must agree with the
//! assembled route.

use proptest::prelude::*;
use raztec::{AztecOO, AztecOptions, AzConv, AzPrecond, AzSolver, CrsMatrix, RowMatrix, Vector};
use rcomm::Universe;
use rsparse::generate;

fn run(
    a: &rsparse::CsrMatrix,
    b: &[f64],
    solver: AzSolver,
    precond: AzPrecond,
    p: usize,
) -> (raztec::SolveStatus, Vec<f64>) {
    let out = Universe::run(p, |comm| {
        let m = CrsMatrix::from_global(comm, a).unwrap();
        let bv = Vector::from_global(m.row_map().clone(), b).unwrap();
        let mut xv = Vector::new(m.row_map().clone());
        let mut az = AztecOO::new(&m);
        az.set_options(AztecOptions {
            solver,
            precond,
            conv: AzConv::Rhs,
            tol: 1e-11,
            max_iter: 5000,
            kspace: 30,
            stall_window: 0,
        });
        let st = az.iterate(comm, &bv, &mut xv).unwrap();
        (st, xv.gather_all(comm).unwrap())
    });
    out.into_iter().next().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn gmres_and_bicgstab_recover_random_solutions(
        seed in 0u64..10_000,
        p in 1usize..4,
        solver_idx in 0usize..2,
        pc_idx in 0usize..4,
    ) {
        let solver = [AzSolver::Gmres, AzSolver::BiCgStab][solver_idx];
        let precond = [
            AzPrecond::None,
            AzPrecond::Jacobi,
            AzPrecond::Neumann { order: 2 },
            AzPrecond::SymGs,
        ][pc_idx];
        let n = 28;
        let a = generate::random_diag_dominant(n, 3, seed);
        let x_true = generate::random_vector(n, seed ^ 0xF0);
        let b = a.matvec(&x_true).unwrap();
        let (st, x) = run(&a, &b, solver, precond, p);
        prop_assert!(st.why.converged(), "{solver:?}/{precond:?} p={p}: {:?}", st.why);
        for (g, e) in x.iter().zip(&x_true) {
            prop_assert!((g - e).abs() < 1e-6, "{solver:?}/{precond:?}");
        }
        // The status record's true residual must match a recomputation.
        let r = rsparse::ops::residual(&a, &x, &b).unwrap();
        let rn = rsparse::dense::norm2(&r);
        prop_assert!((st.true_residual - rn).abs() < 1e-8 * (1.0 + rn));
    }

    #[test]
    fn cg_solves_random_spd(seed in 0u64..10_000, p in 1usize..3) {
        let n = 24;
        let a = generate::random_spd(n, 3, seed);
        let x_true = generate::random_vector(n, seed ^ 0x11);
        let b = a.matvec(&x_true).unwrap();
        let (st, x) = run(&a, &b, AzSolver::Cg, AzPrecond::Jacobi, p);
        prop_assert!(st.why.converged());
        for (g, e) in x.iter().zip(&x_true) {
            prop_assert!((g - e).abs() < 1e-6);
        }
    }

    #[test]
    fn matrix_free_route_matches_assembled_route(seed in 0u64..10_000) {
        // The same operator presented twice: assembled CrsMatrix vs a
        // user RowMatrix impl that multiplies via the assembled matrix
        // privately — solver outputs must agree exactly.
        let n = 20;
        let a = generate::random_diag_dominant(n, 3, seed);
        let b = generate::random_vector(n, seed ^ 0x9);

        struct Wrapped {
            map: raztec::Map,
            a: rsparse::CsrMatrix,
        }
        impl RowMatrix for Wrapped {
            fn row_map(&self) -> &raztec::Map {
                &self.map
            }
            fn apply(
                &self,
                comm: &rcomm::Communicator,
                x: &Vector,
                y: &mut Vector,
            ) -> raztec::AztecResult<()> {
                let full = x.gather_all(comm)?;
                let lo = self.map.min_my_gid();
                for (li, yi) in y.values_mut().iter_mut().enumerate() {
                    let (cols, vals) = self.a.row(lo + li);
                    *yi = cols.iter().zip(vals).map(|(&c, &v)| v * full[c]).sum();
                }
                Ok(())
            }
            fn extract_diagonal(&self) -> Option<Vec<f64>> {
                let lo = self.map.min_my_gid();
                Some(
                    (0..self.map.num_my())
                        .map(|i| self.a.get(lo + i, lo + i))
                        .collect(),
                )
            }
        }

        let out = Universe::run(2, |comm| {
            let opts = AztecOptions {
                solver: AzSolver::Gmres,
                precond: AzPrecond::Jacobi,
                conv: AzConv::Rhs,
                tol: 1e-11,
                max_iter: 2000,
                kspace: 30,
                stall_window: 0,
            };
            // Assembled.
            let m1 = CrsMatrix::from_global(comm, &a).unwrap();
            let bv = Vector::from_global(m1.row_map().clone(), &b).unwrap();
            let mut x1 = Vector::new(m1.row_map().clone());
            let mut az1 = AztecOO::new(&m1);
            az1.set_options(opts.clone());
            let s1 = az1.iterate(comm, &bv, &mut x1).unwrap();
            // Matrix-free.
            let map = raztec::Map::new(a.rows(), comm);
            let m2 = Wrapped { map: map.clone(), a: a.clone() };
            let bv2 = Vector::from_global(map.clone(), &b).unwrap();
            let mut x2 = Vector::new(map);
            let mut az2 = AztecOO::new(&m2);
            az2.set_options(opts);
            let s2 = az2.iterate(comm, &bv2, &mut x2).unwrap();
            (
                s1.its,
                s2.its,
                x1.gather_all(comm).unwrap(),
                x2.gather_all(comm).unwrap(),
            )
        });
        let (i1, i2, x1, x2) = &out[0];
        prop_assert_eq!(i1, i2, "same arithmetic → same iterations");
        for (g, e) in x1.iter().zip(x2) {
            prop_assert!((g - e).abs() < 1e-12, "solutions must match bitwise-ish");
        }
    }
}
