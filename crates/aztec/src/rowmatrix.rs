//! The virtual-matrix trait and its assembled implementation.

use rcomm::Communicator;

use crate::map::Map;
use crate::vector::Vector;
use crate::{AztecError, AztecResult};

/// RAztec's `Epetra_RowMatrix`: anything that can (a) multiply a vector
/// and (b) optionally reveal rows/diagonal for preconditioner setup.
///
/// Applications implement this trait to get **matrix-free** solves — the
/// mechanism paper §5.5 describes for Trilinos. Only [`RowMatrix::apply`]
/// is required; the row/diagonal accessors have "not available" defaults
/// that restrict which preconditioners can be used.
pub trait RowMatrix: Send + Sync {
    /// The row (and domain — matrices here are square) map.
    fn row_map(&self) -> &Map;

    /// y ← A·x. Collective.
    fn apply(&self, comm: &Communicator, x: &Vector, y: &mut Vector) -> AztecResult<()>;

    /// Copy local row `lid` (global column ids) into the buffers, returning
    /// the entry count, or `None` when the implementation has no assembled
    /// rows.
    fn extract_my_row(
        &self,
        _lid: usize,
        _cols: &mut Vec<usize>,
        _vals: &mut Vec<f64>,
    ) -> Option<usize> {
        None
    }

    /// This rank's slice of the main diagonal, if available.
    fn extract_diagonal(&self) -> Option<Vec<f64>> {
        None
    }

    /// Global nonzero count, if known.
    fn num_global_nonzeros(&self) -> Option<usize> {
        None
    }
}

/// An assembled distributed compressed-row matrix (`Epetra_CrsMatrix`).
/// Backed by the substrate's halo-exchanging distributed CSR.
#[derive(Debug, Clone)]
pub struct CrsMatrix {
    map: Map,
    inner: rsparse::DistCsrMatrix,
}

impl CrsMatrix {
    /// Build from this rank's rows (global column indices). Collective.
    pub fn from_local_rows(
        comm: &Communicator,
        map: Map,
        local: rsparse::CsrMatrix,
    ) -> AztecResult<Self> {
        let inner =
            rsparse::DistCsrMatrix::from_local_rows(comm, map.partition().clone(), local)?;
        Ok(CrsMatrix { map, inner })
    }

    /// Distribute a replicated global matrix. Collective.
    pub fn from_global(
        comm: &Communicator,
        global: &rsparse::CsrMatrix,
    ) -> AztecResult<Self> {
        let map = Map::new(global.rows(), comm);
        let inner =
            rsparse::DistCsrMatrix::from_global(comm, map.partition().clone(), global)?;
        Ok(CrsMatrix { map, inner })
    }

    /// The underlying distributed matrix.
    pub fn inner(&self) -> &rsparse::DistCsrMatrix {
        &self.inner
    }

    /// Local nonzero count.
    pub fn num_my_nonzeros(&self) -> usize {
        self.inner.local_nnz()
    }
}

impl RowMatrix for CrsMatrix {
    fn row_map(&self) -> &Map {
        &self.map
    }

    fn apply(&self, comm: &Communicator, x: &Vector, y: &mut Vector) -> AztecResult<()> {
        if !x.map().same_as(&self.map) || !y.map().same_as(&self.map) {
            return Err(AztecError::MapMismatch("apply operand maps differ".into()));
        }
        // Bridge through the substrate's distributed vector (same layout).
        let dx = rsparse::DistVector::from_local(
            self.map.partition().clone(),
            self.map.my_rank(),
            x.values().to_vec(),
        )?;
        let mut dy = rsparse::DistVector::zeros(self.map.partition().clone(), self.map.my_rank());
        self.inner.matvec_into(comm, &dx, &mut dy)?;
        y.values_mut().copy_from_slice(dy.local());
        Ok(())
    }

    fn extract_my_row(
        &self,
        lid: usize,
        cols: &mut Vec<usize>,
        vals: &mut Vec<f64>,
    ) -> Option<usize> {
        let local = self.inner.local_matrix();
        if lid >= local.rows() {
            return None;
        }
        let (c, v) = local.row(lid);
        cols.clear();
        vals.clear();
        cols.extend_from_slice(c);
        vals.extend_from_slice(v);
        Some(c.len())
    }

    fn extract_diagonal(&self) -> Option<Vec<f64>> {
        Some(self.inner.diagonal_local())
    }

    fn num_global_nonzeros(&self) -> Option<usize> {
        None // would need a reduction; kept lazy like Epetra's cached count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcomm::Universe;
    use rsparse::generate;

    #[test]
    fn crs_apply_matches_serial() {
        let n = 12;
        let a = generate::laplacian_1d(n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64) * 0.25).collect();
        let expect = a.matvec(&x).unwrap();
        let out = Universe::run(3, |comm| {
            let m = CrsMatrix::from_global(comm, &a).unwrap();
            let xv = Vector::from_global(m.row_map().clone(), &x).unwrap();
            let mut yv = Vector::new(m.row_map().clone());
            m.apply(comm, &xv, &mut yv).unwrap();
            yv.gather_all(comm).unwrap()
        });
        for got in out {
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn row_extraction_returns_global_columns() {
        let a = generate::laplacian_1d(6);
        let out = Universe::run(2, |comm| {
            let m = CrsMatrix::from_global(comm, &a).unwrap();
            let mut cols = Vec::new();
            let mut vals = Vec::new();
            let n = m.extract_my_row(0, &mut cols, &mut vals).unwrap();
            (n, cols, vals, m.extract_diagonal().unwrap(), m.num_my_nonzeros())
        });
        // Rank 0 row 0 is global row 0: [2, -1] at cols [0, 1].
        assert_eq!(out[0].0, 2);
        assert_eq!(out[0].1, vec![0, 1]);
        // Rank 1 row 0 is global row 3: [-1, 2, -1] at cols [2, 3, 4].
        assert_eq!(out[1].0, 3);
        assert_eq!(out[1].1, vec![2, 3, 4]);
        for (_, _, _, diag, _) in &out {
            assert!(diag.iter().all(|&d| d == 2.0));
        }
    }

    #[test]
    fn matrix_free_row_matrix_works_via_trait() {
        // A user-defined operator: tridiagonal stencil applied on the fly.
        struct Stencil {
            map: Map,
        }
        impl RowMatrix for Stencil {
            fn row_map(&self) -> &Map {
                &self.map
            }
            fn apply(
                &self,
                comm: &Communicator,
                x: &Vector,
                y: &mut Vector,
            ) -> AztecResult<()> {
                // Gather the full vector (small problems only — fine for a
                // test of the trait path).
                let full = x.gather_all(comm)?;
                let lo = self.map.min_my_gid();
                let n = full.len();
                for (li, yi) in y.values_mut().iter_mut().enumerate() {
                    let g = lo + li;
                    let mut acc = 2.0 * full[g];
                    if g > 0 {
                        acc -= full[g - 1];
                    }
                    if g + 1 < n {
                        acc -= full[g + 1];
                    }
                    *yi = acc;
                }
                Ok(())
            }
        }

        let n = 9;
        let a = generate::laplacian_1d(n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let expect = a.matvec(&x).unwrap();
        let out = Universe::run(3, |comm| {
            let map = Map::new(n, comm);
            let op = Stencil { map: map.clone() };
            assert!(op.extract_diagonal().is_none());
            let mut cols = vec![];
            let mut vals = vec![];
            assert!(op.extract_my_row(0, &mut cols, &mut vals).is_none());
            let xv = Vector::from_global(map.clone(), &x).unwrap();
            let mut yv = Vector::new(map);
            op.apply(comm, &xv, &mut yv).unwrap();
            yv.gather_all(comm).unwrap()
        });
        for got in out {
            for (g, e) in got.iter().zip(&expect) {
                assert!((g - e).abs() < 1e-13);
            }
        }
    }
}
