//! `raztec` — a Trilinos/AztecOO-like parallel iterative solver package.
//!
//! The second "native solver library" of the CCA-LISI reproduction (the
//! Trilinos stand-in from DESIGN.md's substitution table). It is written
//! against deliberately *different* abstractions than `rkrylov`, because
//! the whole point of LISI is to span packages whose APIs disagree:
//!
//! * [`Map`] — an `Epetra_Map`: the distribution descriptor that every
//!   object is built on;
//! * [`Vector`] — an `Epetra_Vector`: a map plus local coefficients;
//! * [`RowMatrix`] — the `Epetra_RowMatrix` *virtual matrix* trait: row
//!   access and a matvec. Applications can implement it themselves to get
//!   matrix-free solves (paper §5.5 cites exactly this mechanism:
//!   "Trilinos's Epetra_RowMatrix virtual class allows the application
//!   developer to implement and create their own matrix data type with a
//!   matrix vector product method");
//! * [`CrsMatrix`] — the assembled implementation of [`RowMatrix`];
//! * [`AztecOO`] — the solver engine, configured through Aztec-style
//!   option enums ([`AzSolver`], [`AzPrecond`]) and reporting through a
//!   status record ([`SolveStatus`], [`AzWhy`]) — the package's own
//!   convention that a LISI adapter must translate to the common status
//!   array.
//!
//! Solver implementations (CG, GMRES(k), BiCGStab) are independent of
//! `rkrylov`'s — two packages sharing an interface, not a renamed copy.

#![warn(missing_docs)]

mod aztecoo;
mod map;
mod precond;
mod rowmatrix;
mod solvers;
mod vector;

pub use aztecoo::{AztecOO, AztecOptions, AzConv, AzPrecond, AzSolver, AzWhy, SolveStatus};
pub use map::Map;
pub use rowmatrix::{CrsMatrix, RowMatrix};
pub use vector::Vector;

/// Errors from the RAztec package.
#[derive(Debug, Clone, PartialEq)]
pub enum AztecError {
    /// Operand maps disagree.
    MapMismatch(String),
    /// Underlying substrate failure.
    Sparse(String),
    /// Invalid options.
    BadOption(String),
}

impl std::fmt::Display for AztecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AztecError::MapMismatch(m) => write!(f, "map mismatch: {m}"),
            AztecError::Sparse(m) => write!(f, "substrate error: {m}"),
            AztecError::BadOption(m) => write!(f, "bad option: {m}"),
        }
    }
}

impl std::error::Error for AztecError {}

impl From<rsparse::SparseError> for AztecError {
    fn from(e: rsparse::SparseError) -> Self {
        AztecError::Sparse(e.to_string())
    }
}

impl From<rcomm::CommError> for AztecError {
    fn from(e: rcomm::CommError) -> Self {
        AztecError::Sparse(e.to_string())
    }
}

/// Result alias.
pub type AztecResult<T> = Result<T, AztecError>;
