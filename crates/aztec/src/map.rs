//! The distribution map — RAztec's `Epetra_Map`.

use rsparse::BlockRowPartition;

/// Describes how `num_global` contiguous indices are laid out across the
/// ranks of a communicator. Every RAztec object (vector, matrix) carries a
/// map, and operations check map compatibility — the Epetra discipline.
#[derive(Debug, Clone, PartialEq)]
pub struct Map {
    partition: BlockRowPartition,
    rank: usize,
}

impl Map {
    /// Even distribution of `num_global` indices over `comm`.
    pub fn new(num_global: usize, comm: &rcomm::Communicator) -> Self {
        Map {
            partition: BlockRowPartition::even(num_global, comm.size()),
            rank: comm.rank(),
        }
    }

    /// Wrap an existing partition.
    pub fn from_partition(partition: BlockRowPartition, rank: usize) -> Self {
        Map { partition, rank }
    }

    /// Global number of indices.
    pub fn num_global(&self) -> usize {
        self.partition.global_rows()
    }

    /// Indices owned by this rank.
    pub fn num_my(&self) -> usize {
        self.partition.local_rows(self.rank)
    }

    /// First global index owned here.
    pub fn min_my_gid(&self) -> usize {
        self.partition.start_row(self.rank)
    }

    /// Convert a local index to its global id.
    pub fn gid(&self, lid: usize) -> usize {
        debug_assert!(lid < self.num_my());
        self.min_my_gid() + lid
    }

    /// Convert a global id to a local index if owned here.
    pub fn lid(&self, gid: usize) -> Option<usize> {
        let r = self.partition.range(self.rank);
        r.contains(&gid).then(|| gid - r.start)
    }

    /// This rank.
    pub fn my_rank(&self) -> usize {
        self.rank
    }

    /// The underlying block-row partition.
    pub fn partition(&self) -> &BlockRowPartition {
        &self.partition
    }

    /// Two maps are compatible when they describe the same distribution.
    pub fn same_as(&self, other: &Map) -> bool {
        self == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcomm::Universe;

    #[test]
    fn map_describes_even_layout() {
        let out = Universe::run(3, |comm| {
            let map = Map::new(10, comm);
            (map.num_global(), map.num_my(), map.min_my_gid())
        });
        assert_eq!(out, vec![(10, 4, 0), (10, 3, 4), (10, 3, 7)]);
    }

    #[test]
    fn gid_lid_round_trip() {
        let out = Universe::run(2, |comm| {
            let map = Map::new(7, comm);
            let mut ok = true;
            for lid in 0..map.num_my() {
                ok &= map.lid(map.gid(lid)) == Some(lid);
            }
            // A gid owned by the other rank resolves to None.
            let foreign = if comm.rank() == 0 { 6 } else { 0 };
            ok && map.lid(foreign).is_none()
        });
        assert_eq!(out, vec![true, true]);
    }

    #[test]
    fn compatibility_check() {
        let out = Universe::run(2, |comm| {
            let a = Map::new(8, comm);
            let b = Map::new(8, comm);
            let c = Map::new(9, comm);
            a.same_as(&b) && !a.same_as(&c)
        });
        assert_eq!(out, vec![true, true]);
    }
}
