//! Distributed vectors — RAztec's `Epetra_Vector`.

use rcomm::Communicator;

use crate::map::Map;
use crate::{AztecError, AztecResult};

/// A map plus this rank's coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct Vector {
    map: Map,
    values: Vec<f64>,
}

impl Vector {
    /// Zero vector on a map.
    pub fn new(map: Map) -> Self {
        let n = map.num_my();
        Vector { map, values: vec![0.0; n] }
    }

    /// Wrap local values (length must match the map).
    pub fn from_values(map: Map, values: Vec<f64>) -> AztecResult<Self> {
        if values.len() != map.num_my() {
            return Err(AztecError::MapMismatch(format!(
                "vector has {} local values, map owns {}",
                values.len(),
                map.num_my()
            )));
        }
        Ok(Vector { map, values })
    }

    /// Take this rank's slice of a replicated global vector.
    pub fn from_global(map: Map, global: &[f64]) -> AztecResult<Self> {
        if global.len() != map.num_global() {
            return Err(AztecError::MapMismatch(format!(
                "global vector has {} entries, map describes {}",
                global.len(),
                map.num_global()
            )));
        }
        let lo = map.min_my_gid();
        let hi = lo + map.num_my();
        let values = global[lo..hi].to_vec();
        Ok(Vector { map, values })
    }

    /// The map.
    pub fn map(&self) -> &Map {
        &self.map
    }

    /// Local coefficients.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable local coefficients.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Fill with a constant.
    pub fn put_scalar(&mut self, s: f64) {
        self.values.iter_mut().for_each(|v| *v = s);
    }

    fn check(&self, other: &Vector) -> AztecResult<()> {
        if !self.map.same_as(other.map()) {
            return Err(AztecError::MapMismatch("vector maps differ".into()));
        }
        Ok(())
    }

    /// Global dot product.
    pub fn dot(&self, other: &Vector, comm: &Communicator) -> AztecResult<f64> {
        self.check(other)?;
        let local = rsparse::dense::dot(&self.values, &other.values);
        Ok(comm.allreduce(local, rcomm::sum)?)
    }

    /// Global 2-norm.
    pub fn norm2(&self, comm: &Communicator) -> AztecResult<f64> {
        Ok(self.dot(self, comm)?.sqrt())
    }

    /// self ← self + a·x.
    pub fn update(&mut self, a: f64, x: &Vector) -> AztecResult<()> {
        self.check(x)?;
        rsparse::dense::axpy(a, &x.values, &mut self.values);
        Ok(())
    }

    /// self ← a·x + b·self.
    pub fn update2(&mut self, a: f64, x: &Vector, b: f64) -> AztecResult<()> {
        self.check(x)?;
        for (si, xi) in self.values.iter_mut().zip(&x.values) {
            *si = a * xi + b * *si;
        }
        Ok(())
    }

    /// self ← a·self.
    pub fn scale(&mut self, a: f64) {
        rsparse::dense::scale(a, &mut self.values);
    }

    /// Replicate the full vector on every rank.
    pub fn gather_all(&self, comm: &Communicator) -> AztecResult<Vec<f64>> {
        Ok(comm.allgatherv(&self.values)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcomm::Universe;

    #[test]
    fn construction_and_blas_ops() {
        let out = Universe::run(2, |comm| {
            let map = Map::new(6, comm);
            let global: Vec<f64> = (0..6).map(|i| i as f64).collect();
            let x = Vector::from_global(map.clone(), &global).unwrap();
            let mut y = Vector::new(map.clone());
            y.put_scalar(1.0);
            y.update(2.0, &x).unwrap(); // y = 1 + 2i
            let d = y.dot(&x, comm).unwrap(); // Σ i(1+2i)
            let n = x.norm2(comm).unwrap();
            let full = y.gather_all(comm).unwrap();
            (d, n, full)
        });
        let expect_d: f64 = (0..6).map(|i| i as f64 * (1.0 + 2.0 * i as f64)).sum();
        let expect_n: f64 = (0..6).map(|i| (i * i) as f64).sum::<f64>().sqrt();
        for (d, n, full) in out {
            assert!((d - expect_d).abs() < 1e-12);
            assert!((n - expect_n).abs() < 1e-12);
            assert_eq!(full, vec![1.0, 3.0, 5.0, 7.0, 9.0, 11.0]);
        }
    }

    #[test]
    fn update2_and_scale() {
        let out = Universe::run(1, |comm| {
            let map = Map::new(3, comm);
            let x = Vector::from_values(map.clone(), vec![1.0, 2.0, 3.0]).unwrap();
            let mut y = Vector::from_values(map, vec![10.0, 10.0, 10.0]).unwrap();
            y.update2(2.0, &x, 0.5).unwrap(); // y = 2x + 0.5y
            y.scale(10.0);
            y.values().to_vec()
        });
        assert_eq!(out[0], vec![70.0, 90.0, 110.0]);
    }

    #[test]
    fn map_mismatches_are_rejected() {
        let out = Universe::run(1, |comm| {
            let m6 = Map::new(6, comm);
            let m4 = Map::new(4, comm);
            let a = Vector::new(m6.clone());
            let mut b = Vector::new(m4.clone());
            let r1 = b.update(1.0, &a).is_err();
            let r2 = a.dot(&b, comm).is_err();
            let r3 = Vector::from_values(m6.clone(), vec![0.0; 2]).is_err();
            let r4 = Vector::from_global(m4, &[0.0; 9]).is_err();
            r1 && r2 && r3 && r4
        });
        assert!(out[0]);
    }
}
