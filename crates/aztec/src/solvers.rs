//! RAztec's own iterative methods: CG, GMRES(k) and BiCGStab over
//! [`Vector`]s. Independent implementations from `rkrylov`'s — RAztec uses
//! *left* preconditioning (Aztec's convention) where RKSP uses right, so
//! even the residual the two packages report differs in kind: RAztec's
//! recurrence tracks the preconditioned residual.

use rcomm::Communicator;

use crate::aztecoo::{AztecOptions, AzWhy};
use crate::precond::AzPc;
use crate::rowmatrix::RowMatrix;
use crate::vector::Vector;
use crate::AztecResult;

pub(crate) struct RawOutcome {
    pub why: AzWhy,
    pub iterations: usize,
    /// Recurrence residual norm at exit (preconditioned residual).
    pub rec_residual: f64,
    pub initial_residual: f64,
}

/// Per-solve stagnation bookkeeping, threaded through [`stop_check`].
/// Derived purely from the rank-agreed recurrence residual, so every rank
/// reaches the same verdict on the same iteration.
pub(crate) struct StopState {
    best: f64,
    stalled: usize,
    last_it: usize,
}

impl StopState {
    pub(crate) fn new(r0: f64) -> Self {
        StopState { best: r0, stalled: 0, last_it: 0 }
    }
}

fn stop_check(
    rnorm: f64,
    r0: f64,
    bnorm: f64,
    opts: &AztecOptions,
    it: usize,
    state: &mut StopState,
) -> Option<AzWhy> {
    let scale = match opts.conv {
        crate::aztecoo::AzConv::R0 => {
            if r0 > 0.0 {
                r0
            } else {
                1.0
            }
        }
        crate::aztecoo::AzConv::Rhs => {
            if bnorm > 0.0 {
                bnorm
            } else {
                1.0
            }
        }
    };
    if !rnorm.is_finite() {
        return Some(AzWhy::Breakdown);
    }
    if rnorm <= opts.tol * scale {
        return Some(AzWhy::Normal);
    }
    if rnorm > 1e8 * scale.max(1.0) {
        return Some(AzWhy::Ill);
    }
    // Stagnation test: count each iteration once (methods that check
    // twice per iteration — BiCGStab's half-step, TFQMR's inner loop —
    // only advance the stall counter when `it` advances).
    if opts.stall_window > 0 && it > state.last_it {
        state.last_it = it;
        if rnorm < state.best * (1.0 - 1e-12) {
            state.best = rnorm;
            state.stalled = 0;
        } else {
            state.stalled += 1;
        }
        if state.stalled >= opts.stall_window {
            return Some(AzWhy::Stagnated);
        }
    }
    if it >= opts.max_iter {
        return Some(AzWhy::Maxits);
    }
    None
}

/// Left-preconditioned CG on M⁻¹A.
pub(crate) fn cg(
    comm: &Communicator,
    a: &dyn RowMatrix,
    pc: &dyn AzPc,
    b: &Vector,
    x: &mut Vector,
    opts: &AztecOptions,
) -> AztecResult<RawOutcome> {
    let map = a.row_map().clone();
    let bnorm = b.norm2(comm)?;
    let mut ax = Vector::new(map.clone());
    a.apply(comm, x, &mut ax)?;
    let mut r = b.clone();
    r.update(-1.0, &ax)?;
    let mut z = Vector::new(map.clone());
    pc.apply(comm, &r, &mut z)?;
    let r0 = z.norm2(comm)?; // Aztec-style: preconditioned residual norm
    let mut stop = StopState::new(r0);
    if let Some(why) = stop_check(r0, r0, bnorm, opts, 0, &mut stop) {
        return Ok(RawOutcome { why, iterations: 0, rec_residual: r0, initial_residual: r0 });
    }
    let mut p = z.clone();
    let mut q = Vector::new(map);
    let mut rz = r.dot(&z, comm)?;
    let mut it = 0usize;
    let mut rnorm = r0;
    let why = loop {
        it += 1;
        a.apply(comm, &p, &mut q)?;
        let pq = p.dot(&q, comm)?;
        if pq == 0.0 || !pq.is_finite() {
            break AzWhy::Breakdown;
        }
        let alpha = rz / pq;
        x.update(alpha, &p)?;
        r.update(-alpha, &q)?;
        pc.apply(comm, &r, &mut z)?;
        rnorm = z.norm2(comm)?;
        if let Some(why) = stop_check(rnorm, r0, bnorm, opts, it, &mut stop) {
            break why;
        }
        let rz_new = r.dot(&z, comm)?;
        let beta = rz_new / rz;
        rz = rz_new;
        p.update2(1.0, &z, beta)?;
    };
    Ok(RawOutcome { why, iterations: it, rec_residual: rnorm, initial_residual: r0 })
}

/// Left-preconditioned restarted GMRES(k) on M⁻¹A.
pub(crate) fn gmres(
    comm: &Communicator,
    a: &dyn RowMatrix,
    pc: &dyn AzPc,
    b: &Vector,
    x: &mut Vector,
    opts: &AztecOptions,
) -> AztecResult<RawOutcome> {
    let map = a.row_map().clone();
    let k = opts.kspace.max(1);
    let bnorm = b.norm2(comm)?;

    let mut ax = Vector::new(map.clone());
    let mut w = Vector::new(map.clone());
    let precond_residual = |comm: &Communicator,
                            x: &Vector,
                            ax: &mut Vector,
                            out: &mut Vector|
     -> AztecResult<()> {
        a.apply(comm, x, ax)?;
        let mut r = b.clone();
        r.update(-1.0, ax)?;
        pc.apply(comm, &r, out)?;
        Ok(())
    };

    let mut z = Vector::new(map.clone());
    precond_residual(comm, x, &mut ax, &mut z)?;
    let r0 = z.norm2(comm)?;
    let mut stop = StopState::new(r0);
    if let Some(why) = stop_check(r0, r0, bnorm, opts, 0, &mut stop) {
        return Ok(RawOutcome { why, iterations: 0, rec_residual: r0, initial_residual: r0 });
    }

    let mut it = 0usize;
    let mut rnorm = r0;
    let why = 'outer: loop {
        let beta = rnorm;
        let mut v0 = z.clone();
        v0.scale(1.0 / beta);
        let mut basis = vec![v0];
        let mut h_cols: Vec<Vec<f64>> = Vec::with_capacity(k);
        let mut cs: Vec<f64> = Vec::with_capacity(k);
        let mut sn: Vec<f64> = Vec::with_capacity(k);
        let mut g = vec![0.0; k + 1];
        g[0] = beta;

        let mut inner = 0usize;
        let mut cycle_why = None;
        while inner < k {
            let j = inner;
            // w = M⁻¹·A·v_j.
            a.apply(comm, &basis[j], &mut ax)?;
            pc.apply(comm, &ax, &mut w)?;
            let mut hcol = vec![0.0; j + 2];
            for (i, vi) in basis.iter().enumerate().take(j + 1) {
                let hij = w.dot(vi, comm)?;
                hcol[i] = hij;
                w.update(-hij, vi)?;
            }
            let hnext = w.norm2(comm)?;
            hcol[j + 1] = hnext;
            for i in 0..j {
                let t = cs[i] * hcol[i] + sn[i] * hcol[i + 1];
                hcol[i + 1] = -sn[i] * hcol[i] + cs[i] * hcol[i + 1];
                hcol[i] = t;
            }
            let (c, s) = givens(hcol[j], hcol[j + 1]);
            cs.push(c);
            sn.push(s);
            hcol[j] = c * hcol[j] + s * hcol[j + 1];
            let gj = g[j];
            g[j] = c * gj;
            g[j + 1] = -s * gj;
            h_cols.push(hcol);
            it += 1;
            inner += 1;
            rnorm = g[j + 1].abs();
            if let Some(why) = stop_check(rnorm, r0, bnorm, opts, it, &mut stop) {
                cycle_why = Some(why);
                break;
            }
            if hnext == 0.0 {
                cycle_why = Some(AzWhy::Normal);
                break;
            }
            let mut vn = w.clone();
            vn.scale(1.0 / hnext);
            basis.push(vn);
        }
        // y via back substitution; x += V·y.
        let kk = inner;
        let mut y = vec![0.0; kk];
        for i in (0..kk).rev() {
            let mut acc = g[i];
            for (jj, yj) in y.iter().enumerate().take(kk).skip(i + 1) {
                acc -= h_cols[jj][i] * yj;
            }
            y[i] = acc / h_cols[i][i];
        }
        for (vi, yi) in basis.iter().zip(&y) {
            x.update(*yi, vi)?;
        }
        if let Some(why) = cycle_why {
            break 'outer why;
        }
        precond_residual(comm, x, &mut ax, &mut z)?;
        rnorm = z.norm2(comm)?;
        if let Some(why) = stop_check(rnorm, r0, bnorm, opts, it, &mut stop) {
            break 'outer why;
        }
    };
    Ok(RawOutcome { why, iterations: it, rec_residual: rnorm, initial_residual: r0 })
}

/// Left-preconditioned BiCGStab on M⁻¹A.
pub(crate) fn bicgstab(
    comm: &Communicator,
    a: &dyn RowMatrix,
    pc: &dyn AzPc,
    b: &Vector,
    x: &mut Vector,
    opts: &AztecOptions,
) -> AztecResult<RawOutcome> {
    let map = a.row_map().clone();
    let bnorm = b.norm2(comm)?;
    let mut tmp = Vector::new(map.clone());
    a.apply(comm, x, &mut tmp)?;
    let mut raw = b.clone();
    raw.update(-1.0, &tmp)?;
    // Iterate on the preconditioned system: r = M⁻¹(b − A x).
    let mut r = Vector::new(map.clone());
    pc.apply(comm, &raw, &mut r)?;
    let r0n = r.norm2(comm)?;
    let mut stop = StopState::new(r0n);
    if let Some(why) = stop_check(r0n, r0n, bnorm, opts, 0, &mut stop) {
        return Ok(RawOutcome { why, iterations: 0, rec_residual: r0n, initial_residual: r0n });
    }
    let r_hat = r.clone();
    let mut p = r.clone();
    let mut v = Vector::new(map.clone());
    let mut t = Vector::new(map);
    let mut rho = r_hat.dot(&r, comm)?;
    let mut it = 0usize;
    let mut rnorm = r0n;
    let why = loop {
        it += 1;
        // v = M⁻¹·A·p.
        a.apply(comm, &p, &mut tmp)?;
        pc.apply(comm, &tmp, &mut v)?;
        let rhv = r_hat.dot(&v, comm)?;
        if rhv == 0.0 || !rhv.is_finite() {
            break AzWhy::Breakdown;
        }
        let alpha = rho / rhv;
        r.update(-alpha, &v)?; // s stored in r
        let snorm = r.norm2(comm)?;
        if let Some(why) = stop_check(snorm, r0n, bnorm, opts, it, &mut stop) {
            x.update(alpha, &p)?;
            rnorm = snorm;
            break why;
        }
        // t = M⁻¹·A·s.
        a.apply(comm, &r, &mut tmp)?;
        pc.apply(comm, &tmp, &mut t)?;
        let tt = t.dot(&t, comm)?;
        if tt == 0.0 {
            break AzWhy::Breakdown;
        }
        let omega = t.dot(&r, comm)? / tt;
        if omega == 0.0 || !omega.is_finite() {
            break AzWhy::Breakdown;
        }
        x.update(alpha, &p)?;
        x.update(omega, &r)?;
        r.update(-omega, &t)?;
        rnorm = r.norm2(comm)?;
        if let Some(why) = stop_check(rnorm, r0n, bnorm, opts, it, &mut stop) {
            break why;
        }
        let rho_new = r_hat.dot(&r, comm)?;
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        // p = r + β(p − ω v).
        for ((pi, ri), vi) in p
            .values_mut()
            .iter_mut()
            .zip(r.values())
            .zip(v.values())
        {
            *pi = ri + beta * (*pi - omega * vi);
        }
    };
    Ok(RawOutcome { why, iterations: it, rec_residual: rnorm, initial_residual: r0n })
}

/// Left-preconditioned CGS on M⁻¹A (Aztec's `AZ_cgs`).
pub(crate) fn cgs(
    comm: &Communicator,
    a: &dyn RowMatrix,
    pc: &dyn AzPc,
    b: &Vector,
    x: &mut Vector,
    opts: &AztecOptions,
) -> AztecResult<RawOutcome> {
    let map = a.row_map().clone();
    let bnorm = b.norm2(comm)?;
    let mut tmp = Vector::new(map.clone());
    a.apply(comm, x, &mut tmp)?;
    let mut raw = b.clone();
    raw.update(-1.0, &tmp)?;
    let mut r = Vector::new(map.clone());
    pc.apply(comm, &raw, &mut r)?;
    let r0n = r.norm2(comm)?;
    let mut stop = StopState::new(r0n);
    if let Some(why) = stop_check(r0n, r0n, bnorm, opts, 0, &mut stop) {
        return Ok(RawOutcome { why, iterations: 0, rec_residual: r0n, initial_residual: r0n });
    }
    let r_hat = r.clone();
    let mut p = r.clone();
    let mut u = r.clone();
    let mut v = Vector::new(map.clone());
    let mut q = Vector::new(map.clone());
    let mut uhat = Vector::new(map);
    let mut rho = r_hat.dot(&r, comm)?;
    let mut it = 0usize;
    let mut rnorm = r0n;
    let why = loop {
        it += 1;
        if rho == 0.0 || !rho.is_finite() {
            break AzWhy::Breakdown;
        }
        // v = M⁻¹·A·p.
        a.apply(comm, &p, &mut tmp)?;
        pc.apply(comm, &tmp, &mut v)?;
        let sigma = r_hat.dot(&v, comm)?;
        if sigma == 0.0 || !sigma.is_finite() {
            break AzWhy::Breakdown;
        }
        let alpha = rho / sigma;
        // q = u − α·v ; û = u + q.
        for ((qi, ui), vi) in q.values_mut().iter_mut().zip(u.values()).zip(v.values()) {
            *qi = ui - alpha * vi;
        }
        for ((hi, ui), qi) in uhat.values_mut().iter_mut().zip(u.values()).zip(q.values()) {
            *hi = ui + qi;
        }
        // x += α·û ; r −= α·M⁻¹·A·û.
        x.update(alpha, &uhat)?;
        a.apply(comm, &uhat, &mut tmp)?;
        let mut mau = Vector::new(a.row_map().clone());
        pc.apply(comm, &tmp, &mut mau)?;
        r.update(-alpha, &mau)?;
        rnorm = r.norm2(comm)?;
        if let Some(why) = stop_check(rnorm, r0n, bnorm, opts, it, &mut stop) {
            break why;
        }
        let rho_new = r_hat.dot(&r, comm)?;
        let beta = rho_new / rho;
        rho = rho_new;
        // u = r + β·q ; p = u + β·(q + β·p).
        for ((ui, ri), qi) in u.values_mut().iter_mut().zip(r.values()).zip(q.values()) {
            *ui = ri + beta * qi;
        }
        for ((pi, qi), ui) in p.values_mut().iter_mut().zip(q.values()).zip(u.values()) {
            *pi = ui + beta * (qi + beta * *pi);
        }
    };
    Ok(RawOutcome { why, iterations: it, rec_residual: rnorm, initial_residual: r0n })
}

/// Left-preconditioned TFQMR on M⁻¹A (Aztec's `AZ_tfqmr`).
pub(crate) fn tfqmr(
    comm: &Communicator,
    a: &dyn RowMatrix,
    pc: &dyn AzPc,
    b: &Vector,
    x: &mut Vector,
    opts: &AztecOptions,
) -> AztecResult<RawOutcome> {
    let map = a.row_map().clone();
    let bnorm = b.norm2(comm)?;
    // Initial preconditioned residual (before the closure below captures
    // its scratch buffer).
    let mut r = Vector::new(map.clone());
    {
        let mut tmp0 = Vector::new(map.clone());
        a.apply(comm, x, &mut tmp0)?;
        let mut raw = b.clone();
        raw.update(-1.0, &tmp0)?;
        pc.apply(comm, &raw, &mut r)?;
    }
    let mut scratch = Vector::new(map.clone());
    let mut apply_m = |comm: &Communicator, vin: &Vector, vout: &mut Vector| -> AztecResult<()> {
        a.apply(comm, vin, &mut scratch)?;
        pc.apply(comm, &scratch, vout)
    };
    let r0n = r.norm2(comm)?;
    let mut stop = StopState::new(r0n);
    if let Some(why) = stop_check(r0n, r0n, bnorm, opts, 0, &mut stop) {
        return Ok(RawOutcome { why, iterations: 0, rec_residual: r0n, initial_residual: r0n });
    }
    let r_hat = r.clone();
    let mut w = r.clone();
    let mut y = r.clone();
    let mut v = Vector::new(map.clone());
    apply_m(comm, &y, &mut v)?;
    let mut u = v.clone();
    let mut d = Vector::new(map);
    let mut theta = 0.0f64;
    let mut eta = 0.0f64;
    let mut tau = r0n;
    let mut rho = r_hat.dot(&r, comm)?;
    let mut it = 0usize;
    let mut rnorm = r0n;
    let why = 'outer: loop {
        it += 1;
        let sigma = r_hat.dot(&v, comm)?;
        if sigma == 0.0 || rho == 0.0 || !sigma.is_finite() {
            break AzWhy::Breakdown;
        }
        let alpha = rho / sigma;
        for m in 0..2 {
            if m == 1 {
                y.update(-alpha, &v)?;
                apply_m(comm, &y, &mut u)?;
            }
            w.update(-alpha, &u)?;
            let coeff = theta * theta * eta / alpha;
            for (di, yi) in d.values_mut().iter_mut().zip(y.values()) {
                *di = yi + coeff * *di;
            }
            theta = w.norm2(comm)? / tau;
            let cfac = 1.0 / (1.0 + theta * theta).sqrt();
            tau *= theta * cfac;
            eta = cfac * cfac * alpha;
            x.update(eta, &d)?;
            rnorm = tau * ((2 * it) as f64).sqrt();
            if let Some(why) = stop_check(rnorm, r0n, bnorm, opts, it, &mut stop) {
                break 'outer why;
            }
        }
        let rho_new = r_hat.dot(&w, comm)?;
        let beta = rho_new / rho;
        rho = rho_new;
        for (yi, wi) in y.values_mut().iter_mut().zip(w.values()) {
            *yi = wi + beta * *yi;
        }
        let mut au = Vector::new(a.row_map().clone());
        apply_m(comm, &y, &mut au)?;
        for ((vi, ui), aui) in v.values_mut().iter_mut().zip(u.values()).zip(au.values()) {
            *vi = aui + beta * (ui + beta * *vi);
        }
        u = au;
    };
    Ok(RawOutcome { why, iterations: it, rec_residual: rnorm, initial_residual: r0n })
}

fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else if a.abs() < b.abs() {
        let t = a / b;
        let s = 1.0 / (1.0 + t * t).sqrt();
        (s * t, s)
    } else {
        let t = b / a;
        let c = 1.0 / (1.0 + t * t).sqrt();
        (c, c * t)
    }
}
