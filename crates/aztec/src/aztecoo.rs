//! The AztecOO-style solver engine: option enums in, status record out.

use rcomm::Communicator;

use crate::precond::{AzPc, JacobiPc, NeumannPc, NoPc, SymGsPc};
use crate::rowmatrix::RowMatrix;
use crate::solvers;
use crate::vector::Vector;
use crate::{AztecError, AztecResult};

/// Solver selection (`options[AZ_solver]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AzSolver {
    /// Conjugate gradients.
    Cg,
    /// Restarted GMRES.
    Gmres,
    /// BiCGStab.
    BiCgStab,
    /// Conjugate gradients squared.
    Cgs,
    /// Transpose-free QMR.
    Tfqmr,
}

impl AzSolver {
    /// Parse an Aztec-flavoured name.
    pub fn parse(name: &str) -> AztecResult<Self> {
        Ok(match name.to_ascii_lowercase().as_str() {
            "cg" | "az_cg" => AzSolver::Cg,
            "gmres" | "az_gmres" => AzSolver::Gmres,
            "bicgstab" | "az_bicgstab" => AzSolver::BiCgStab,
            "cgs" | "az_cgs" => AzSolver::Cgs,
            "tfqmr" | "az_tfqmr" => AzSolver::Tfqmr,
            other => return Err(AztecError::BadOption(format!("unknown solver '{other}'"))),
        })
    }
}

/// Preconditioner selection (`options[AZ_precond]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AzPrecond {
    /// No preconditioning.
    None,
    /// Point Jacobi.
    Jacobi,
    /// Neumann-series polynomial of the given order.
    Neumann {
        /// Polynomial order (`options[AZ_poly_ord]`).
        order: usize,
    },
    /// Local symmetric Gauss–Seidel.
    SymGs,
}

impl AzPrecond {
    /// Parse an Aztec-flavoured name (order set separately).
    pub fn parse(name: &str) -> AztecResult<Self> {
        Ok(match name.to_ascii_lowercase().as_str() {
            "none" | "az_none" => AzPrecond::None,
            "jacobi" | "az_jacobi" => AzPrecond::Jacobi,
            "neumann" | "az_neumann" | "poly" => AzPrecond::Neumann { order: 3 },
            "sym_gs" | "az_sym_gs" | "symgs" => AzPrecond::SymGs,
            other => {
                return Err(AztecError::BadOption(format!("unknown preconditioner '{other}'")))
            }
        })
    }
}

/// Convergence-test normalization (`options[AZ_conv]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AzConv {
    /// ‖r‖/‖r₀‖ (Aztec's default).
    R0,
    /// ‖r‖/‖b‖.
    Rhs,
}

/// Termination status (`status[AZ_why]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AzWhy {
    /// Converged.
    Normal,
    /// Iteration limit.
    Maxits,
    /// Numerical breakdown.
    Breakdown,
    /// Residual blow-up / ill-conditioning detected.
    Ill,
    /// No new best residual for [`AztecOptions::stall_window`]
    /// consecutive iterations.
    Stagnated,
}

impl AzWhy {
    /// Did the solve succeed?
    pub fn converged(self) -> bool {
        self == AzWhy::Normal
    }
}

/// The full option block — RAztec's equivalent of Aztec's
/// `options[]`/`params[]` arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct AztecOptions {
    /// Method.
    pub solver: AzSolver,
    /// Preconditioner.
    pub precond: AzPrecond,
    /// Convergence normalization.
    pub conv: AzConv,
    /// Tolerance (`params[AZ_tol]`).
    pub tol: f64,
    /// Iteration cap (`options[AZ_max_iter]`).
    pub max_iter: usize,
    /// GMRES restart space (`options[AZ_kspace]`).
    pub kspace: usize,
    /// Stagnation guard: stop with [`AzWhy::Stagnated`] after this many
    /// consecutive iterations without a new best residual (0 disables —
    /// Aztec itself has no such test). The test uses only the
    /// rank-agreed recurrence residual, so every rank stops identically.
    pub stall_window: usize,
}

impl Default for AztecOptions {
    fn default() -> Self {
        AztecOptions {
            solver: AzSolver::Gmres,
            precond: AzPrecond::None,
            conv: AzConv::R0,
            tol: 1e-8,
            max_iter: 10_000,
            kspace: 30,
            stall_window: 0,
        }
    }
}

/// The status record a solve returns — RAztec's `status[]` array with
/// names (`AZ_its`, `AZ_why`, `AZ_r`, `AZ_scaled_r`).
#[derive(Debug, Clone, PartialEq)]
pub struct SolveStatus {
    /// Iterations performed.
    pub its: usize,
    /// Why the iteration stopped.
    pub why: AzWhy,
    /// True final residual norm ‖b − A·x‖₂ (recomputed, not the
    /// recurrence value).
    pub true_residual: f64,
    /// True residual scaled by the convergence normalization.
    pub scaled_residual: f64,
    /// The recurrence (preconditioned) residual the iteration tracked.
    pub rec_residual: f64,
}

/// The solver engine: construct over a matrix + rhs + initial guess, set
/// options, call [`AztecOO::iterate`].
pub struct AztecOO<'a> {
    a: &'a dyn RowMatrix,
    options: AztecOptions,
}

impl<'a> AztecOO<'a> {
    /// New engine for an operator.
    pub fn new(a: &'a dyn RowMatrix) -> Self {
        AztecOO { a, options: AztecOptions::default() }
    }

    /// Set the whole option block.
    pub fn set_options(&mut self, options: AztecOptions) {
        self.options = options;
    }

    /// Borrow options mutably (Aztec style: poke fields, then iterate).
    pub fn options_mut(&mut self) -> &mut AztecOptions {
        &mut self.options
    }

    /// Borrow options.
    pub fn options(&self) -> &AztecOptions {
        &self.options
    }

    fn build_pc(&self) -> AztecResult<Box<dyn AzPc + 'a>> {
        Ok(match self.options.precond {
            AzPrecond::None => Box::new(NoPc),
            AzPrecond::Jacobi => Box::new(JacobiPc::new(self.a)?),
            AzPrecond::Neumann { order } => Box::new(NeumannPc::new(self.a, order)?),
            AzPrecond::SymGs => Box::new(SymGsPc::new(self.a)?),
        })
    }

    /// Run the configured method on A·x = b, updating `x` in place.
    /// Collective.
    pub fn iterate(
        &self,
        comm: &Communicator,
        b: &Vector,
        x: &mut Vector,
    ) -> AztecResult<SolveStatus> {
        if self.options.tol < 0.0 {
            return Err(AztecError::BadOption("tol must be non-negative".into()));
        }
        if self.options.max_iter == 0 {
            return Err(AztecError::BadOption("max_iter must be positive".into()));
        }
        let pc = self.build_pc()?;
        let raw = match self.options.solver {
            AzSolver::Cg => solvers::cg(comm, self.a, pc.as_ref(), b, x, &self.options)?,
            AzSolver::Gmres => solvers::gmres(comm, self.a, pc.as_ref(), b, x, &self.options)?,
            AzSolver::BiCgStab => {
                solvers::bicgstab(comm, self.a, pc.as_ref(), b, x, &self.options)?
            }
            AzSolver::Cgs => solvers::cgs(comm, self.a, pc.as_ref(), b, x, &self.options)?,
            AzSolver::Tfqmr => solvers::tfqmr(comm, self.a, pc.as_ref(), b, x, &self.options)?,
        };
        // True residual, recomputed — what Aztec reports in status[AZ_r].
        let mut ax = Vector::new(self.a.row_map().clone());
        self.a.apply(comm, x, &mut ax)?;
        let mut r = b.clone();
        r.update(-1.0, &ax)?;
        let true_residual = r.norm2(comm)?;
        let scale = match self.options.conv {
            AzConv::R0 => {
                if raw.initial_residual > 0.0 {
                    raw.initial_residual
                } else {
                    1.0
                }
            }
            AzConv::Rhs => {
                let bn = b.norm2(comm)?;
                if bn > 0.0 {
                    bn
                } else {
                    1.0
                }
            }
        };
        Ok(SolveStatus {
            its: raw.iterations,
            why: raw.why,
            true_residual,
            scaled_residual: true_residual / scale,
            rec_residual: raw.rec_residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowmatrix::CrsMatrix;
    use rcomm::Universe;
    use rsparse::generate;

    fn run_solver(
        solver: AzSolver,
        precond: AzPrecond,
        a: &rsparse::CsrMatrix,
        ranks: usize,
    ) -> (SolveStatus, f64) {
        let n = a.rows();
        let x_true = generate::random_vector(n, 23);
        let b = a.matvec(&x_true).unwrap();
        let out = Universe::run(ranks, |comm| {
            let m = CrsMatrix::from_global(comm, a).unwrap();
            let bv = Vector::from_global(m.row_map().clone(), &b).unwrap();
            let mut xv = Vector::new(m.row_map().clone());
            let mut az = AztecOO::new(&m);
            az.set_options(AztecOptions {
                solver,
                precond,
                tol: 1e-10,
                max_iter: 3000,
                ..AztecOptions::default()
            });
            let st = az.iterate(comm, &bv, &mut xv).unwrap();
            (st, xv.gather_all(comm).unwrap())
        });
        let (st, full) = out[0].clone();
        let err = full
            .iter()
            .zip(&x_true)
            .fold(0.0f64, |m, (g, e)| m.max((g - e).abs()));
        (st, err)
    }

    #[test]
    fn cg_solves_spd_problem() {
        let a = generate::laplacian_2d(8);
        for pc in [AzPrecond::None, AzPrecond::Jacobi, AzPrecond::SymGs] {
            let (st, err) = run_solver(AzSolver::Cg, pc, &a, 1);
            assert!(st.why.converged(), "{pc:?}: {:?}", st.why);
            assert!(err < 1e-6, "{pc:?}: err = {err}");
        }
    }

    #[test]
    fn gmres_and_bicgstab_solve_nonsymmetric_problem() {
        let (a, _) = rmesh::paper_problem(10).assemble_global();
        for solver in [AzSolver::Gmres, AzSolver::BiCgStab, AzSolver::Cgs, AzSolver::Tfqmr] {
            for pc in [AzPrecond::Jacobi, AzPrecond::Neumann { order: 2 }, AzPrecond::SymGs] {
                let (st, err) = run_solver(solver, pc, &a, 1);
                assert!(st.why.converged(), "{solver:?}/{pc:?}: {:?}", st.why);
                assert!(err < 1e-6, "{solver:?}/{pc:?}: err = {err}");
            }
        }
    }

    #[test]
    fn parallel_runs_agree_with_serial() {
        let a = generate::laplacian_2d(7);
        let (st1, err1) = run_solver(AzSolver::Gmres, AzPrecond::Jacobi, &a, 1);
        let (st4, err4) = run_solver(AzSolver::Gmres, AzPrecond::Jacobi, &a, 4);
        assert!(st1.why.converged() && st4.why.converged());
        assert!(err1 < 1e-6 && err4 < 1e-6);
        // Jacobi is partition-independent, so iteration counts match.
        assert_eq!(st1.its, st4.its);
    }

    #[test]
    fn status_reports_true_and_scaled_residuals() {
        let a = generate::laplacian_2d(6);
        let (st, _) = run_solver(AzSolver::Cg, AzPrecond::None, &a, 2);
        assert!(st.true_residual < 1e-7);
        assert!(st.scaled_residual <= 1e-9 * 1.01);
        assert!(st.its > 0);
    }

    #[test]
    fn maxits_is_reported() {
        let a = generate::laplacian_2d(10);
        let n = 100;
        let b = vec![1.0; n];
        let out = Universe::run(1, |comm| {
            let m = CrsMatrix::from_global(comm, &a).unwrap();
            let bv = Vector::from_global(m.row_map().clone(), &b).unwrap();
            let mut xv = Vector::new(m.row_map().clone());
            let mut az = AztecOO::new(&m);
            az.options_mut().solver = AzSolver::Cg;
            az.options_mut().tol = 1e-15;
            az.options_mut().max_iter = 2;
            az.iterate(comm, &bv, &mut xv).unwrap()
        });
        assert_eq!(out[0].why, AzWhy::Maxits);
        assert_eq!(out[0].its, 2);
        assert!(!out[0].why.converged());
    }

    #[test]
    fn stagnation_guard_stops_stalled_iteration() {
        // Unpreconditioned CG with a 1-iteration stall window on a stiff
        // problem: the non-monotone residual trips the guard long before
        // max_iter, and identically on every rank.
        let a = generate::laplacian_2d(10);
        let n = 100;
        let b = vec![1.0; n];
        for ranks in [1usize, 2] {
            let out = Universe::run(ranks, |comm| {
                let m = CrsMatrix::from_global(comm, &a).unwrap();
                let bv = Vector::from_global(m.row_map().clone(), &b).unwrap();
                let mut xv = Vector::new(m.row_map().clone());
                let mut az = AztecOO::new(&m);
                az.options_mut().solver = AzSolver::Cg;
                az.options_mut().tol = 1e-300;
                az.options_mut().max_iter = 1_000_000;
                az.options_mut().stall_window = 1;
                az.iterate(comm, &bv, &mut xv).unwrap()
            });
            for st in &out {
                assert_eq!(st.why, out[0].why, "ranks disagree");
                assert_eq!(st.its, out[0].its, "ranks disagree");
            }
            assert_eq!(out[0].why, AzWhy::Stagnated);
            assert!(!out[0].why.converged());
            assert!(out[0].its < 1_000_000);
        }
    }

    #[test]
    fn conv_normalizations_differ() {
        // With x0 = 0, r0 = b, so R0 and Rhs give identical scaling; use a
        // nonzero x0 to tell them apart.
        let a = generate::laplacian_2d(5);
        let n = 25;
        let b = vec![1.0; n];
        let out = Universe::run(1, |comm| {
            let m = CrsMatrix::from_global(comm, &a).unwrap();
            let bv = Vector::from_global(m.row_map().clone(), &b).unwrap();
            let mut results = vec![];
            for conv in [AzConv::R0, AzConv::Rhs] {
                let mut xv = Vector::new(m.row_map().clone());
                xv.put_scalar(100.0);
                let mut az = AztecOO::new(&m);
                az.options_mut().solver = AzSolver::Cg;
                az.options_mut().conv = conv;
                az.options_mut().tol = 1e-6;
                results.push(az.iterate(comm, &bv, &mut xv).unwrap());
            }
            results
        });
        let (r0, rhs) = (&out[0][0], &out[0][1]);
        assert!(r0.why.converged() && rhs.why.converged());
        // ‖r₀‖ >> ‖b‖ here, so the R0 test is weaker and stops earlier.
        assert!(r0.its <= rhs.its);
    }

    #[test]
    fn option_parsing() {
        assert_eq!(AzSolver::parse("AZ_gmres").unwrap(), AzSolver::Gmres);
        assert_eq!(AzSolver::parse("cg").unwrap(), AzSolver::Cg);
        assert_eq!(AzSolver::parse("az_cgs").unwrap(), AzSolver::Cgs);
        assert_eq!(AzSolver::parse("tfqmr").unwrap(), AzSolver::Tfqmr);
        assert!(AzSolver::parse("qmr").is_err());
        assert_eq!(AzPrecond::parse("az_jacobi").unwrap(), AzPrecond::Jacobi);
        assert_eq!(AzPrecond::parse("neumann").unwrap(), AzPrecond::Neumann { order: 3 });
        assert_eq!(AzPrecond::parse("sym_gs").unwrap(), AzPrecond::SymGs);
        assert!(AzPrecond::parse("ilu9").is_err());
    }

    #[test]
    fn bad_options_are_rejected() {
        let a = generate::laplacian_2d(3);
        let out = Universe::run(1, |comm| {
            let m = CrsMatrix::from_global(comm, &a).unwrap();
            let bv = Vector::new(m.row_map().clone());
            let mut xv = Vector::new(m.row_map().clone());
            let mut az = AztecOO::new(&m);
            az.options_mut().tol = -1.0;
            let e1 = az.iterate(comm, &bv, &mut xv).is_err();
            az.options_mut().tol = 1e-8;
            az.options_mut().max_iter = 0;
            let e2 = az.iterate(comm, &bv, &mut xv).is_err();
            e1 && e2
        });
        assert!(out[0]);
    }
}
