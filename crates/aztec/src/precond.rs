//! RAztec preconditioners: Jacobi scaling, Neumann-series polynomial, and
//! local symmetric Gauss–Seidel — the classic AztecOO set (`AZ_Jacobi`,
//! `AZ_Neumann`, `AZ_sym_GS`).

use rcomm::Communicator;

use crate::rowmatrix::RowMatrix;
use crate::vector::Vector;
use crate::{AztecError, AztecResult};

/// Internal preconditioner object built by [`crate::AztecOO`] from the
/// option enum.
pub(crate) trait AzPc: Send + Sync {
    fn apply(&self, comm: &Communicator, r: &Vector, z: &mut Vector) -> AztecResult<()>;
}

/// No preconditioning.
pub(crate) struct NoPc;

impl AzPc for NoPc {
    fn apply(&self, _comm: &Communicator, r: &Vector, z: &mut Vector) -> AztecResult<()> {
        z.values_mut().copy_from_slice(r.values());
        Ok(())
    }
}

/// Jacobi scaling (k steps of damped point-Jacobi with zero initial guess
/// collapse to one diagonal solve; Aztec exposes the single-step form).
pub(crate) struct JacobiPc {
    inv_diag: Vec<f64>,
}

impl JacobiPc {
    pub(crate) fn new(a: &dyn RowMatrix) -> AztecResult<Self> {
        let d = a
            .extract_diagonal()
            .ok_or_else(|| AztecError::BadOption("Jacobi needs a matrix diagonal".into()))?;
        if let Some(row) = d.iter().position(|&x| x == 0.0) {
            return Err(AztecError::Sparse(format!("zero diagonal at local row {row}")));
        }
        Ok(JacobiPc { inv_diag: d.iter().map(|x| 1.0 / x).collect() })
    }
}

impl AzPc for JacobiPc {
    fn apply(&self, _comm: &Communicator, r: &Vector, z: &mut Vector) -> AztecResult<()> {
        for ((zi, ri), di) in z.values_mut().iter_mut().zip(r.values()).zip(&self.inv_diag) {
            *zi = ri * di;
        }
        Ok(())
    }
}

/// Neumann-series polynomial preconditioner of order `p`:
/// M⁻¹ = Σ_{k=0}^{p} (I − D⁻¹A)ᵏ · D⁻¹. Works with *any* [`RowMatrix`]
/// (matrix-free included) as long as the diagonal is available — each term
/// costs one matvec.
pub(crate) struct NeumannPc<'a> {
    a: &'a dyn RowMatrix,
    inv_diag: Vec<f64>,
    order: usize,
}

impl<'a> NeumannPc<'a> {
    pub(crate) fn new(a: &'a dyn RowMatrix, order: usize) -> AztecResult<Self> {
        let d = a
            .extract_diagonal()
            .ok_or_else(|| AztecError::BadOption("Neumann needs a matrix diagonal".into()))?;
        if let Some(row) = d.iter().position(|&x| x == 0.0) {
            return Err(AztecError::Sparse(format!("zero diagonal at local row {row}")));
        }
        Ok(NeumannPc { a, inv_diag: d.iter().map(|x| 1.0 / x).collect(), order })
    }
}

impl AzPc for NeumannPc<'_> {
    fn apply(&self, comm: &Communicator, r: &Vector, z: &mut Vector) -> AztecResult<()> {
        // term ← D⁻¹·r ; z ← term ; repeat: term ← term − D⁻¹·A·term.
        let mut term = r.clone();
        for (ti, di) in term.values_mut().iter_mut().zip(&self.inv_diag) {
            *ti *= di;
        }
        z.values_mut().copy_from_slice(term.values());
        let mut at = Vector::new(r.map().clone());
        for _ in 0..self.order {
            self.a.apply(comm, &term, &mut at)?;
            for ((ti, ai), di) in term.values_mut().iter_mut().zip(at.values()).zip(&self.inv_diag)
            {
                *ti -= ai * di;
            }
            z.update(1.0, &term)?;
        }
        Ok(())
    }
}

/// Local symmetric Gauss–Seidel: one forward and one backward sweep on
/// this rank's diagonal block (assembled rows required).
pub(crate) struct SymGsPc {
    /// Local block in local column numbering, CSR arrays.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
    diag_pos: Vec<usize>,
}

impl SymGsPc {
    pub(crate) fn new(a: &dyn RowMatrix) -> AztecResult<Self> {
        let map = a.row_map();
        let n = map.num_my();
        let lo = map.min_my_gid();
        let hi = lo + n;
        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        let mut diag_pos = vec![usize::MAX; n];
        let mut cbuf = Vec::new();
        let mut vbuf = Vec::new();
        for i in 0..n {
            a.extract_my_row(i, &mut cbuf, &mut vbuf).ok_or_else(|| {
                AztecError::BadOption("sym-GS needs assembled matrix rows".into())
            })?;
            for (&c, &v) in cbuf.iter().zip(&vbuf) {
                if (lo..hi).contains(&c) {
                    let lc = c - lo;
                    if lc == i {
                        diag_pos[i] = col_idx.len();
                    }
                    col_idx.push(lc);
                    values.push(v);
                }
            }
            if diag_pos[i] == usize::MAX {
                return Err(AztecError::Sparse(format!("no diagonal in local row {i}")));
            }
            row_ptr[i + 1] = col_idx.len();
        }
        Ok(SymGsPc { row_ptr, col_idx, values, diag_pos })
    }
}

impl AzPc for SymGsPc {
    fn apply(&self, _comm: &Communicator, r: &Vector, z: &mut Vector) -> AztecResult<()> {
        let n = self.diag_pos.len();
        let zv = z.values_mut();
        let rv = r.values();
        zv.iter_mut().for_each(|x| *x = 0.0);
        // Forward sweep on (D + L) z = r.
        for i in 0..n {
            let mut acc = rv[i];
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                if j < i {
                    acc -= self.values[k] * zv[j];
                }
            }
            zv[i] = acc / self.values[self.diag_pos[i]];
        }
        // Backward sweep: z ← z + D⁻¹(r − A z) in reverse order (GS).
        for i in (0..n).rev() {
            let mut acc = rv[i];
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                if j != i {
                    acc -= self.values[k] * zv[j];
                }
            }
            zv[i] = acc / self.values[self.diag_pos[i]];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::Map;
    use crate::rowmatrix::CrsMatrix;
    use rcomm::Universe;
    use rsparse::generate;

    #[test]
    fn jacobi_pc_scales_by_diagonal() {
        let a = generate::laplacian_1d(6);
        let out = Universe::run(2, |comm| {
            let m = CrsMatrix::from_global(comm, &a).unwrap();
            let pc = JacobiPc::new(&m).unwrap();
            let r = Vector::from_global(m.row_map().clone(), &[4.0; 6]).unwrap();
            let mut z = Vector::new(m.row_map().clone());
            pc.apply(comm, &r, &mut z).unwrap();
            z.gather_all(comm).unwrap()
        });
        for got in out {
            assert_eq!(got, vec![2.0; 6]);
        }
    }

    #[test]
    fn neumann_pc_improves_with_order() {
        let a = generate::random_diag_dominant(30, 3, 5);
        let b = vec![1.0; 30];
        let out = Universe::run(1, |comm| {
            let m = CrsMatrix::from_global(comm, &a).unwrap();
            let r = Vector::from_global(m.row_map().clone(), &b).unwrap();
            let mut rel = Vec::new();
            for order in [0usize, 2, 5] {
                let pc = NeumannPc::new(&m, order).unwrap();
                let mut z = Vector::new(m.row_map().clone());
                pc.apply(comm, &r, &mut z).unwrap();
                let res = rsparse::ops::residual(&a, z.values(), &b).unwrap();
                rel.push(rsparse::dense::norm2(&res) / rsparse::dense::norm2(&b));
            }
            rel
        });
        let rel = &out[0];
        assert!(rel[1] < rel[0], "{rel:?}");
        assert!(rel[2] < rel[1], "{rel:?}");
        assert!(rel[2] < 0.05, "order-5 Neumann should be accurate: {rel:?}");
    }

    #[test]
    fn sym_gs_reduces_residual() {
        let a = generate::laplacian_2d(6);
        let b = vec![1.0; 36];
        let out = Universe::run(2, |comm| {
            let m = CrsMatrix::from_global(comm, &a).unwrap();
            let pc = SymGsPc::new(&m).unwrap();
            let r = Vector::from_global(m.row_map().clone(), &b).unwrap();
            let mut z = Vector::new(m.row_map().clone());
            pc.apply(comm, &r, &mut z).unwrap();
            z.gather_all(comm).unwrap()
        });
        for got in &out {
            let res = rsparse::ops::residual(&a, got, &b).unwrap();
            let rel = rsparse::dense::norm2(&res) / 6.0;
            assert!(rel < 0.9, "rel = {rel}");
        }
    }

    #[test]
    fn preconditioners_reject_matrix_free_when_rows_needed() {
        struct Free {
            map: Map,
        }
        impl RowMatrix for Free {
            fn row_map(&self) -> &Map {
                &self.map
            }
            fn apply(
                &self,
                _c: &Communicator,
                x: &Vector,
                y: &mut Vector,
            ) -> AztecResult<()> {
                y.values_mut().copy_from_slice(x.values());
                Ok(())
            }
        }
        let out = Universe::run(1, |comm| {
            let op = Free { map: Map::new(4, comm) };
            (
                JacobiPc::new(&op).is_err(),
                NeumannPc::new(&op, 2).is_err(),
                SymGsPc::new(&op).is_err(),
            )
        });
        assert_eq!(out[0], (true, true, true));
    }
}
