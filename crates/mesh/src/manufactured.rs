//! Discrete manufactured solutions: given a problem's matrix, pick a known
//! solution vector, generate the right-hand side exactly (`b = A·u*`), and
//! measure how well a solver recovers `u*`. This sidesteps discretization
//! error entirely — the correct answer of the *linear algebra* problem is
//! known to machine precision, which is what solver tests need.

use rsparse::{CsrMatrix, SparseResult};

use crate::grid::Grid2d;

/// A smooth test field evaluated at grid points: `sin(πx)·sin(πy)` — zero
/// on the boundary, so it is also a legitimate continuum solution for
/// homogeneous Dirichlet problems.
pub fn sine_field(grid: Grid2d) -> Vec<f64> {
    let n = grid.unknowns();
    (0..n)
        .map(|k| {
            let (i, j) = grid.point(k);
            let (x, y) = grid.coords(i, j);
            (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin()
        })
        .collect()
}

/// A deterministic pseudo-random test field (repeatable across runs).
pub fn wavy_field(grid: Grid2d, seed: u64) -> Vec<f64> {
    let n = grid.unknowns();
    let s = seed as f64 * 0.618;
    (0..n).map(|k| ((k as f64) * 0.731 + s).sin() + 0.1).collect()
}

/// A manufactured problem: matrix, exact solution and matching rhs.
#[derive(Debug, Clone)]
pub struct Manufactured {
    /// The system matrix.
    pub matrix: CsrMatrix,
    /// The exact discrete solution.
    pub exact: Vec<f64>,
    /// `rhs = matrix · exact`.
    pub rhs: Vec<f64>,
}

impl Manufactured {
    /// Build from a matrix and chosen solution.
    pub fn new(matrix: CsrMatrix, exact: Vec<f64>) -> SparseResult<Self> {
        let rhs = matrix.matvec(&exact)?;
        Ok(Manufactured { matrix, exact, rhs })
    }

    /// Max-norm error of a candidate solution against the exact one.
    pub fn error_inf(&self, candidate: &[f64]) -> f64 {
        self.exact
            .iter()
            .zip(candidate)
            .fold(0.0, |m, (e, c)| m.max((e - c).abs()))
    }

    /// Relative residual ‖b − A·x‖₂ / ‖b‖₂ of a candidate.
    pub fn relative_residual(&self, candidate: &[f64]) -> SparseResult<f64> {
        let r = rsparse::ops::residual(&self.matrix, candidate, &self.rhs)?;
        let bn = rsparse::dense::norm2(&self.rhs);
        Ok(if bn == 0.0 {
            rsparse::dense::norm2(&r)
        } else {
            rsparse::dense::norm2(&r) / bn
        })
    }
}

/// The paper's problem with a sine manufactured solution — the standard
/// verification workload used throughout the test suite.
pub fn paper_manufactured(m: usize) -> Manufactured {
    let p = crate::paper_problem(m);
    let (a, _) = p.assemble_global();
    let exact = sine_field(p.grid());
    Manufactured::new(a, exact).expect("shapes agree by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sine_field_is_positive_inside_and_symmetric() {
        let g = Grid2d::new(5);
        let f = sine_field(g);
        assert!(f.iter().all(|&v| v > 0.0));
        // Symmetry under (i,j) -> (j,i).
        for i in 0..5 {
            for j in 0..5 {
                let a = f[g.index(i, j)];
                let b = f[g.index(j, i)];
                assert!((a - b).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn manufactured_rhs_is_consistent() {
        let man = paper_manufactured(8);
        assert_eq!(man.error_inf(&man.exact), 0.0);
        assert!(man.relative_residual(&man.exact).unwrap() < 1e-14);
        // A zero candidate has relative residual 1.
        let zero = vec![0.0; man.exact.len()];
        assert!((man.relative_residual(&zero).unwrap() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn dense_solve_recovers_exact() {
        let man = paper_manufactured(5);
        let x = man.matrix.to_dense().solve(&man.rhs).unwrap();
        assert!(man.error_inf(&x) < 1e-10);
    }

    #[test]
    fn wavy_field_is_deterministic() {
        let g = Grid2d::new(4);
        assert_eq!(wavy_field(g, 3), wavy_field(g, 3));
        assert_ne!(wavy_field(g, 3), wavy_field(g, 4));
    }
}
