//! `rmesh` — parallel mesh/problem generator for the CCA-LISI experiments.
//!
//! Reproduces the paper's test-problem generator (§8): 5-point centered
//! finite differences on the unit square for the general linear PDE
//!
//! ```text
//! u_xx + u_yy − 3·u_x = f,     f = (2 − 6x − x²)·sin(x)
//! ```
//!
//! with Dirichlet boundary conditions, assembled in block-row partitioned
//! form (one block per processor, conformal partition of A, b and x), plus
//! a general convection–diffusion problem family and discrete manufactured
//! solutions for verification.

#![warn(missing_docs)]

mod grid;
mod problem;

pub mod manufactured;

pub use grid::Grid2d;
pub use problem::{ConvectionDiffusion2d, LocalSystem, PAPER_GRID_SIZES};

/// The paper's right-hand side function `f(x) = (2 − 6x − x²)·sin(x)`
/// (independent of y).
pub fn paper_rhs(x: f64, _y: f64) -> f64 {
    (2.0 - 6.0 * x - x * x) * x.sin()
}

/// The paper's PDE as a [`ConvectionDiffusion2d`]: rewriting
/// `u_xx + u_yy − 3u_x = f` in the generator's canonical form
/// `−(u_xx + u_yy) + bx·u_x + by·u_y = g` gives `bx = 3`, `by = 0`,
/// `g = −f`, homogeneous Dirichlet boundary.
pub fn paper_problem(m: usize) -> ConvectionDiffusion2d {
    ConvectionDiffusion2d::new(m)
        .with_convection(3.0, 0.0)
        .with_rhs(|x, y| -paper_rhs(x, y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rhs_matches_formula() {
        let x = 0.3;
        let expect = (2.0 - 1.8 - 0.09) * 0.3f64.sin();
        assert!((paper_rhs(x, 0.7) - expect).abs() < 1e-15);
        // Independent of y.
        assert_eq!(paper_rhs(x, 0.0), paper_rhs(x, 1.0));
    }

    #[test]
    fn paper_problem_has_paper_nnz() {
        // Table 1 column 1: nnz = 5m² − 4m.
        for (m, nnz) in [(50usize, 12300usize), (100, 49600), (200, 199200)] {
            let (a, _) = paper_problem(m).assemble_global();
            assert_eq!(a.nnz(), nnz, "m = {m}");
        }
    }
}
