//! Convection–diffusion problem assembly, serial and block-row parallel.

use std::sync::Arc;

use rcomm::Communicator;
use rsparse::{BlockRowPartition, CooMatrix, CsrMatrix, SparseResult};

use crate::grid::Grid2d;

/// The grid sizes behind the paper's Table 1 rows (nnz = 12300, 49600,
/// 199200, 448800, 798400).
pub const PAPER_GRID_SIZES: [usize; 5] = [50, 100, 200, 300, 400];

/// Scalar function of `(x, y)` used for right-hand sides and boundary data.
pub type ScalarField = Arc<dyn Fn(f64, f64) -> f64 + Send + Sync>;

/// A linear convection–diffusion problem on the unit square,
///
/// ```text
/// −(u_xx + u_yy) + bx·u_x + by·u_y = rhs(x, y),   u = boundary(x, y) on ∂Ω
/// ```
///
/// discretized with 5-point centered differences on an `m × m` interior
/// grid and scaled by `h²` (the convention that keeps the Poisson diagonal
/// at exactly 4, as in the paper's operator). The paper's test problem is
/// [`crate::paper_problem`].
#[derive(Clone)]
pub struct ConvectionDiffusion2d {
    grid: Grid2d,
    bx: f64,
    by: f64,
    rhs: ScalarField,
    boundary: ScalarField,
}

impl std::fmt::Debug for ConvectionDiffusion2d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConvectionDiffusion2d")
            .field("m", &self.grid.m())
            .field("bx", &self.bx)
            .field("by", &self.by)
            .finish()
    }
}

/// One rank's share of an assembled system: its block of rows (columns
/// global) and the matching right-hand-side chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalSystem {
    /// This rank's rows with global column indices.
    pub matrix: CsrMatrix,
    /// This rank's slice of the right-hand side.
    pub rhs: Vec<f64>,
    /// The partition used.
    pub partition: BlockRowPartition,
    /// This rank's id within the partition.
    pub rank: usize,
}

impl ConvectionDiffusion2d {
    /// Pure Poisson problem (no convection, zero rhs, zero boundary) on an
    /// `m × m` interior grid.
    pub fn new(m: usize) -> Self {
        ConvectionDiffusion2d {
            grid: Grid2d::new(m),
            bx: 0.0,
            by: 0.0,
            rhs: Arc::new(|_, _| 0.0),
            boundary: Arc::new(|_, _| 0.0),
        }
    }

    /// Set convection coefficients `(bx, by)`.
    pub fn with_convection(mut self, bx: f64, by: f64) -> Self {
        self.bx = bx;
        self.by = by;
        self
    }

    /// Set the right-hand side field.
    pub fn with_rhs(mut self, rhs: impl Fn(f64, f64) -> f64 + Send + Sync + 'static) -> Self {
        self.rhs = Arc::new(rhs);
        self
    }

    /// Set Dirichlet boundary data.
    pub fn with_boundary(
        mut self,
        boundary: impl Fn(f64, f64) -> f64 + Send + Sync + 'static,
    ) -> Self {
        self.boundary = Arc::new(boundary);
        self
    }

    /// The grid.
    pub fn grid(&self) -> Grid2d {
        self.grid
    }

    /// Stencil coefficients `(diag, east, west, north, south)` after the h²
    /// scaling: `diag = 4`, `east/west = −1 ± bx·h/2`, `north/south =
    /// −1 ± by·h/2`.
    pub fn stencil(&self) -> (f64, f64, f64, f64, f64) {
        let h = self.grid.h();
        (
            4.0,
            -1.0 + self.bx * h / 2.0,
            -1.0 - self.bx * h / 2.0,
            -1.0 + self.by * h / 2.0,
            -1.0 - self.by * h / 2.0,
        )
    }

    /// Assemble the rows `range` of the global system. Returns the row
    /// block (with global column indices) and the corresponding rhs chunk.
    fn assemble_rows(&self, range: std::ops::Range<usize>) -> (CsrMatrix, Vec<f64>) {
        let g = self.grid;
        let m = g.m();
        let n = g.unknowns();
        let h = g.h();
        let h2 = h * h;
        let (cd, ce, cw, cn, cs) = self.stencil();
        let local_rows = range.len();
        let mut coo = CooMatrix::new(local_rows, n);
        let mut b = vec![0.0; local_rows];
        for (lr, k) in range.clone().enumerate() {
            let (i, j) = g.point(k);
            let (x, y) = g.coords(i, j);
            b[lr] = h2 * (self.rhs)(x, y);
            coo.push(lr, k, cd).expect("diagonal in range");
            // West neighbour (j−1) or boundary at x = 0.
            if j > 0 {
                coo.push(lr, g.index(i, j - 1), cw).expect("west in range");
            } else {
                b[lr] -= cw * (self.boundary)(0.0, y);
            }
            // East neighbour (j+1) or boundary at x = 1.
            if j + 1 < m {
                coo.push(lr, g.index(i, j + 1), ce).expect("east in range");
            } else {
                b[lr] -= ce * (self.boundary)(1.0, y);
            }
            // South neighbour (i−1) or boundary at y = 0.
            if i > 0 {
                coo.push(lr, g.index(i - 1, j), cs).expect("south in range");
            } else {
                b[lr] -= cs * (self.boundary)(x, 0.0);
            }
            // North neighbour (i+1) or boundary at y = 1.
            if i + 1 < m {
                coo.push(lr, g.index(i + 1, j), cn).expect("north in range");
            } else {
                b[lr] -= cn * (self.boundary)(x, 1.0);
            }
        }
        (coo.to_csr(), b)
    }

    /// Assemble the full system on one rank (serial reference path).
    pub fn assemble_global(&self) -> (CsrMatrix, Vec<f64>) {
        self.assemble_rows(0..self.grid.unknowns())
    }

    /// Assemble this rank's block rows for an even partition over `comm` —
    /// the paper's parallel mesh generator, where each compute node builds
    /// (and in the paper, writes to local disk) only its own share.
    pub fn assemble_local(&self, comm: &Communicator) -> LocalSystem {
        let partition = BlockRowPartition::even(self.grid.unknowns(), comm.size());
        self.assemble_partitioned(&partition, comm.rank())
    }

    /// Assemble the block rows `partition.range(rank)` (no communication —
    /// assembly is embarrassingly parallel).
    pub fn assemble_partitioned(
        &self,
        partition: &BlockRowPartition,
        rank: usize,
    ) -> LocalSystem {
        let (matrix, rhs) = self.assemble_rows(partition.range(rank));
        LocalSystem { matrix, rhs, partition: partition.clone(), rank }
    }

    /// Write this rank's share to `dir` as MatrixMarket files
    /// (`A_<rank>.mtx`, `b_<rank>.mtx`) — the paper's "mesh data files are
    /// written out on each compute node locally".
    pub fn write_local_files(
        &self,
        local: &LocalSystem,
        dir: impl AsRef<std::path::Path>,
    ) -> SparseResult<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        rsparse::io::write_matrix_file(dir.join(format!("A_{}.mtx", local.rank)), &local.matrix)?;
        let f = std::fs::File::create(dir.join(format!("b_{}.mtx", local.rank)))?;
        rsparse::io::write_vector(f, &local.rhs)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcomm::Universe;

    #[test]
    fn poisson_matrix_matches_generator_reference() {
        let (a, b) = ConvectionDiffusion2d::new(10).assemble_global();
        let reference = rsparse::generate::laplacian_2d(10);
        assert_eq!(a, reference);
        assert_eq!(b, vec![0.0; 100]);
    }

    #[test]
    fn stencil_includes_convection_terms() {
        let p = ConvectionDiffusion2d::new(3).with_convection(3.0, 0.0);
        let h = p.grid().h();
        let (d, e, w, n, s) = p.stencil();
        assert_eq!(d, 4.0);
        assert!((e - (-1.0 + 1.5 * h)).abs() < 1e-15);
        assert!((w - (-1.0 - 1.5 * h)).abs() < 1e-15);
        assert_eq!(n, -1.0);
        assert_eq!(s, -1.0);
    }

    #[test]
    fn matrix_is_nonsymmetric_with_convection() {
        let (a, _) = crate::paper_problem(4).assemble_global();
        let at = a.transpose();
        assert_ne!(a, at, "convection must break symmetry");
    }

    #[test]
    fn boundary_data_moves_to_rhs() {
        // u = 1 on the whole boundary, zero rhs: each boundary-adjacent row
        // gains +1 per missing neighbour (Poisson coefficients are −1).
        let p = ConvectionDiffusion2d::new(3).with_boundary(|_, _| 1.0);
        let (_, b) = p.assemble_global();
        // Corner rows touch two boundary sides, edge rows one, center zero.
        let g = Grid2d::new(3);
        assert_eq!(b[g.index(0, 0)], 2.0);
        assert_eq!(b[g.index(0, 1)], 1.0);
        assert_eq!(b[g.index(1, 1)], 0.0);
        assert_eq!(b[g.index(2, 2)], 2.0);
    }

    #[test]
    fn parallel_assembly_concatenates_to_global() {
        let p = crate::paper_problem(8);
        let (a_global, b_global) = p.assemble_global();
        for nr in [1usize, 2, 3, 5] {
            let out = Universe::run(nr, |comm| {
                let local = p.assemble_local(comm);
                (local.matrix, local.rhs, local.partition)
            });
            let mut rows_seen = 0usize;
            for (rank, (mat, rhs, part)) in out.into_iter().enumerate() {
                let range = part.range(rank);
                let expect = a_global.row_block(range.start, range.end).unwrap();
                assert_eq!(mat, expect, "rank {rank}/{nr}");
                assert_eq!(rhs.as_slice(), &b_global[range.clone()]);
                rows_seen += range.len();
            }
            assert_eq!(rows_seen, 64);
        }
    }

    #[test]
    fn discrete_solution_satisfies_manufactured_problem() {
        // Manufactured *discrete* verification: pick u*, set b = A·u*,
        // solve with the dense reference, recover u*.
        let p = crate::paper_problem(6);
        let (a, _) = p.assemble_global();
        let n = p.grid().unknowns();
        let u_star: Vec<f64> = (0..n).map(|k| (k as f64 * 0.37).sin()).collect();
        let b = a.matvec(&u_star).unwrap();
        let u = a.to_dense().solve(&b).unwrap();
        for (g, e) in u.iter().zip(&u_star) {
            assert!((g - e).abs() < 1e-10);
        }
    }

    #[test]
    fn write_local_files_round_trip() {
        let p = crate::paper_problem(4);
        let dir = std::env::temp_dir().join("rmesh_files_test");
        let out = Universe::run(2, |comm| {
            let local = p.assemble_local(comm);
            p.write_local_files(&local, &dir).unwrap();
            local
        });
        for (rank, local) in out.iter().enumerate() {
            let a = rsparse::io::read_matrix_file(dir.join(format!("A_{rank}.mtx"))).unwrap();
            assert_eq!(&a, &local.matrix);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
