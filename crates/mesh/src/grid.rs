//! Structured 2-D grid on the unit square.

/// An `m × m` grid of *interior* points of the unit square with spacing
/// `h = 1/(m+1)`; boundary points carry Dirichlet data and are eliminated
/// from the linear system. Interior point `(i, j)` (row `i` from the
/// bottom, column `j` from the left) sits at `(x, y) = ((j+1)h, (i+1)h)`
/// and owns unknown `k = i·m + j` — row-major numbering, which makes a
/// block-row partition a horizontal strip decomposition of the square.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid2d {
    m: usize,
}

impl Grid2d {
    /// Grid with `m` interior points per side.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "grid needs at least one interior point");
        Grid2d { m }
    }

    /// Interior points per side.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Total unknowns `m²`.
    pub fn unknowns(&self) -> usize {
        self.m * self.m
    }

    /// Mesh spacing `h = 1/(m+1)`.
    pub fn h(&self) -> f64 {
        1.0 / (self.m as f64 + 1.0)
    }

    /// Unknown index of interior point `(i, j)`.
    #[inline]
    pub fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.m && j < self.m);
        i * self.m + j
    }

    /// Interior point `(i, j)` of unknown `k`.
    #[inline]
    pub fn point(&self, k: usize) -> (usize, usize) {
        (k / self.m, k % self.m)
    }

    /// Physical coordinates `(x, y)` of interior point `(i, j)`.
    #[inline]
    pub fn coords(&self, i: usize, j: usize) -> (f64, f64) {
        let h = self.h();
        ((j as f64 + 1.0) * h, (i as f64 + 1.0) * h)
    }

    /// Number of nonzeros the 5-point operator produces: `5m² − 4m`.
    pub fn stencil_nnz(&self) -> usize {
        5 * self.m * self.m - 4 * self.m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trips() {
        let g = Grid2d::new(7);
        for i in 0..7 {
            for j in 0..7 {
                assert_eq!(g.point(g.index(i, j)), (i, j));
            }
        }
        assert_eq!(g.unknowns(), 49);
    }

    #[test]
    fn coords_are_interior() {
        let g = Grid2d::new(3);
        assert!((g.h() - 0.25).abs() < 1e-15);
        assert_eq!(g.coords(0, 0), (0.25, 0.25));
        assert_eq!(g.coords(2, 2), (0.75, 0.75));
    }

    #[test]
    fn paper_sizes_produce_table1_nnz() {
        for (m, nnz) in
            [(50usize, 12300), (100, 49600), (200, 199200), (300, 448800), (400, 798400)]
        {
            assert_eq!(Grid2d::new(m).stencil_nnz(), nnz);
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_grid_rejected() {
        let _ = Grid2d::new(0);
    }
}
