//! Fill-reducing orderings: natural, reverse Cuthill–McKee, and minimum
//! degree on the symmetrized pattern — the `permc_spec` choices of
//! SuperLU.

use rsparse::CsrMatrix;

/// Ordering strategy for the analyze phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ordering {
    /// Identity permutation (SuperLU's `NATURAL`).
    Natural,
    /// Reverse Cuthill–McKee: bandwidth reduction.
    Rcm,
    /// Minimum degree on A + Aᵀ (SuperLU's `MMD_AT_PLUS_A` spirit).
    #[default]
    MinDegree,
}

impl Ordering {
    /// Parse a name.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "natural" | "none" => Some(Ordering::Natural),
            "rcm" => Some(Ordering::Rcm),
            "mindegree" | "min_degree" | "mmd" | "amd" => Some(Ordering::MinDegree),
            _ => None,
        }
    }

    /// Compute the permutation for a square matrix: `perm[new] = old`.
    pub fn compute(self, a: &CsrMatrix) -> Vec<usize> {
        match self {
            Ordering::Natural => (0..a.rows()).collect(),
            Ordering::Rcm => rcm(a),
            Ordering::MinDegree => min_degree(a),
        }
    }
}

/// Symmetrized adjacency (A + Aᵀ pattern, no diagonal).
fn sym_adjacency(a: &CsrMatrix) -> Vec<Vec<usize>> {
    let n = a.rows();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (r, c, _) in a.iter() {
        if r != c {
            adj[r].push(c);
            adj[c].push(r);
        }
    }
    for lst in &mut adj {
        lst.sort_unstable();
        lst.dedup();
    }
    adj
}

/// Reverse Cuthill–McKee: BFS from a minimum-degree start vertex in each
/// connected component, neighbours visited in increasing-degree order,
/// final order reversed.
pub fn rcm(a: &CsrMatrix) -> Vec<usize> {
    let n = a.rows();
    let adj = sym_adjacency(a);
    let degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // Process vertices grouped by component, starting from low degree.
    let mut by_degree: Vec<usize> = (0..n).collect();
    by_degree.sort_by_key(|&v| degree[v]);
    for &start in &by_degree {
        if visited[start] {
            continue;
        }
        // BFS.
        let mut queue = std::collections::VecDeque::new();
        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbrs: Vec<usize> =
                adj[v].iter().copied().filter(|&u| !visited[u]).collect();
            nbrs.sort_by_key(|&u| degree[u]);
            for u in nbrs {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    order
}

/// Minimum degree on the symmetrized pattern with explicit clique
/// formation on elimination. Vertex selection uses a lazy-deletion binary
/// heap keyed by `(degree, vertex)` — stale entries are skipped on pop —
/// so selection costs O(log n) amortized instead of an O(n) scan, which
/// keeps the ordering usable at the benchmark sizes (n ≈ 10⁵).
pub fn min_degree(a: &CsrMatrix) -> Vec<usize> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = a.rows();
    let mut adj: Vec<std::collections::BTreeSet<usize>> =
        sym_adjacency(a).into_iter().map(|v| v.into_iter().collect()).collect();
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // Lazy heap: (degree, vertex); entries go stale when a vertex's
    // degree changes — validated against `adj` on pop.
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::with_capacity(2 * n);
    for (v, nb) in adj.iter().enumerate() {
        heap.push(Reverse((nb.len(), v)));
    }
    while order.len() < n {
        let Reverse((deg, v)) = heap.pop().expect("one live entry per vertex remains");
        if eliminated[v] || deg != adj[v].len() {
            continue; // stale
        }
        eliminated[v] = true;
        order.push(v);
        // Form the elimination clique among v's remaining neighbours.
        let nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
        for &u in &nbrs {
            adj[u].remove(&v);
            for &w in &nbrs {
                if w != u {
                    adj[u].insert(w);
                }
            }
            heap.push(Reverse((adj[u].len(), u)));
        }
        adj[v].clear();
    }
    order
}

/// Validate that `perm` is a permutation of `0..n`.
pub fn is_permutation(perm: &[usize], n: usize) -> bool {
    if perm.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

/// Bandwidth of a matrix under a permutation (`perm[new] = old`); the RCM
/// quality metric.
pub fn bandwidth(a: &CsrMatrix, perm: &[usize]) -> usize {
    let n = a.rows();
    let mut inv = vec![0usize; n];
    for (new, &old) in perm.iter().enumerate() {
        inv[old] = new;
    }
    let mut bw = 0usize;
    for (r, c, _) in a.iter() {
        bw = bw.max(inv[r].abs_diff(inv[c]));
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsparse::generate;

    #[test]
    fn all_orderings_produce_valid_permutations() {
        let a = generate::random_csr(30, 30, 0.1, 77);
        for ord in [Ordering::Natural, Ordering::Rcm, Ordering::MinDegree] {
            let p = ord.compute(&a);
            assert!(is_permutation(&p, 30), "{ord:?}");
        }
    }

    #[test]
    fn natural_is_identity() {
        let a = generate::laplacian_1d(5);
        assert_eq!(Ordering::Natural.compute(&a), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn rcm_reduces_bandwidth_of_shuffled_band_matrix() {
        // Take a banded matrix, scramble it, and check RCM restores a
        // narrow band.
        let a = generate::laplacian_1d(40);
        let scramble: Vec<usize> = (0..40).map(|i| (i * 17) % 40).collect();
        let shuffled = a.permute_symmetric(&scramble).unwrap();
        let before = bandwidth(&shuffled, &Ordering::Natural.compute(&shuffled));
        let after = bandwidth(&shuffled, &rcm(&shuffled));
        assert!(before > 5, "scramble must have widened the band: {before}");
        assert_eq!(after, 1, "RCM must recover the tridiagonal band");
    }

    #[test]
    fn min_degree_orders_star_center_last() {
        // Star graph: center 0 has degree n−1, leaves degree 1. Minimum
        // degree must eliminate all leaves before the center.
        let n = 8;
        let mut coo = rsparse::CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
        }
        for leaf in 1..n {
            coo.push(0, leaf, -1.0).unwrap();
            coo.push(leaf, 0, -1.0).unwrap();
        }
        let a = coo.to_csr();
        let order = min_degree(&a);
        // Once all but one leaf is gone the center's degree drops to 1 and
        // it may tie with the final leaf, so the center lands in one of
        // the last two positions — never earlier.
        let center_pos = order.iter().position(|&v| v == 0).unwrap();
        assert!(center_pos >= n - 2, "{order:?}");
    }

    #[test]
    fn orderings_handle_disconnected_graphs() {
        // Block diagonal with two components.
        let mut coo = rsparse::CooMatrix::new(6, 6);
        for i in 0..6 {
            coo.push(i, i, 1.0).unwrap();
        }
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        coo.push(4, 5, 1.0).unwrap();
        coo.push(5, 4, 1.0).unwrap();
        let a = coo.to_csr();
        assert!(is_permutation(&rcm(&a), 6));
        assert!(is_permutation(&min_degree(&a), 6));
    }

    #[test]
    fn parse_names() {
        assert_eq!(Ordering::parse("natural"), Some(Ordering::Natural));
        assert_eq!(Ordering::parse("RCM"), Some(Ordering::Rcm));
        assert_eq!(Ordering::parse("amd"), Some(Ordering::MinDegree));
        assert_eq!(Ordering::parse("colamd9"), None);
    }
}
