//! High-level RSLU driver: the analyze → factorize → solve pipeline with
//! options and statistics, plus the distributed gather/solve/scatter
//! front-end for block-row partitioned systems.

use rcomm::Communicator;
use rsparse::{BlockRowPartition, CsrMatrix, DistCsrMatrix, DistVector};

use crate::lu::LuFactorization;
use crate::ordering::Ordering;
use crate::symbolic::Symbolic;
use crate::{RsluError, RsluResult};

/// Options for a solve — RSLU's `superlu_options_t`.
#[derive(Debug, Clone, PartialEq)]
pub struct RsluOptions {
    /// Fill-reducing ordering (`permc_spec`).
    pub ordering: Ordering,
    /// Diagonal pivot threshold in (0, 1] (`diag_pivot_thresh`).
    pub pivot_threshold: f64,
    /// Run one step of iterative refinement after each solve.
    pub refine: bool,
    /// Equilibrate (row scale to unit ∞-norm, then column scale) before
    /// factorization — SuperLU's `equil` option. Improves pivot quality
    /// on badly scaled systems at the cost of two scaling passes.
    pub equilibrate: bool,
}

impl Default for RsluOptions {
    fn default() -> Self {
        RsluOptions {
            ordering: Ordering::MinDegree,
            pivot_threshold: 1.0,
            refine: true,
            equilibrate: false,
        }
    }
}

/// Compute equilibration scales and the scaled matrix
/// `A' = diag(r)·A·diag(c)` with unit ∞-norm rows and columns.
fn equilibrate(a: &CsrMatrix) -> RsluResult<(CsrMatrix, Vec<f64>, Vec<f64>)> {
    let n = a.rows();
    let mut r = vec![0.0f64; n];
    for (i, ri) in r.iter_mut().enumerate() {
        let m = a.row(i).1.iter().fold(0.0f64, |mx, v| mx.max(v.abs()));
        if m == 0.0 {
            return Err(RsluError::Singular { column: i });
        }
        *ri = 1.0 / m;
    }
    let row_scaled = rsparse::ops::diag_scale_rows(&r, a)?;
    let mut c = vec![0.0f64; n];
    for (_, j, v) in row_scaled.iter() {
        c[j] = c[j].max(v.abs());
    }
    for (j, cj) in c.iter_mut().enumerate() {
        if *cj == 0.0 {
            return Err(RsluError::Singular { column: j });
        }
        *cj = 1.0 / *cj;
    }
    // Column scaling: multiply each entry by c[j].
    let (rows, cols, row_ptr, col_idx, mut values) = {
        let (rr, cc, p, ci, v) = row_scaled.into_parts();
        (rr, cc, p, ci, v)
    };
    for (k, &j) in col_idx.iter().enumerate() {
        values[k] *= c[j];
    }
    let scaled = CsrMatrix::from_parts(rows, cols, row_ptr, col_idx, values)
        .map_err(|e| RsluError::Sparse(e.to_string()))?;
    Ok((scaled, r, c))
}

/// Statistics from the last factorization/solve.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RsluStats {
    /// Stored entries in L + U.
    pub fill: usize,
    /// Input nonzeros.
    pub nnz: usize,
    /// Number of numeric factorizations performed so far.
    pub factorizations: usize,
    /// Number of triangular solves performed so far.
    pub solves: usize,
    /// ‖b − A·x‖∞ after the last solve (with refinement if enabled).
    pub backward_error: f64,
}

/// The serial (per-rank) RSLU solver with reusable phases.
///
/// Usage scenarios from paper §5.2 map to this API directly:
/// * (a) one-shot: [`RsluSolver::solve_system`];
/// * (b) reuse factorization: `analyze` + `factorize` once, then many
///   [`RsluSolver::solve`] calls;
/// * (c) multiple RHS: [`RsluSolver::solve_multi`];
/// * (d) new values, same pattern: [`RsluSolver::refactorize`].
#[derive(Debug, Clone, Default)]
pub struct RsluSolver {
    options: RsluOptions,
    symbolic: Option<Symbolic>,
    factors: Option<LuFactorization>,
    matrix: Option<CsrMatrix>,
    /// Equilibration scales `(row, col)` when enabled.
    scales: Option<(Vec<f64>, Vec<f64>)>,
    stats: RsluStats,
}

impl RsluSolver {
    /// New solver with options.
    pub fn new(options: RsluOptions) -> Self {
        RsluSolver { options, ..Default::default() }
    }

    /// Borrow current statistics.
    pub fn stats(&self) -> &RsluStats {
        &self.stats
    }

    /// Borrow the options.
    pub fn options(&self) -> &RsluOptions {
        &self.options
    }

    /// Phase 1: symbolic analysis (reused until the pattern changes).
    pub fn analyze(&mut self, a: &CsrMatrix) -> RsluResult<()> {
        let _span = probe::span!("rslu_analyze");
        self.symbolic = Some(Symbolic::analyze(a, self.options.ordering)?);
        self.factors = None;
        self.matrix = None;
        Ok(())
    }

    /// Phase 2: numeric factorization (runs analyze implicitly if absent
    /// or incompatible).
    pub fn factorize(&mut self, a: &CsrMatrix) -> RsluResult<()> {
        let need_analysis = match &self.symbolic {
            Some(s) => !s.compatible_with(a),
            None => true,
        };
        if need_analysis {
            self.analyze(a)?;
        }
        let _span = probe::span!("rslu_factor");
        probe::incr(probe::Counter::FactorCalls);
        let (work, scales) = if self.options.equilibrate {
            let (scaled, r, c) = equilibrate(a)?;
            (scaled, Some((r, c)))
        } else {
            (a.clone(), None)
        };
        let sym = self.symbolic.as_ref().expect("set above");
        let lu = LuFactorization::factor(&work, sym, self.options.pivot_threshold)?;
        self.stats.fill = lu.fill();
        self.stats.nnz = a.nnz();
        self.stats.factorizations += 1;
        self.factors = Some(lu);
        self.matrix = Some(a.clone());
        self.scales = scales;
        Ok(())
    }

    /// Phase 2': refactorize with new values on the identical pattern,
    /// reusing the symbolic analysis (scenario d).
    pub fn refactorize(&mut self, values: &[f64]) -> RsluResult<()> {
        let a = self.matrix.as_mut().ok_or_else(|| {
            RsluError::BadOption("refactorize requires a prior factorize".into())
        })?;
        if values.len() != a.nnz() {
            return Err(RsluError::PatternMismatch { expected: a.nnz(), got: values.len() });
        }
        a.values_mut().copy_from_slice(values);
        let a = a.clone();
        let _span = probe::span!("rslu_factor");
        probe::incr(probe::Counter::FactorCalls);
        let (work, scales) = if self.options.equilibrate {
            let (scaled, r, c) = equilibrate(&a)?;
            (scaled, Some((r, c)))
        } else {
            (a.clone(), None)
        };
        let sym = self.symbolic.as_ref().expect("factorize set it");
        let lu = LuFactorization::factor(&work, sym, self.options.pivot_threshold)?;
        self.stats.fill = lu.fill();
        self.stats.factorizations += 1;
        self.factors = Some(lu);
        self.scales = scales;
        Ok(())
    }

    /// Phase 3: triangular solves (+ optional refinement).
    pub fn solve(&mut self, b: &[f64]) -> RsluResult<Vec<f64>> {
        let _trace = probe::trace::solve_guard();
        let _span = probe::span!("rslu_solve");
        let lu = self
            .factors
            .as_ref()
            .ok_or_else(|| RsluError::BadOption("solve requires a prior factorize".into()))?;
        // With equilibration the factors invert A' = R·A·C, so
        // A·x = b ⟺ A'·y = R·b with x = C·y.
        let scaled_solve = |rhs: &[f64]| -> RsluResult<Vec<f64>> {
            probe::incr(probe::Counter::TriangularSolves);
            match &self.scales {
                None => lu.solve(rhs),
                Some((r, c)) => {
                    let rb: Vec<f64> = rhs.iter().zip(r).map(|(v, ri)| v * ri).collect();
                    let mut y = lu.solve(&rb)?;
                    for (yi, ci) in y.iter_mut().zip(c) {
                        *yi *= ci;
                    }
                    Ok(y)
                }
            }
        };
        let mut x = scaled_solve(b)?;
        self.stats.solves += 1;
        if let Some(a) = &self.matrix {
            let mut r = rsparse::ops::residual(a, &x, b)?;
            if self.options.refine {
                let dx = scaled_solve(&r)?;
                rsparse::dense::axpy(1.0, &dx, &mut x);
                r = rsparse::ops::residual(a, &x, b)?;
            }
            self.stats.backward_error = rsparse::dense::norm_inf(&r);
        }
        Ok(x)
    }

    /// Multi-RHS solve on a flat column-major buffer.
    pub fn solve_multi(&mut self, b: &[f64], nrhs: usize) -> RsluResult<Vec<f64>> {
        let n = self
            .factors
            .as_ref()
            .ok_or_else(|| RsluError::BadOption("solve requires a prior factorize".into()))?
            .order();
        if nrhs == 0 || b.len() != n * nrhs {
            return Err(RsluError::PatternMismatch { expected: n * nrhs, got: b.len() });
        }
        let mut out = Vec::with_capacity(b.len());
        for k in 0..nrhs {
            out.extend(self.solve(&b[k * n..(k + 1) * n])?);
        }
        Ok(out)
    }

    /// Convenience one-shot: analyze + factorize + solve (scenario a).
    pub fn solve_system(&mut self, a: &CsrMatrix, b: &[f64]) -> RsluResult<Vec<f64>> {
        self.factorize(a)?;
        self.solve(b)
    }

    /// [`RsluSolver::factorize`] with the phase duration streamed to a
    /// [`probe::SolveMonitor`] as `on_phase("rslu_factor", seconds)`.
    pub fn factorize_monitored(
        &mut self,
        a: &CsrMatrix,
        mon: &mut dyn probe::SolveMonitor,
    ) -> RsluResult<()> {
        let t = std::time::Instant::now();
        let out = self.factorize(a);
        mon.on_phase("rslu_factor", t.elapsed().as_secs_f64());
        out
    }

    /// [`RsluSolver::solve`] with the phase duration and outcome streamed
    /// to a [`probe::SolveMonitor`]: `on_phase("rslu_solve", seconds)`
    /// followed by `on_finish` carrying the backward error. A direct
    /// method "iterates" zero or one times — the iteration count reported
    /// is the number of refinement steps taken.
    pub fn solve_monitored(
        &mut self,
        b: &[f64],
        mon: &mut dyn probe::SolveMonitor,
    ) -> RsluResult<Vec<f64>> {
        let t = std::time::Instant::now();
        let out = self.solve(b);
        mon.on_phase("rslu_solve", t.elapsed().as_secs_f64());
        let refinements = usize::from(self.options.refine);
        mon.on_finish(refinements, self.stats.backward_error, out.is_ok());
        out
    }
}

/// Distributed front-end: gathers the block-row system to rank 0, runs
/// the serial pipeline there, scatters the solution back — the documented
/// parallel-mode substitution (DESIGN.md).
#[derive(Debug, Default)]
pub struct DistRslu {
    inner: RsluSolver,
}

impl DistRslu {
    /// New distributed driver.
    pub fn new(options: RsluOptions) -> Self {
        DistRslu { inner: RsluSolver::new(options) }
    }

    /// Access the rank-0 serial solver (meaningful on the root only).
    pub fn root_solver(&self) -> &RsluSolver {
        &self.inner
    }

    /// Factor a distributed matrix (gather happens here). Collective.
    pub fn factorize(&mut self, comm: &Communicator, a: &DistCsrMatrix) -> RsluResult<()> {
        let _span = probe::span!("rslu_dist_factor");
        let gathered = a.gather_to_root(comm, 0)?;
        let ok_flag = if comm.rank() == 0 {
            let global = gathered.expect("root receives the gathered matrix");
            match self.inner.factorize(&global) {
                Ok(()) => None,
                Err(e) => Some(format!("{e}")),
            }
        } else {
            None
        };
        // Broadcast success/failure so all ranks agree.
        let err = comm.bcast(0, ok_flag)?;
        match err {
            None => Ok(()),
            Some(msg) => Err(RsluError::Sparse(msg)),
        }
    }

    /// Solve with the factors held on rank 0; every rank passes its rhs
    /// chunk and receives its solution chunk. Collective.
    pub fn solve(
        &mut self,
        comm: &Communicator,
        partition: &BlockRowPartition,
        b: &DistVector,
    ) -> RsluResult<DistVector> {
        let _trace = probe::trace::solve_guard();
        let _span = probe::span!("rslu_dist_solve");
        let b_full = b.gather_to_root(comm, 0)?;
        let chunks: Option<Vec<Vec<f64>>> = if comm.rank() == 0 {
            let full = b_full.expect("root receives the gathered rhs");
            let x = self.inner.solve(&full)?;
            Some(
                (0..comm.size())
                    .map(|r| {
                        let range = partition.range(r);
                        x[range].to_vec()
                    })
                    .collect(),
            )
        } else {
            None
        };
        let mine = comm.scatter(0, chunks)?;
        Ok(DistVector::from_local(partition.clone(), comm.rank(), mine)?)
    }

    /// [`DistRslu::factorize`] streaming the phase duration (gather +
    /// factor + agreement broadcast) to a per-rank monitor. Collective.
    pub fn factorize_monitored(
        &mut self,
        comm: &Communicator,
        a: &DistCsrMatrix,
        mon: &mut dyn probe::SolveMonitor,
    ) -> RsluResult<()> {
        let t = std::time::Instant::now();
        let out = self.factorize(comm, a);
        mon.on_phase("rslu_factor", t.elapsed().as_secs_f64());
        out
    }

    /// [`DistRslu::solve`] streaming the phase duration and outcome to a
    /// per-rank monitor. The backward error is only measured on the root
    /// rank (where the factors live); other ranks report 0. Collective.
    pub fn solve_monitored(
        &mut self,
        comm: &Communicator,
        partition: &BlockRowPartition,
        b: &DistVector,
        mon: &mut dyn probe::SolveMonitor,
    ) -> RsluResult<DistVector> {
        let t = std::time::Instant::now();
        let out = self.solve(comm, partition, b);
        mon.on_phase("rslu_solve", t.elapsed().as_secs_f64());
        let refinements = usize::from(self.inner.options.refine);
        mon.on_finish(refinements, self.inner.stats.backward_error, out.is_ok());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcomm::Universe;
    use rsparse::generate;

    #[test]
    fn one_shot_solve_with_refinement() {
        let a = generate::laplacian_2d(7);
        let x_true = generate::random_vector(49, 3);
        let b = a.matvec(&x_true).unwrap();
        let mut s = RsluSolver::new(RsluOptions::default());
        let x = s.solve_system(&a, &b).unwrap();
        for (g, e) in x.iter().zip(&x_true) {
            assert!((g - e).abs() < 1e-9);
        }
        assert_eq!(s.stats().factorizations, 1);
        assert_eq!(s.stats().solves, 1);
        assert!(s.stats().fill >= a.nnz());
        assert!(s.stats().backward_error < 1e-10);
    }

    #[test]
    fn factor_reuse_across_rhs() {
        let a = generate::random_diag_dominant(25, 3, 4);
        let mut s = RsluSolver::new(RsluOptions::default());
        s.factorize(&a).unwrap();
        for seed in 0..5 {
            let x_true = generate::random_vector(25, seed);
            let b = a.matvec(&x_true).unwrap();
            let x = s.solve(&b).unwrap();
            for (g, e) in x.iter().zip(&x_true) {
                assert!((g - e).abs() < 1e-9);
            }
        }
        assert_eq!(s.stats().factorizations, 1, "one factorization, many solves");
        assert_eq!(s.stats().solves, 5);
    }

    #[test]
    fn refactorize_reuses_symbolic_analysis() {
        let a = generate::random_diag_dominant(20, 3, 8);
        let mut s = RsluSolver::new(RsluOptions::default());
        s.factorize(&a).unwrap();

        // Same pattern, scaled values.
        let new_vals: Vec<f64> = a.values().iter().map(|v| v * 2.5).collect();
        s.refactorize(&new_vals).unwrap();
        let scaled = rsparse::ops::scale(2.5, &a);
        let x_true = generate::random_vector(20, 6);
        let b = scaled.matvec(&x_true).unwrap();
        let x = s.solve(&b).unwrap();
        for (g, e) in x.iter().zip(&x_true) {
            assert!((g - e).abs() < 1e-9);
        }
        assert_eq!(s.stats().factorizations, 2);
        // Wrong-length values are rejected.
        assert!(matches!(
            s.refactorize(&new_vals[1..]),
            Err(RsluError::PatternMismatch { .. })
        ));
    }

    #[test]
    fn solve_before_factorize_is_an_error() {
        let mut s = RsluSolver::default();
        assert!(s.solve(&[1.0]).is_err());
        assert!(s.refactorize(&[1.0]).is_err());
        assert!(s.solve_multi(&[1.0], 1).is_err());
    }

    #[test]
    fn multi_rhs_path() {
        let a = generate::random_diag_dominant(10, 2, 12);
        let mut s = RsluSolver::new(RsluOptions::default());
        s.factorize(&a).unwrap();
        let x1 = generate::random_vector(10, 1);
        let x2 = generate::random_vector(10, 2);
        let mut b = a.matvec(&x1).unwrap();
        b.extend(a.matvec(&x2).unwrap());
        let xs = s.solve_multi(&b, 2).unwrap();
        for (g, e) in xs[..10].iter().zip(&x1) {
            assert!((g - e).abs() < 1e-9);
        }
        for (g, e) in xs[10..].iter().zip(&x2) {
            assert!((g - e).abs() < 1e-9);
        }
    }

    #[test]
    fn equilibration_solves_badly_scaled_systems() {
        // Rows scaled across 12 orders of magnitude: without
        // equilibration partial pivoting alone still works here, but the
        // equilibrated path must produce an (at least) equally accurate
        // answer through its R/C scaling algebra.
        let base = generate::random_diag_dominant(25, 3, 40);
        let scales: Vec<f64> = (0..25).map(|i| 10f64.powi((i % 13) - 6)).collect();
        let a = rsparse::ops::diag_scale_rows(&scales, &base).unwrap();
        let x_true = generate::random_vector(25, 41);
        let b = a.matvec(&x_true).unwrap();
        let mut s = RsluSolver::new(RsluOptions { equilibrate: true, ..Default::default() });
        let x = s.solve_system(&a, &b).unwrap();
        for (g, e) in x.iter().zip(&x_true) {
            assert!((g - e).abs() < 1e-8, "{g} vs {e}");
        }
        // Refactorize path keeps the scales fresh.
        let new_vals: Vec<f64> = a.values().iter().map(|v| v * 0.5).collect();
        s.refactorize(&new_vals).unwrap();
        let half = rsparse::ops::scale(0.5, &a);
        let b2 = half.matvec(&x_true).unwrap();
        let x2 = s.solve(&b2).unwrap();
        for (g, e) in x2.iter().zip(&x_true) {
            assert!((g - e).abs() < 1e-8);
        }
    }

    #[test]
    fn equilibration_rejects_zero_rows() {
        // Row 1 empty ⇒ no scale exists.
        let mut coo = rsparse::CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(2, 2, 1.0).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        let a = coo.to_csr();
        let mut s = RsluSolver::new(RsluOptions { equilibrate: true, ..Default::default() });
        assert!(matches!(s.factorize(&a), Err(RsluError::Singular { .. })));
    }

    #[test]
    fn distributed_solve_matches_serial() {
        let (a, _) = rmesh::paper_problem(8).assemble_global();
        let n = a.rows();
        let x_true = generate::random_vector(n, 9);
        let b = a.matvec(&x_true).unwrap();
        for p in [1usize, 2, 4] {
            let out = Universe::run(p, |comm| {
                let part = BlockRowPartition::even(n, comm.size());
                let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
                let db = DistVector::from_global(part.clone(), comm.rank(), &b).unwrap();
                let mut solver = DistRslu::new(RsluOptions::default());
                solver.factorize(comm, &da).unwrap();
                let dx = solver.solve(comm, &part, &db).unwrap();
                dx.allgather_full(comm).unwrap()
            });
            for got in out {
                for (g, e) in got.iter().zip(&x_true) {
                    assert!((g - e).abs() < 1e-8, "p = {p}");
                }
            }
        }
    }

    #[test]
    fn monitored_phases_and_probe_counters_stream_out() {
        let a = generate::random_diag_dominant(30, 3, 11);
        let x_true = generate::random_vector(30, 12);
        let b = a.matvec(&x_true).unwrap();

        let factors0 = probe::get(probe::Counter::FactorCalls);
        let trisolves0 = probe::get(probe::Counter::TriangularSolves);

        let mut s = RsluSolver::new(RsluOptions::default());
        let mut mon = probe::ResidualHistory::new();
        s.factorize_monitored(&a, &mut mon).unwrap();
        let x = s.solve_monitored(&b, &mut mon).unwrap();
        for (g, e) in x.iter().zip(&x_true) {
            assert!((g - e).abs() < 1e-9);
        }

        let phases: Vec<&str> = mon.phases.iter().map(|(p, _)| *p).collect();
        assert_eq!(phases, vec!["rslu_factor", "rslu_solve"]);
        assert!(mon.phases.iter().all(|(_, s)| *s >= 0.0));
        assert!(mon.converged);
        assert_eq!(mon.iterations, 1, "default options take one refinement step");
        assert!(mon.final_residual < 1e-10);

        // Counters are always on: one factorization, and with refinement
        // each solve() runs two triangular solves.
        assert_eq!(probe::get(probe::Counter::FactorCalls) - factors0, 1);
        assert_eq!(probe::get(probe::Counter::TriangularSolves) - trisolves0, 2);
    }

    #[test]
    fn distributed_monitored_solve_reports_on_every_rank() {
        let a = generate::random_diag_dominant(24, 3, 21);
        let n = a.rows();
        let x_true = generate::random_vector(n, 22);
        let b = a.matvec(&x_true).unwrap();
        let out = Universe::run(3, |comm| {
            let part = BlockRowPartition::even(n, comm.size());
            let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
            let db = DistVector::from_global(part.clone(), comm.rank(), &b).unwrap();
            let mut solver = DistRslu::new(RsluOptions::default());
            let mut mon = probe::ResidualHistory::new();
            solver.factorize_monitored(comm, &da, &mut mon).unwrap();
            let dx = solver.solve_monitored(comm, &part, &db, &mut mon).unwrap();
            let full = dx.allgather_full(comm).unwrap();
            (full, mon)
        });
        for (rank, (full, mon)) in out.into_iter().enumerate() {
            for (g, e) in full.iter().zip(&x_true) {
                assert!((g - e).abs() < 1e-8);
            }
            let phases: Vec<&str> = mon.phases.iter().map(|(p, _)| *p).collect();
            assert_eq!(phases, vec!["rslu_factor", "rslu_solve"], "rank {rank}");
            assert!(mon.converged);
            if rank == 0 {
                assert!(mon.final_residual < 1e-10);
            }
        }
    }

    #[test]
    fn distributed_singular_failure_reaches_all_ranks() {
        // Globally singular matrix: zero column.
        let mut coo = rsparse::CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, 0, 1.0).unwrap();
        }
        let a = coo.to_csr();
        let out = Universe::run(2, |comm| {
            let part = BlockRowPartition::even(4, comm.size());
            let da = DistCsrMatrix::from_global(comm, part, &a).unwrap();
            let mut solver = DistRslu::new(RsluOptions::default());
            solver.factorize(comm, &da).is_err()
        });
        assert_eq!(out, vec![true, true], "both ranks must see the failure");
    }
}
