//! The analyze phase: column ordering plus the column elimination tree —
//! the reusable symbolic context of SuperLU's `*gstrf` pipeline (LISI
//! usage scenario §5.2b: "precompute reused objects such as … symbolic
//! factorization").

use rsparse::CsrMatrix;

use crate::ordering::Ordering;
use crate::{RsluError, RsluResult};

/// Reusable symbolic analysis of a sparse matrix pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Symbolic {
    /// Column permutation, `col_perm[new] = old`.
    pub col_perm: Vec<usize>,
    /// Inverse column permutation, `col_perm_inv[old] = new`.
    pub col_perm_inv: Vec<usize>,
    /// Column elimination tree (parent of each column of A·Q in the tree;
    /// `usize::MAX` for roots), computed on the AᵀA pattern without
    /// forming it.
    pub etree: Vec<usize>,
    /// Postorder of the elimination tree.
    pub postorder: Vec<usize>,
    /// Pattern fingerprint for reuse validation.
    pub nnz: usize,
    /// Matrix order.
    pub n: usize,
}

impl Symbolic {
    /// Analyze a square matrix with the given ordering.
    pub fn analyze(a: &CsrMatrix, ordering: Ordering) -> RsluResult<Self> {
        let (rows, cols) = a.shape();
        if rows != cols {
            return Err(RsluError::Sparse(format!("matrix must be square, got {rows}x{cols}")));
        }
        let n = rows;
        let col_perm = ordering.compute(a);
        let mut col_perm_inv = vec![0usize; n];
        for (new, &old) in col_perm.iter().enumerate() {
            col_perm_inv[old] = new;
        }
        let etree = column_etree(a, &col_perm);
        let postorder = postorder_of(&etree);
        Ok(Symbolic { col_perm, col_perm_inv, etree, postorder, nnz: a.nnz(), n })
    }

    /// Can this symbolic context be reused for `b` (same shape, same
    /// nonzero count — the cheap SuperLU-style compatibility check)?
    pub fn compatible_with(&self, b: &CsrMatrix) -> bool {
        b.shape() == (self.n, self.n) && b.nnz() == self.nnz
    }
}

/// Column elimination tree of A·Q: the etree of (AQ)ᵀ(AQ), via the
/// standard row-merge algorithm (Gilbert–Ng–Peyton) with path
/// compression.
fn column_etree(a: &CsrMatrix, col_perm: &[usize]) -> Vec<usize> {
    let n = a.rows();
    let mut parent = vec![usize::MAX; n];
    // `ancestor` implements path compression; `prev_col[r]` remembers the
    // last (new-numbered) column seen in row r, so each row links a chain
    // of columns — exactly the Gilbert–Ng–Peyton column-etree recipe.
    let mut ancestor = vec![usize::MAX; n];
    let mut prev_col = vec![usize::MAX; n];
    let at = a.transpose(); // rows of Aᵀ give column access to A
    for (new_col, &old_col) in col_perm.iter().enumerate() {
        let (rows_of_col, _) = at.row(old_col);
        for &r in rows_of_col {
            // Traverse from the row's registered column up to the root,
            // linking into new_col.
            let mut c = prev_col[r];
            if c == usize::MAX {
                prev_col[r] = new_col;
                continue;
            }
            // Find root with path compression.
            while ancestor[c] != usize::MAX && ancestor[c] != new_col {
                let next = ancestor[c];
                ancestor[c] = new_col;
                c = next;
            }
            if c != new_col && parent[c] == usize::MAX {
                parent[c] = new_col;
                ancestor[c] = new_col;
            }
            prev_col[r] = new_col;
        }
    }
    parent
}

/// Postorder traversal of a forest given parent pointers.
fn postorder_of(parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut roots = Vec::new();
    for (v, &p) in parent.iter().enumerate() {
        if p == usize::MAX {
            roots.push(v);
        } else {
            children[p].push(v);
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for &root in &roots {
        stack.push((root, 0));
        while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
            if *ci < children[v].len() {
                let child = children[v][*ci];
                *ci += 1;
                stack.push((child, 0));
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsparse::generate;

    #[test]
    fn analyze_rejects_rectangular() {
        let a = rsparse::CooMatrix::new(2, 3).to_csr();
        assert!(Symbolic::analyze(&a, Ordering::Natural).is_err());
    }

    #[test]
    fn etree_of_tridiagonal_is_a_chain() {
        let a = generate::laplacian_1d(6);
        let sym = Symbolic::analyze(&a, Ordering::Natural).unwrap();
        // Column etree of a tridiagonal matrix: parent(i) = i + 1.
        for i in 0..5 {
            assert_eq!(sym.etree[i], i + 1, "{:?}", sym.etree);
        }
        assert_eq!(sym.etree[5], usize::MAX);
    }

    #[test]
    fn postorder_visits_children_before_parents() {
        let a = generate::laplacian_2d(4);
        let sym = Symbolic::analyze(&a, Ordering::MinDegree).unwrap();
        let mut position = [0usize; 16];
        for (i, &v) in sym.postorder.iter().enumerate() {
            position[v] = i;
        }
        for (v, &p) in sym.etree.iter().enumerate() {
            if p != usize::MAX {
                assert!(position[v] < position[p], "child {v} after parent {p}");
            }
        }
        // Postorder is a permutation.
        assert!(crate::ordering::is_permutation(&sym.postorder, 16));
    }

    #[test]
    fn compatibility_check_uses_shape_and_nnz() {
        let a = generate::laplacian_1d(6);
        let sym = Symbolic::analyze(&a, Ordering::Natural).unwrap();
        assert!(sym.compatible_with(&a));
        let mut b = a.clone();
        for v in b.values_mut() {
            *v *= 2.0;
        }
        assert!(sym.compatible_with(&b), "same pattern, new values must be compatible");
        let c = generate::laplacian_1d(7);
        assert!(!sym.compatible_with(&c));
    }

    #[test]
    fn permutations_are_inverse_pairs() {
        let a = generate::random_csr(20, 20, 0.15, 5);
        for ord in [Ordering::Rcm, Ordering::MinDegree] {
            let sym = Symbolic::analyze(&a, ord).unwrap();
            for new in 0..20 {
                assert_eq!(sym.col_perm_inv[sym.col_perm[new]], new);
            }
        }
    }
}
