//! `rdirect` ("RSLU") — a SuperLU-like sparse direct solver.
//!
//! The third "native solver library" of the CCA-LISI reproduction (the
//! SuperLU stand-in of DESIGN.md). It follows SuperLU's three-phase
//! lifecycle, the phase structure that makes direct solvers awkward to
//! put behind a common interface (paper §5.1–5.2) and that LISI's reuse
//! scenarios (b)–(d) exercise:
//!
//! 1. **Analyze** — choose a fill-reducing column ordering ([`ordering`]:
//!    natural, reverse Cuthill–McKee, minimum degree) and build the
//!    [`symbolic::Symbolic`] context (column elimination tree, postorder);
//! 2. **Factorize** — left-looking Gilbert–Peierls sparse LU with partial
//!    pivoting ([`lu`]), producing `P·A·Q = L·U`;
//! 3. **Solve** — permuted triangular solves, optionally with one step of
//!    iterative refinement, reusing the factors across right-hand sides.
//!
//! The parallel driver ([`solver::DistRslu`]) gathers a block-row
//! distributed system to rank 0, factors, and scatters the solution — a
//! documented substitution (interface-overhead experiments measure the
//! call path, not direct-solver scalability; see DESIGN.md).

#![warn(missing_docs)]

pub mod lu;
pub mod ordering;
pub mod solver;
pub mod symbolic;

pub use lu::LuFactorization;
pub use ordering::Ordering;
pub use solver::{DistRslu, RsluOptions, RsluSolver, RsluStats};

/// Errors from the RSLU package.
#[derive(Debug, Clone, PartialEq)]
pub enum RsluError {
    /// The matrix is structurally or numerically singular.
    Singular {
        /// Column at which factorization failed.
        column: usize,
    },
    /// Substrate failure.
    Sparse(String),
    /// Bad configuration value.
    BadOption(String),
    /// Factor reuse was attempted with a mismatched pattern.
    PatternMismatch {
        /// Expected nonzero count.
        expected: usize,
        /// Provided nonzero count.
        got: usize,
    },
}

impl std::fmt::Display for RsluError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsluError::Singular { column } => {
                write!(f, "matrix is singular (no pivot in column {column})")
            }
            RsluError::Sparse(m) => write!(f, "substrate error: {m}"),
            RsluError::BadOption(m) => write!(f, "bad option: {m}"),
            RsluError::PatternMismatch { expected, got } => {
                write!(f, "pattern mismatch: expected {expected} nonzeros, got {got}")
            }
        }
    }
}

impl std::error::Error for RsluError {}

impl From<rsparse::SparseError> for RsluError {
    fn from(e: rsparse::SparseError) -> Self {
        RsluError::Sparse(e.to_string())
    }
}

impl From<rcomm::CommError> for RsluError {
    fn from(e: rcomm::CommError) -> Self {
        RsluError::Sparse(e.to_string())
    }
}

/// Result alias.
pub type RsluResult<T> = Result<T, RsluError>;
