//! The factorize and solve phases: left-looking Gilbert–Peierls sparse LU
//! with threshold partial pivoting, the algorithm family SuperLU builds
//! its supernodal variant on. Produces `P·A·Q = L·U` with unit-diagonal L
//! in CSC form.

use rsparse::{CscMatrix, CsrMatrix};

use crate::symbolic::Symbolic;
use crate::{RsluError, RsluResult};

/// A computed sparse LU factorization.
#[derive(Debug, Clone, PartialEq)]
pub struct LuFactorization {
    /// Unit-lower-triangular factor (diagonal stored explicitly as 1.0),
    /// in *pivot-row* numbering.
    l: CscMatrix,
    /// Upper-triangular factor.
    u: CscMatrix,
    /// Row permutation: `row_perm[pivot_position] = original_row`.
    row_perm: Vec<usize>,
    /// Column permutation used (`col_perm[new] = old`).
    col_perm: Vec<usize>,
    n: usize,
}

/// Sparse column buffers used during factorization.
struct ColumnWork {
    /// Dense accumulator.
    x: Vec<f64>,
    /// DFS stacks.
    stack: Vec<(usize, usize)>,
    /// Topologically ordered pattern of the current column.
    pattern: Vec<usize>,
    /// Visitation marks, keyed by column id.
    mark: Vec<bool>,
}

impl LuFactorization {
    /// Factor `a` using the symbolic context (column ordering) from
    /// `sym`. `pivot_threshold ∈ (0, 1]`: 1.0 = classical partial
    /// pivoting; smaller values prefer the diagonal entry when it is
    /// within the threshold of the column maximum (SuperLU's
    /// `diag_pivot_thresh`).
    pub fn factor(
        a: &CsrMatrix,
        sym: &Symbolic,
        pivot_threshold: f64,
    ) -> RsluResult<LuFactorization> {
        if !(0.0..=1.0).contains(&pivot_threshold) || pivot_threshold == 0.0 {
            return Err(RsluError::BadOption(format!(
                "pivot threshold must be in (0, 1], got {pivot_threshold}"
            )));
        }
        if !sym.compatible_with(a) {
            return Err(RsluError::PatternMismatch { expected: sym.nnz, got: a.nnz() });
        }
        let n = sym.n;
        // Column access to A with the fill-reducing permutation applied.
        let acsc = a.to_csc();

        // Growing factors in CSC; `pinv[orig_row] = pivot position` or MAX.
        let mut l_ptr = vec![0usize];
        let mut l_rows: Vec<usize> = Vec::with_capacity(4 * a.nnz());
        let mut l_vals: Vec<f64> = Vec::with_capacity(4 * a.nnz());
        let mut u_ptr = vec![0usize];
        let mut u_rows: Vec<usize> = Vec::with_capacity(4 * a.nnz());
        let mut u_vals: Vec<f64> = Vec::with_capacity(4 * a.nnz());
        let mut pinv = vec![usize::MAX; n];
        let mut row_perm = vec![usize::MAX; n];

        let mut work = ColumnWork {
            x: vec![0.0; n],
            stack: Vec::with_capacity(n),
            pattern: Vec::with_capacity(n),
            mark: vec![false; n],
        };

        for (j, &old_col) in sym.col_perm.iter().enumerate() {
            let (arows, avals) = acsc.col(old_col);

            // --- Symbolic step: reach of the column pattern through the
            //     already-computed columns of L (DFS in pivot order).
            work.pattern.clear();
            for &r in arows {
                // Each nonzero row r: if pivotal, its pivot column's L
                // column can propagate; run DFS from the column index.
                dfs_reach(
                    r,
                    &pinv,
                    &l_ptr,
                    &l_rows,
                    &mut work.mark,
                    &mut work.stack,
                    &mut work.pattern,
                );
            }
            // Pattern is in reverse-topological order; process in reverse.

            // --- Numeric step: scatter A(:, old_col), then eliminate.
            for (&r, &v) in arows.iter().zip(avals) {
                work.x[r] = v;
            }
            for idx in (0..work.pattern.len()).rev() {
                let node = work.pattern[idx];
                // Only pivotal rows have an L column to apply; non-pivotal
                // rows are leaves that merely carry values for the gather.
                let col = pinv[node];
                if col == usize::MAX {
                    continue;
                }
                let xj = work.x[node];
                if xj != 0.0 {
                    // x ← x − xj · L(:, col) (skipping the unit diagonal,
                    // which is the first stored entry).
                    for k in l_ptr[col]..l_ptr[col + 1] {
                        let lr = l_rows[k];
                        if lr != node {
                            work.x[lr] -= xj * l_vals[k];
                        }
                    }
                }
            }

            // --- Pivot: largest magnitude among non-pivotal rows, with
            //     diagonal preference under the threshold.
            let mut pivot_row = usize::MAX;
            let mut pivot_abs = 0.0f64;
            for &node in &work.pattern {
                if pinv[node] == usize::MAX {
                    let a = work.x[node].abs();
                    if a > pivot_abs {
                        pivot_abs = a;
                        pivot_row = node;
                    }
                }
            }
            // Prefer the natural diagonal (old row == old col) when close
            // enough to the maximum.
            if pinv[old_col] == usize::MAX
                && work.x[old_col].abs() >= pivot_threshold * pivot_abs
                && work.x[old_col] != 0.0
            {
                pivot_row = old_col;
            }
            if pivot_row == usize::MAX || work.x[pivot_row] == 0.0 {
                // Clean up scatter before failing.
                for &node in &work.pattern {
                    work.x[node] = 0.0;
                    work.mark[node] = false;
                }
                return Err(RsluError::Singular { column: j });
            }
            let pivot_val = work.x[pivot_row];
            pinv[pivot_row] = j;
            row_perm[j] = pivot_row;

            // --- Gather into U (pivotal rows) and L (non-pivotal rows).
            // U rows are pivot positions (already final); sort for CSC
            // invariants.
            let mut ucol: Vec<(usize, f64)> = Vec::new();
            let mut lcol: Vec<(usize, f64)> = Vec::new();
            for &node in &work.pattern {
                let v = work.x[node];
                work.x[node] = 0.0;
                work.mark[node] = false;
                if v == 0.0 {
                    continue;
                }
                let p = pinv[node];
                if node == pivot_row {
                    // Diagonal of U.
                    ucol.push((j, pivot_val));
                } else if p != usize::MAX {
                    ucol.push((p, v));
                } else {
                    lcol.push((node, v / pivot_val));
                }
            }
            ucol.sort_unstable_by_key(|&(r, _)| r);
            // L column: unit diagonal first (stored at the pivot row in
            // original numbering), then the sub-diagonal entries.
            l_rows.push(pivot_row);
            l_vals.push(1.0);
            for (r, v) in lcol {
                l_rows.push(r);
                l_vals.push(v);
            }
            l_ptr.push(l_rows.len());
            for (r, v) in ucol {
                u_rows.push(r);
                u_vals.push(v);
            }
            u_ptr.push(u_rows.len());
        }

        // Renumber L's rows into pivot order so both factors live in the
        // permuted space, and sort each column.
        let mut l_cols_sorted_rows = Vec::with_capacity(l_rows.len());
        let mut l_cols_sorted_vals = Vec::with_capacity(l_vals.len());
        let mut l_ptr_final = vec![0usize];
        let mut colbuf: Vec<(usize, f64)> = Vec::new();
        for j in 0..n {
            colbuf.clear();
            for k in l_ptr[j]..l_ptr[j + 1] {
                colbuf.push((pinv[l_rows[k]], l_vals[k]));
            }
            colbuf.sort_unstable_by_key(|&(r, _)| r);
            for &(r, v) in &colbuf {
                l_cols_sorted_rows.push(r);
                l_cols_sorted_vals.push(v);
            }
            l_ptr_final.push(l_cols_sorted_rows.len());
        }

        let l = CscMatrix::from_parts(n, n, l_ptr_final, l_cols_sorted_rows, l_cols_sorted_vals)
            .map_err(|e| RsluError::Sparse(e.to_string()))?;
        let u = CscMatrix::from_parts(n, n, u_ptr, u_rows, u_vals)
            .map_err(|e| RsluError::Sparse(e.to_string()))?;
        Ok(LuFactorization { l, u, row_perm, col_perm: sym.col_perm.clone(), n })
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Fill: stored entries in L + U (diagnostic; the quantity orderings
    /// try to minimize).
    pub fn fill(&self) -> usize {
        self.l.nnz() + self.u.nnz()
    }

    /// Borrow the L factor (pivot-order numbering, unit diagonal stored).
    pub fn l(&self) -> &CscMatrix {
        &self.l
    }

    /// Borrow the U factor.
    pub fn u(&self) -> &CscMatrix {
        &self.u
    }

    /// Row permutation (`row_perm[pivot_position] = original_row`).
    pub fn row_perm(&self) -> &[usize] {
        &self.row_perm
    }

    /// Solve A·x = b using the factors (one rhs).
    pub fn solve(&self, b: &[f64]) -> RsluResult<Vec<f64>> {
        if b.len() != self.n {
            return Err(RsluError::Sparse(format!(
                "rhs has length {}, expected {}",
                b.len(),
                self.n
            )));
        }
        // y = P·b.
        let mut y: Vec<f64> = self.row_perm.iter().map(|&orig| b[orig]).collect();
        // L·z = y (unit lower, CSC forward column sweep).
        for j in 0..self.n {
            let (rows, vals) = self.l.col(j);
            let yj = y[j];
            if yj != 0.0 {
                for (&r, &v) in rows.iter().zip(vals) {
                    if r > j {
                        y[r] -= v * yj;
                    }
                }
            }
        }
        // U·w = z (upper, CSC backward column sweep).
        for j in (0..self.n).rev() {
            let (rows, vals) = self.u.col(j);
            // Diagonal is the last entry of the column (rows sorted, all ≤ j).
            let &diag = vals.last().ok_or(RsluError::Singular { column: j })?;
            debug_assert_eq!(*rows.last().expect("nonempty"), j);
            y[j] /= diag;
            let yj = y[j];
            if yj != 0.0 {
                for (&r, &v) in rows.iter().zip(vals).take(rows.len() - 1) {
                    y[r] -= v * yj;
                }
            }
        }
        // x = Q·w: w is in permuted column space, scatter back.
        let mut x = vec![0.0; self.n];
        for (new, &old) in self.col_perm.iter().enumerate() {
            x[old] = y[new];
        }
        Ok(x)
    }

    /// Solve Aᵀ·x = b using the same factors: with P·A·Q = L·U this is
    /// x = Pᵀ·L⁻ᵀ·U⁻ᵀ·Qᵀ·b. The CSC storage of U and L is exactly the
    /// CSR storage of Uᵀ and Lᵀ, so both triangular sweeps are row
    /// sweeps. (SuperLU's `trans` option; also the engine behind the
    /// Hager condition estimator.)
    pub fn solve_transpose(&self, b: &[f64]) -> RsluResult<Vec<f64>> {
        if b.len() != self.n {
            return Err(RsluError::Sparse(format!(
                "rhs has length {}, expected {}",
                b.len(),
                self.n
            )));
        }
        // u = Qᵀ·b.
        let mut y: Vec<f64> = self.col_perm.iter().map(|&old| b[old]).collect();
        // Uᵀ·v = u: forward sweep over rows of Uᵀ = columns of U. The
        // diagonal of U is the last entry of each column.
        for j in 0..self.n {
            let (rows, vals) = self.u.col(j);
            let &diag = vals.last().ok_or(RsluError::Singular { column: j })?;
            let mut acc = y[j];
            for (&r, &v) in rows.iter().zip(vals).take(rows.len() - 1) {
                acc -= v * y[r];
            }
            y[j] = acc / diag;
        }
        // Lᵀ·w = v: backward sweep over rows of Lᵀ = columns of L (unit
        // diagonal stored first).
        for j in (0..self.n).rev() {
            let (rows, vals) = self.l.col(j);
            let mut acc = y[j];
            for (&r, &v) in rows.iter().zip(vals) {
                if r > j {
                    acc -= v * y[r];
                }
            }
            y[j] = acc;
        }
        // x = Pᵀ·w.
        let mut x = vec![0.0; self.n];
        for (pos, &orig) in self.row_perm.iter().enumerate() {
            x[orig] = y[pos];
        }
        Ok(x)
    }

    /// Hager–Higham estimate of ‖A⁻¹‖₁ from the factors (one forward and
    /// a handful of solve/transpose-solve pairs). Multiply by ‖A‖₁ for a
    /// 1-norm condition-number estimate — SuperLU's `*gscon`.
    pub fn inverse_norm1_estimate(&self) -> RsluResult<f64> {
        let n = self.n;
        let mut x = vec![1.0 / n as f64; n];
        let mut best = 0.0f64;
        for _ in 0..5 {
            let y = self.solve(&x)?;
            let est = rsparse::dense::norm1(&y);
            // ξ = sign(y); z = A⁻ᵀ·ξ.
            let xi: Vec<f64> = y.iter().map(|v| if *v >= 0.0 { 1.0 } else { -1.0 }).collect();
            let z = self.solve_transpose(&xi)?;
            // Stop when no coordinate beats the current functional value.
            let (jmax, zmax) = z
                .iter()
                .enumerate()
                .fold((0usize, 0.0f64), |(bj, bv), (j, &v)| {
                    if v.abs() > bv {
                        (j, v.abs())
                    } else {
                        (bj, bv)
                    }
                });
            best = best.max(est);
            let zx = rsparse::dense::dot(&z, &x);
            if zmax <= zx {
                break;
            }
            x.iter_mut().for_each(|v| *v = 0.0);
            x[jmax] = 1.0;
        }
        Ok(best)
    }

    /// Solve for several right-hand sides given as columns of a flat
    /// column-major array (LISI's multi-RHS scenario §5.2c).
    pub fn solve_multi(&self, b: &[f64], nrhs: usize) -> RsluResult<Vec<f64>> {
        if nrhs == 0 || b.len() != self.n * nrhs {
            return Err(RsluError::Sparse(format!(
                "multi-rhs buffer has length {}, expected {}",
                b.len(),
                self.n * nrhs
            )));
        }
        let mut out = Vec::with_capacity(b.len());
        for k in 0..nrhs {
            out.extend(self.solve(&b[k * self.n..(k + 1) * self.n])?);
        }
        Ok(out)
    }
}

/// DFS from original row `start` through pivotal columns, collecting the
/// reach in reverse-topological order (CSparse's `cs_dfs` shape).
fn dfs_reach(
    start: usize,
    pinv: &[usize],
    l_ptr: &[usize],
    l_rows: &[usize],
    mark: &mut [bool],
    stack: &mut Vec<(usize, usize)>,
    pattern: &mut Vec<usize>,
) {
    if mark[start] {
        return;
    }
    stack.push((start, 0));
    mark[start] = true;
    while let Some(top) = stack.len().checked_sub(1) {
        let (node, mut next) = stack[top];
        let col = pinv[node];
        if col == usize::MAX {
            // Non-pivotal row: leaf.
            pattern.push(node);
            stack.pop();
            continue;
        }
        let lo = l_ptr[col];
        let hi = l_ptr[col + 1];
        let mut pushed = false;
        while lo + next < hi {
            let child = l_rows[lo + next];
            next += 1;
            if !mark[child] {
                mark[child] = true;
                stack[top].1 = next;
                stack.push((child, 0));
                pushed = true;
                break;
            }
        }
        if !pushed {
            pattern.push(node);
            stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::Ordering;
    use rsparse::generate;

    fn factor_and_check(a: &CsrMatrix, ord: Ordering) {
        let sym = Symbolic::analyze(a, ord).unwrap();
        let lu = LuFactorization::factor(a, &sym, 1.0).unwrap();
        let n = a.rows();
        // Check A·x = b for a known solution.
        let x_true = generate::random_vector(n, 42);
        let b = a.matvec(&x_true).unwrap();
        let x = lu.solve(&b).unwrap();
        let scale = rsparse::dense::norm_inf(&x_true).max(1.0);
        for (g, e) in x.iter().zip(&x_true) {
            assert!((g - e).abs() < 1e-8 * scale, "{ord:?}: {g} vs {e}");
        }
    }

    #[test]
    fn factors_solve_diag_dominant_systems_under_all_orderings() {
        let a = generate::random_diag_dominant(40, 4, 11);
        for ord in [Ordering::Natural, Ordering::Rcm, Ordering::MinDegree] {
            factor_and_check(&a, ord);
        }
    }

    #[test]
    fn factors_solve_2d_laplacian() {
        let a = generate::laplacian_2d(9);
        factor_and_check(&a, Ordering::MinDegree);
    }

    #[test]
    fn factors_solve_nonsymmetric_convection_problem() {
        let (a, _) = rmesh::paper_problem(8).assemble_global();
        for ord in [Ordering::Natural, Ordering::MinDegree] {
            factor_and_check(&a, ord);
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [0 1; 1 0] requires a row swap.
        let a = rsparse::CooMatrix::from_triplets(2, 2, &[0, 1], &[1, 0], &[1.0, 2.0])
            .unwrap()
            .to_csr();
        let sym = Symbolic::analyze(&a, Ordering::Natural).unwrap();
        let lu = LuFactorization::factor(&a, &sym, 1.0).unwrap();
        let x = lu.solve(&[3.0, 4.0]).unwrap();
        // x1 = 3 (from row 0: x1*1 = 3), x0 = 2 (row 1: 2x0 = 4).
        assert!((x[0] - 2.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_is_detected() {
        // Second column identically zero.
        let a = rsparse::CooMatrix::from_triplets(2, 2, &[0, 1], &[0, 0], &[1.0, 2.0])
            .unwrap()
            .to_csr();
        let sym = Symbolic::analyze(&a, Ordering::Natural).unwrap();
        assert!(matches!(
            LuFactorization::factor(&a, &sym, 1.0),
            Err(RsluError::Singular { .. })
        ));
    }

    #[test]
    fn lu_product_reconstructs_permuted_matrix() {
        let a = generate::random_diag_dominant(15, 3, 7);
        let sym = Symbolic::analyze(&a, Ordering::Rcm).unwrap();
        let lu = LuFactorization::factor(&a, &sym, 1.0).unwrap();
        // P·A·Q = L·U, checked entrywise via dense products.
        let ld = lu.l().to_csr().to_dense();
        let ud = lu.u().to_csr().to_dense();
        let n = 15;
        // Compute (P·A·Q)[i][j] = A[row_perm[i]][col_perm[j]].
        let ad = a.to_dense();
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += ld[(i, k)] * ud[(k, j)];
                }
                let expect = ad[(lu.row_perm()[i], sym.col_perm[j])];
                assert!(
                    (s - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                    "({i},{j}): {s} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn mindegree_reduces_fill_versus_worst_case() {
        // Arrow matrix pointing the wrong way: natural ordering fills
        // completely, minimum degree keeps it sparse.
        let n = 30;
        let mut coo = rsparse::CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
            if i > 0 {
                coo.push(0, i, 1.0).unwrap();
                coo.push(i, 0, 1.0).unwrap();
            }
        }
        let a = coo.to_csr();
        let f_nat = {
            let sym = Symbolic::analyze(&a, Ordering::Natural).unwrap();
            LuFactorization::factor(&a, &sym, 1.0).unwrap().fill()
        };
        let f_md = {
            let sym = Symbolic::analyze(&a, Ordering::MinDegree).unwrap();
            LuFactorization::factor(&a, &sym, 1.0).unwrap().fill()
        };
        assert!(
            f_md * 3 < f_nat,
            "minimum degree should avoid the arrow fill: {f_md} vs {f_nat}"
        );
    }

    #[test]
    fn multi_rhs_solves_each_column() {
        let a = generate::random_diag_dominant(12, 3, 9);
        let sym = Symbolic::analyze(&a, Ordering::MinDegree).unwrap();
        let lu = LuFactorization::factor(&a, &sym, 1.0).unwrap();
        let x1 = generate::random_vector(12, 1);
        let x2 = generate::random_vector(12, 2);
        let mut b = a.matvec(&x1).unwrap();
        b.extend(a.matvec(&x2).unwrap());
        let xs = lu.solve_multi(&b, 2).unwrap();
        for (g, e) in xs[..12].iter().zip(&x1) {
            assert!((g - e).abs() < 1e-9);
        }
        for (g, e) in xs[12..].iter().zip(&x2) {
            assert!((g - e).abs() < 1e-9);
        }
        assert!(lu.solve_multi(&b, 3).is_err());
    }

    #[test]
    fn transpose_solve_matches_dense_transpose() {
        let a = generate::random_diag_dominant(18, 3, 31);
        let sym = Symbolic::analyze(&a, Ordering::MinDegree).unwrap();
        let lu = LuFactorization::factor(&a, &sym, 1.0).unwrap();
        let x_true = generate::random_vector(18, 6);
        let bt = a.transpose().matvec(&x_true).unwrap();
        let x = lu.solve_transpose(&bt).unwrap();
        for (g, e) in x.iter().zip(&x_true) {
            assert!((g - e).abs() < 1e-9, "{g} vs {e}");
        }
        assert!(lu.solve_transpose(&[1.0]).is_err());
    }

    #[test]
    fn condition_estimate_brackets_the_true_condition_number() {
        // For a well-conditioned diagonally dominant matrix, the Hager
        // estimate of ‖A⁻¹‖₁ must be a lower bound on the true value and
        // within a small factor of it.
        let n = 15;
        let a = generate::random_diag_dominant(n, 3, 17);
        let sym = Symbolic::analyze(&a, Ordering::Natural).unwrap();
        let lu = LuFactorization::factor(&a, &sym, 1.0).unwrap();
        let est = lu.inverse_norm1_estimate().unwrap();
        // True ‖A⁻¹‖₁ from dense columns.
        let dense = a.to_dense();
        let mut true_norm = 0.0f64;
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let col = dense.solve(&e).unwrap();
            true_norm = true_norm.max(rsparse::dense::norm1(&col));
        }
        assert!(est <= true_norm * (1.0 + 1e-10), "estimate must lower-bound: {est} vs {true_norm}");
        assert!(est >= true_norm / 10.0, "estimate too loose: {est} vs {true_norm}");
    }

    #[test]
    fn condition_estimate_blows_up_for_near_singular_matrices() {
        // tridiag(−1, 2, −1) of order n has condition O(n²); a tiny
        // diagonal perturbation version is much worse than a dominant one.
        let good = generate::random_diag_dominant(20, 3, 9);
        let bad = generate::laplacian_1d(60);
        let est = |a: &CsrMatrix| {
            let sym = Symbolic::analyze(a, Ordering::Natural).unwrap();
            let lu = LuFactorization::factor(a, &sym, 1.0).unwrap();
            lu.inverse_norm1_estimate().unwrap() * a.norm_inf()
        };
        assert!(est(&bad) > 20.0 * est(&good), "{} vs {}", est(&bad), est(&good));
    }

    #[test]
    fn bad_pivot_threshold_rejected() {
        let a = generate::laplacian_1d(4);
        let sym = Symbolic::analyze(&a, Ordering::Natural).unwrap();
        assert!(LuFactorization::factor(&a, &sym, 0.0).is_err());
        assert!(LuFactorization::factor(&a, &sym, 1.5).is_err());
        assert!(LuFactorization::factor(&a, &sym, 0.5).is_ok());
    }

    #[test]
    fn pattern_mismatch_on_reuse_is_detected() {
        let a = generate::laplacian_1d(6);
        let b = generate::laplacian_1d(7);
        let sym = Symbolic::analyze(&a, Ordering::Natural).unwrap();
        assert!(matches!(
            LuFactorization::factor(&b, &sym, 1.0),
            Err(RsluError::PatternMismatch { .. })
        ));
    }
}
