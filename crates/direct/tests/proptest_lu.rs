//! Property-based tests on the RSLU package: the sparse LU must agree
//! with the dense reference for arbitrary (nonsingular) inputs, under
//! every ordering, and factor reuse must be sound.

use proptest::collection::vec;
use proptest::prelude::*;
use rdirect::{LuFactorization, Ordering, RsluOptions, RsluSolver};
use rdirect::symbolic::Symbolic;
use rsparse::generate;

/// Random diagonally dominant (hence nonsingular) matrix via seeds.
fn dd(n: usize, seed: u64) -> rsparse::CsrMatrix {
    generate::random_diag_dominant(n, 3, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sparse_lu_matches_dense_solve(
        seed in 0u64..100_000,
        n in 5usize..40,
        ord_idx in 0usize..3,
    ) {
        let ord = [Ordering::Natural, Ordering::Rcm, Ordering::MinDegree][ord_idx];
        let a = dd(n, seed);
        let b = generate::random_vector(n, seed ^ 0xbeef);
        let sym = Symbolic::analyze(&a, ord).unwrap();
        let lu = LuFactorization::factor(&a, &sym, 1.0).unwrap();
        let x = lu.solve(&b).unwrap();
        let reference = a.to_dense().solve(&b).unwrap();
        for (g, e) in x.iter().zip(&reference) {
            prop_assert!((g - e).abs() < 1e-7 * (1.0 + e.abs()), "{ord:?}");
        }
    }

    #[test]
    fn threshold_pivoting_still_solves(
        seed in 0u64..100_000,
        thresh in 0.1f64..1.0,
    ) {
        let n = 25;
        let a = dd(n, seed);
        let x_true = generate::random_vector(n, seed ^ 1);
        let b = a.matvec(&x_true).unwrap();
        let sym = Symbolic::analyze(&a, Ordering::MinDegree).unwrap();
        let lu = LuFactorization::factor(&a, &sym, thresh).unwrap();
        let x = lu.solve(&b).unwrap();
        for (g, e) in x.iter().zip(&x_true) {
            // Relaxed pivoting trades stability for sparsity; diagonally
            // dominant systems stay well behaved.
            prop_assert!((g - e).abs() < 1e-6);
        }
    }

    #[test]
    fn refactorization_with_scaled_values_is_exact(
        seed in 0u64..100_000,
        scale in 0.5f64..4.0,
    ) {
        let n = 20;
        let a = dd(n, seed);
        let mut s = RsluSolver::new(RsluOptions::default());
        s.factorize(&a).unwrap();
        let new_vals: Vec<f64> = a.values().iter().map(|v| v * scale).collect();
        s.refactorize(&new_vals).unwrap();
        let x_true = generate::random_vector(n, seed ^ 2);
        let scaled = rsparse::ops::scale(scale, &a);
        let b = scaled.matvec(&x_true).unwrap();
        let x = s.solve(&b).unwrap();
        for (g, e) in x.iter().zip(&x_true) {
            prop_assert!((g - e).abs() < 1e-7);
        }
    }

    #[test]
    fn permutation_vector_is_always_valid(
        seed in 0u64..100_000,
        n in 3usize..30,
    ) {
        let a = dd(n, seed);
        let sym = Symbolic::analyze(&a, Ordering::MinDegree).unwrap();
        let lu = LuFactorization::factor(&a, &sym, 1.0).unwrap();
        let mut seen = vec![false; n];
        for &r in lu.row_perm() {
            prop_assert!(r < n);
            prop_assert!(!seen[r], "row used twice");
            seen[r] = true;
        }
    }

    #[test]
    fn fill_never_shrinks_below_input(
        seed in 0u64..100_000,
        n in 5usize..30,
    ) {
        let a = dd(n, seed);
        let sym = Symbolic::analyze(&a, Ordering::MinDegree).unwrap();
        let lu = LuFactorization::factor(&a, &sym, 1.0).unwrap();
        // L + U stores at least one entry per input nonzero's row/col
        // "support": the factors contain the (permuted) matrix, so total
        // stored entries ≥ n (diagonals) and ≥ a lower bound tied to nnz.
        prop_assert!(lu.fill() >= n + a.nnz() / 2);
    }

    #[test]
    fn solve_multi_is_columnwise(
        seed in 0u64..100_000,
        vals in vec(-10.0f64..10.0, 30),
    ) {
        let n = 15;
        let a = dd(n, seed);
        let sym = Symbolic::analyze(&a, Ordering::Rcm).unwrap();
        let lu = LuFactorization::factor(&a, &sym, 1.0).unwrap();
        let b = &vals[..2 * n];
        let xs = lu.solve_multi(b, 2).unwrap();
        let x0 = lu.solve(&b[..n]).unwrap();
        let x1 = lu.solve(&b[n..2 * n]).unwrap();
        prop_assert_eq!(&xs[..n], &x0[..]);
        prop_assert_eq!(&xs[n..], &x1[..]);
    }
}
