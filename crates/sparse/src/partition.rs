//! Block-row partitioning — the data distribution LISI assumes (paper
//! §5.4): global rows are split into contiguous blocks, one per rank, the
//! layout `setStartRow` / `setLocalRows` describe.

use crate::error::{SparseError, SparseResult};

/// A contiguous block-row partition of `0..global_rows` across `parts`
/// owners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockRowPartition {
    /// `offsets[r]..offsets[r+1]` is rank r's row range; `parts + 1`
    /// entries, first 0, last `global_rows`.
    offsets: Vec<usize>,
}

impl BlockRowPartition {
    /// Even partition: the first `global_rows % parts` ranks get one extra
    /// row — PETSc's default `PETSC_DECIDE` layout.
    pub fn even(global_rows: usize, parts: usize) -> Self {
        assert!(parts > 0, "partition needs at least one part");
        let base = global_rows / parts;
        let extra = global_rows % parts;
        let mut offsets = Vec::with_capacity(parts + 1);
        let mut acc = 0;
        offsets.push(0);
        for r in 0..parts {
            acc += base + usize::from(r < extra);
            offsets.push(acc);
        }
        BlockRowPartition { offsets }
    }

    /// Build from per-rank row counts.
    pub fn from_counts(counts: &[usize]) -> SparseResult<Self> {
        if counts.is_empty() {
            return Err(SparseError::BadBlockPartition("no parts".into()));
        }
        let mut offsets = Vec::with_capacity(counts.len() + 1);
        offsets.push(0);
        let mut acc = 0usize;
        for &c in counts {
            acc += c;
            offsets.push(acc);
        }
        Ok(BlockRowPartition { offsets })
    }

    /// Build from explicit offsets (must start at 0 and be non-decreasing).
    pub fn from_offsets(offsets: Vec<usize>) -> SparseResult<Self> {
        if offsets.len() < 2 || offsets[0] != 0 {
            return Err(SparseError::BadBlockPartition(
                "offsets must start at 0 and describe at least one part".into(),
            ));
        }
        if offsets.windows(2).any(|w| w[1] < w[0]) {
            return Err(SparseError::BadBlockPartition("offsets must be non-decreasing".into()));
        }
        Ok(BlockRowPartition { offsets })
    }

    /// Number of parts (ranks).
    pub fn parts(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of global rows.
    pub fn global_rows(&self) -> usize {
        *self.offsets.last().expect("validated")
    }

    /// Rank r's half-open row range.
    pub fn range(&self, rank: usize) -> std::ops::Range<usize> {
        self.offsets[rank]..self.offsets[rank + 1]
    }

    /// First global row owned by `rank` (LISI's `setStartRow`).
    pub fn start_row(&self, rank: usize) -> usize {
        self.offsets[rank]
    }

    /// Number of rows owned by `rank` (LISI's `setLocalRows`).
    pub fn local_rows(&self, rank: usize) -> usize {
        self.offsets[rank + 1] - self.offsets[rank]
    }

    /// Which rank owns global row `row`? Binary search over offsets.
    pub fn owner(&self, row: usize) -> SparseResult<usize> {
        if row >= self.global_rows() {
            return Err(SparseError::IndexOutOfBounds {
                axis: "row",
                index: row,
                bound: self.global_rows(),
            });
        }
        // partition_point returns the first offset > row; owner is one less.
        Ok(self.offsets.partition_point(|&o| o <= row) - 1)
    }

    /// Borrow the offsets array.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partition_spreads_remainder_first() {
        let p = BlockRowPartition::even(10, 4);
        assert_eq!(p.offsets(), &[0, 3, 6, 8, 10]);
        assert_eq!(p.parts(), 4);
        assert_eq!(p.global_rows(), 10);
        assert_eq!(p.local_rows(0), 3);
        assert_eq!(p.local_rows(3), 2);
        assert_eq!(p.start_row(2), 6);
        assert_eq!(p.range(1), 3..6);
    }

    #[test]
    fn owner_lookup_is_exact() {
        let p = BlockRowPartition::even(10, 4);
        let owners: Vec<usize> = (0..10).map(|r| p.owner(r).unwrap()).collect();
        assert_eq!(owners, vec![0, 0, 0, 1, 1, 1, 2, 2, 3, 3]);
        assert!(p.owner(10).is_err());
    }

    #[test]
    fn empty_parts_are_allowed() {
        // More ranks than rows: trailing ranks own nothing.
        let p = BlockRowPartition::even(2, 4);
        assert_eq!(p.offsets(), &[0, 1, 2, 2, 2]);
        assert_eq!(p.local_rows(3), 0);
        assert_eq!(p.owner(1).unwrap(), 1);
    }

    #[test]
    fn from_counts_and_offsets_round_trip() {
        let p = BlockRowPartition::from_counts(&[4, 0, 6]).unwrap();
        assert_eq!(p.offsets(), &[0, 4, 4, 10]);
        let q = BlockRowPartition::from_offsets(vec![0, 4, 4, 10]).unwrap();
        assert_eq!(p, q);
        assert!(BlockRowPartition::from_offsets(vec![1, 2]).is_err());
        assert!(BlockRowPartition::from_offsets(vec![0, 3, 2]).is_err());
        assert!(BlockRowPartition::from_offsets(vec![0]).is_err());
        assert!(BlockRowPartition::from_counts(&[]).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn zero_parts_panics() {
        let _ = BlockRowPartition::even(5, 0);
    }
}
