//! Sparse matrix algebra beyond matvec: addition, scaling, sparse×sparse
//! products and the Galerkin triple product multigrid needs.

use crate::csr::CsrMatrix;
use crate::error::{SparseError, SparseResult};

/// C = alpha·A + beta·B (same shape, union pattern, exact zeros dropped).
pub fn add(alpha: f64, a: &CsrMatrix, beta: f64, b: &CsrMatrix) -> SparseResult<CsrMatrix> {
    if a.shape() != b.shape() {
        return Err(SparseError::ShapeMismatch { left: a.shape(), right: b.shape() });
    }
    let (rows, cols) = a.shape();
    let mut row_ptr = vec![0usize; rows + 1];
    let mut col_idx = Vec::with_capacity(a.nnz() + b.nnz());
    let mut values = Vec::with_capacity(a.nnz() + b.nnz());
    for i in 0..rows {
        let (ac, av) = a.row(i);
        let (bc, bv) = b.row(i);
        // Two-pointer merge over sorted column indices.
        let (mut p, mut q) = (0usize, 0usize);
        while p < ac.len() || q < bc.len() {
            let (c, v) = if q >= bc.len() || (p < ac.len() && ac[p] < bc[q]) {
                let out = (ac[p], alpha * av[p]);
                p += 1;
                out
            } else if p >= ac.len() || bc[q] < ac[p] {
                let out = (bc[q], beta * bv[q]);
                q += 1;
                out
            } else {
                let out = (ac[p], alpha * av[p] + beta * bv[q]);
                p += 1;
                q += 1;
                out
            };
            if v != 0.0 {
                col_idx.push(c);
                values.push(v);
            }
        }
        row_ptr[i + 1] = col_idx.len();
    }
    Ok(CsrMatrix::from_parts_unchecked(rows, cols, row_ptr, col_idx, values))
}

/// B = alpha·A.
pub fn scale(alpha: f64, a: &CsrMatrix) -> CsrMatrix {
    let (rows, cols, row_ptr, col_idx, mut values) = a.clone().into_parts();
    for v in &mut values {
        *v *= alpha;
    }
    CsrMatrix::from_parts_unchecked(rows, cols, row_ptr, col_idx, values)
}

/// C = A·B via the classic Gustavson row-wise SpGEMM with a dense
/// accumulator ("scatter/gather") per row.
pub fn matmul(a: &CsrMatrix, b: &CsrMatrix) -> SparseResult<CsrMatrix> {
    if a.cols() != b.rows() {
        return Err(SparseError::ShapeMismatch { left: a.shape(), right: b.shape() });
    }
    let rows = a.rows();
    let cols = b.cols();
    let mut row_ptr = vec![0usize; rows + 1];
    let mut col_idx: Vec<usize> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    // Dense accumulator plus marker array; the touched list makes clearing
    // O(row nnz) instead of O(cols).
    let mut acc = vec![0.0f64; cols];
    let mut mark = vec![false; cols];
    let mut touched: Vec<usize> = Vec::new();
    for i in 0..rows {
        touched.clear();
        let (ac, av) = a.row(i);
        for (&k, &aik) in ac.iter().zip(av) {
            let (bc, bv) = b.row(k);
            for (&j, &bkj) in bc.iter().zip(bv) {
                if !mark[j] {
                    mark[j] = true;
                    touched.push(j);
                }
                acc[j] += aik * bkj;
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            let v = acc[j];
            acc[j] = 0.0;
            mark[j] = false;
            if v != 0.0 {
                col_idx.push(j);
                values.push(v);
            }
        }
        row_ptr[i + 1] = col_idx.len();
    }
    Ok(CsrMatrix::from_parts_unchecked(rows, cols, row_ptr, col_idx, values))
}

/// Galerkin triple product R·A·P (multigrid coarse-grid operator).
pub fn triple_product(r: &CsrMatrix, a: &CsrMatrix, p: &CsrMatrix) -> SparseResult<CsrMatrix> {
    let ap = matmul(a, p)?;
    matmul(r, &ap)
}

/// Left diagonal scaling: B = D·A where `d` is the diagonal of D.
pub fn diag_scale_rows(d: &[f64], a: &CsrMatrix) -> SparseResult<CsrMatrix> {
    if d.len() != a.rows() {
        return Err(SparseError::LengthMismatch {
            what: "row scaling diagonal",
            expected: a.rows(),
            got: d.len(),
        });
    }
    let (rows, cols, row_ptr, col_idx, mut values) = a.clone().into_parts();
    for (i, &di) in d.iter().enumerate() {
        for v in &mut values[row_ptr[i]..row_ptr[i + 1]] {
            *v *= di;
        }
    }
    Ok(CsrMatrix::from_parts_unchecked(rows, cols, row_ptr, col_idx, values))
}

/// Residual r = b − A·x computed in one fused pass.
pub fn residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> SparseResult<Vec<f64>> {
    if b.len() != a.rows() {
        return Err(SparseError::LengthMismatch {
            what: "rhs",
            expected: a.rows(),
            got: b.len(),
        });
    }
    if x.len() != a.cols() {
        return Err(SparseError::LengthMismatch {
            what: "solution",
            expected: a.cols(),
            got: x.len(),
        });
    }
    let mut r = b.to_vec();
    for (i, ri) in r.iter_mut().enumerate() {
        let (cols, vals) = a.row(i);
        let mut acc = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            acc += v * x[c];
        }
        *ri -= acc;
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn m(rows: usize, cols: usize, trip: &[(usize, usize, f64)]) -> CsrMatrix {
        let mut coo = CooMatrix::new(rows, cols);
        for &(r, c, v) in trip {
            coo.push(r, c, v).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn add_merges_patterns_and_drops_exact_zeros() {
        let a = m(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]);
        let b = m(2, 2, &[(0, 1, 3.0), (1, 1, -2.0)]);
        let c = add(1.0, &a, 1.0, &b).unwrap();
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(0, 1), 3.0);
        assert_eq!(c.nnz(), 2, "the (1,1) cancellation must be dropped");
    }

    #[test]
    fn add_with_coefficients_matches_dense() {
        let a = m(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]);
        let b = m(2, 3, &[(0, 0, 5.0), (1, 0, 7.0)]);
        let c = add(2.0, &a, -1.0, &b).unwrap();
        let ad = a.to_dense();
        let bd = b.to_dense();
        let cd = c.to_dense();
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(cd[(i, j)], 2.0 * ad[(i, j)] - bd[(i, j)]);
            }
        }
        assert!(add(1.0, &a, 1.0, &m(3, 2, &[])).is_err());
    }

    #[test]
    fn scale_multiplies_values() {
        let a = m(2, 2, &[(0, 0, 1.0), (1, 0, -2.0)]);
        let b = scale(-3.0, &a);
        assert_eq!(b.get(0, 0), -3.0);
        assert_eq!(b.get(1, 0), 6.0);
    }

    #[test]
    fn matmul_matches_dense_reference() {
        let a = m(2, 3, &[(0, 0, 1.0), (0, 1, 2.0), (1, 2, 3.0)]);
        let b = m(3, 2, &[(0, 1, 4.0), (1, 0, 5.0), (2, 1, 6.0)]);
        let c = matmul(&a, &b).unwrap();
        // Dense check.
        let ad = a.to_dense();
        let bd = b.to_dense();
        for i in 0..2 {
            for j in 0..2 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += ad[(i, k)] * bd[(k, j)];
                }
                assert_eq!(c.get(i, j), s);
            }
        }
        assert!(matmul(&a, &a).is_err());
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = m(3, 3, &[(0, 1, 2.0), (1, 2, -1.0), (2, 0, 4.0)]);
        let i = CsrMatrix::identity(3);
        assert_eq!(matmul(&a, &i).unwrap(), a);
        assert_eq!(matmul(&i, &a).unwrap(), a);
    }

    #[test]
    fn triple_product_composes() {
        let r = m(1, 2, &[(0, 0, 1.0), (0, 1, 1.0)]);
        let a = m(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)]);
        let p = r.transpose();
        let c = triple_product(&r, &a, &p).unwrap();
        assert_eq!(c.shape(), (1, 1));
        assert_eq!(c.get(0, 0), 5.0);
    }

    #[test]
    fn diag_scaling_and_residual() {
        let a = m(2, 2, &[(0, 0, 2.0), (0, 1, 1.0), (1, 1, 4.0)]);
        let scaled = diag_scale_rows(&[0.5, 0.25], &a).unwrap();
        assert_eq!(scaled.get(0, 0), 1.0);
        assert_eq!(scaled.get(1, 1), 1.0);
        assert!(diag_scale_rows(&[1.0], &a).is_err());

        let x = vec![1.0, 2.0];
        let b = vec![5.0, 9.0];
        let r = residual(&a, &x, &b).unwrap();
        assert_eq!(r, vec![1.0, 1.0]);
        assert!(residual(&a, &x, &[1.0]).is_err());
        assert!(residual(&a, &[1.0], &b).is_err());
    }
}
