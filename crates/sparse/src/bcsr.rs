//! Block-CSR — CSR over dense `r×c` blocks.
//!
//! Rows are grouped into block rows of height `br` and columns into
//! block columns of width `bc`; every block that holds at least one
//! entry is stored as a dense row-major `br×bc` tile (absent positions
//! filled with `0.0`). For FEM-style matrices assembled with several
//! degrees of freedom per node the blocks are completely full, and the
//! SpMV inner loop loads one block-column index per `br·bc` multiplies
//! instead of one column index per multiply.
//!
//! # Bit-identity contract
//!
//! Block columns are stored ascending, so within each scalar row the
//! kernel visits stored positions in ascending column order — the CSR
//! entry order. Fill positions contribute `acc += 0.0 · x[c]`. Because
//! every accumulator starts at `+0.0` and IEEE-754 round-to-nearest
//! addition of `±0.0` to any finite value (including `+0.0`; a sum that
//! is exactly zero rounds to `+0.0`) returns that value bitwise
//! unchanged, the fill terms are identities and the result is
//! bit-identical to [`CsrMatrix::matvec_into`] for finite matrix and
//! vector data.

use crate::csr::CsrMatrix;
use crate::error::{SparseError, SparseResult};
use crate::threads::{self, SharedMutSlice};

/// Default square block size (3 dof/node elasticity-style assembly).
pub const DEFAULT_BLOCK: usize = 3;

/// Hard cap on either block dimension: tiles stay cache-resident and
/// conversion scratch stays trivial.
pub const MAX_BLOCK: usize = 16;

/// Minimum (scalar) row count before the threaded kernels dispatch to
/// the pool (same rationale and value as the CSR threshold).
const PAR_SPMV_MIN_ROWS: usize = 2048;

/// Slot marker for fill positions in the `src_idx` map.
const FILL: usize = usize::MAX;

/// A sparse matrix stored as dense `br×bc` blocks over a CSR block
/// skeleton. Built from (and convertible back to) [`CsrMatrix`]; the
/// source's explicit zeros are preserved and fill is dropped on the way
/// back via the `src_idx` map.
#[derive(Debug, Clone, PartialEq)]
pub struct BcsrMatrix {
    rows: usize,
    cols: usize,
    /// Block height, `1..=MAX_BLOCK`.
    br: usize,
    /// Block width, `1..=MAX_BLOCK`.
    bc: usize,
    /// Block offset of each block row; `mb + 1` entries where
    /// `mb = ceil(rows / br)`.
    block_ptr: Vec<usize>,
    /// Block-column index per stored block, ascending within a block row.
    block_cols: Vec<usize>,
    /// Dense row-major `br×bc` tile per stored block.
    blocks: Vec<f64>,
    /// CSR nnz index per tile slot, [`FILL`] for fill.
    src_idx: Vec<usize>,
    /// Real (non-fill) stored entries.
    nnz: usize,
}

impl BcsrMatrix {
    /// Convert a CSR matrix using the default square block size.
    pub fn from_csr(a: &CsrMatrix) -> BcsrMatrix {
        BcsrMatrix::from_csr_with(a, DEFAULT_BLOCK, DEFAULT_BLOCK)
    }

    /// Convert a CSR matrix with explicit block dimensions (each clamped
    /// to `1..=MAX_BLOCK`). Any matrix converts — sparse blocks are
    /// zero-filled — but the payoff needs mostly-full blocks; see
    /// [`crate::autotune`] for the detection scan.
    pub fn from_csr_with(a: &CsrMatrix, br: usize, bc: usize) -> BcsrMatrix {
        let rows = a.rows();
        let cols = a.cols();
        let br = br.clamp(1, MAX_BLOCK);
        let bc = bc.clamp(1, MAX_BLOCK);
        let mb = rows.div_ceil(br);
        let nb = cols.div_ceil(bc);
        let row_ptr = a.row_ptr();
        let (a_cols, a_vals) = (a.col_idx(), a.values());

        // Pass 1: the block skeleton (sorted unique block cols per block
        // row), via a stamp array so each block row is linear in its nnz.
        let mut block_ptr = vec![0usize; mb + 1];
        let mut block_cols: Vec<usize> = Vec::new();
        let mut stamp = vec![usize::MAX; nb];
        for bi in 0..mb {
            let first = block_cols.len();
            for r in bi * br..((bi + 1) * br).min(rows) {
                for &c in &a_cols[row_ptr[r]..row_ptr[r + 1]] {
                    let bcol = c / bc;
                    if stamp[bcol] != bi {
                        stamp[bcol] = bi;
                        block_cols.push(bcol);
                    }
                }
            }
            block_cols[first..].sort_unstable();
            block_ptr[bi + 1] = block_cols.len();
        }

        // Pass 2: scatter entries into their tiles. `slot_of[bcol]` maps
        // a block column to its block index within the current block row.
        let tile = br * bc;
        let mut blocks = vec![0.0f64; block_cols.len() * tile];
        let mut src_idx = vec![FILL; block_cols.len() * tile];
        let mut slot_of = vec![0usize; nb];
        for bi in 0..mb {
            for k in block_ptr[bi]..block_ptr[bi + 1] {
                slot_of[block_cols[k]] = k;
            }
            for r in bi * br..((bi + 1) * br).min(rows) {
                let ii = r - bi * br;
                for p in row_ptr[r]..row_ptr[r + 1] {
                    let c = a_cols[p];
                    let k = slot_of[c / bc];
                    let slot = k * tile + ii * bc + (c % bc);
                    blocks[slot] = a_vals[p];
                    src_idx[slot] = p;
                }
            }
        }

        BcsrMatrix {
            rows,
            cols,
            br,
            bc,
            block_ptr,
            block_cols,
            blocks,
            src_idx,
            nnz: a.nnz(),
        }
    }

    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Real stored entries (excluding fill).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Block dimensions `(br, bc)`.
    pub fn block_shape(&self) -> (usize, usize) {
        (self.br, self.bc)
    }

    /// Number of stored blocks.
    pub fn n_blocks(&self) -> usize {
        self.block_cols.len()
    }

    /// Real entries / stored tile slots — 1.0 means every block is full.
    pub fn fill_ratio(&self) -> f64 {
        if self.block_cols.is_empty() {
            return 1.0;
        }
        self.nnz as f64 / (self.block_cols.len() * self.br * self.bc) as f64
    }

    /// Number of block rows.
    fn mb(&self) -> usize {
        self.block_ptr.len() - 1
    }

    /// Reconstruct the exact CSR source (pattern, values, explicit
    /// zeros; fill positions are dropped via the `src_idx` map).
    pub fn to_csr(&self) -> CsrMatrix {
        let tile = self.br * self.bc;
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = vec![0usize; self.nnz];
        let mut values = vec![0.0f64; self.nnz];
        // Two passes over the tiles: count row lengths, then fill.
        for bi in 0..self.mb() {
            let r0 = bi * self.br;
            let rh = self.br.min(self.rows - r0);
            for k in self.block_ptr[bi]..self.block_ptr[bi + 1] {
                for ii in 0..rh {
                    for jj in 0..self.bc {
                        if self.src_idx[k * tile + ii * self.bc + jj] != FILL {
                            row_ptr[r0 + ii + 1] += 1;
                        }
                    }
                }
            }
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut next = row_ptr.clone();
        for bi in 0..self.mb() {
            let r0 = bi * self.br;
            let rh = self.br.min(self.rows - r0);
            // Ascending block cols then ascending jj = ascending columns.
            for k in self.block_ptr[bi]..self.block_ptr[bi + 1] {
                let c0 = self.block_cols[k] * self.bc;
                for ii in 0..rh {
                    for jj in 0..self.bc {
                        let slot = k * tile + ii * self.bc + jj;
                        if self.src_idx[slot] != FILL {
                            let dst = next[r0 + ii];
                            next[r0 + ii] += 1;
                            col_idx[dst] = c0 + jj;
                            values[dst] = self.blocks[slot];
                        }
                    }
                }
            }
        }
        CsrMatrix::from_parts(self.rows, self.cols, row_ptr, col_idx, values)
            .expect("BCSR round-trip preserves CSR invariants")
    }

    /// Re-read values from the CSR matrix this was converted from (same
    /// pattern, possibly new values) — O(tile slots), no re-conversion.
    pub fn refresh_values(&mut self, a: &CsrMatrix) -> SparseResult<()> {
        if a.nnz() != self.nnz {
            return Err(SparseError::LengthMismatch {
                what: "BCSR refresh values",
                expected: self.nnz,
                got: a.nnz(),
            });
        }
        let vals = a.values();
        for (slot, &src) in self.src_idx.iter().enumerate() {
            if src != FILL {
                self.blocks[slot] = vals[src];
            }
        }
        Ok(())
    }

    /// The block-row-range SpMV kernel: computes every scalar row of
    /// block rows `b0..b1` and writes each result to `y[map(row)]`
    /// (identity map when `scatter` is `None`). See the module docs for
    /// why the fill arithmetic keeps results bit-identical to CSR.
    ///
    /// Caller guarantees: disjoint block-row ranges touch disjoint rows,
    /// so concurrent calls write disjoint `y` elements (scatter maps
    /// must be injective).
    pub(crate) fn spmv_block_rows(
        &self,
        b0: usize,
        b1: usize,
        x: &[f64],
        y: &SharedMutSlice<'_>,
        scatter: Option<&[usize]>,
    ) {
        // Monomorphized kernels for the block sizes the autotuner picks
        // ([`crate::autotune::BLOCK_CANDIDATES`]): constant tile
        // dimensions let the inner loops unroll completely.
        match (self.br, self.bc) {
            (2, 2) => self.spmv_block_rows_fixed::<2, 2>(b0, b1, x, y, scatter),
            (3, 3) => self.spmv_block_rows_fixed::<3, 3>(b0, b1, x, y, scatter),
            (4, 4) => self.spmv_block_rows_fixed::<4, 4>(b0, b1, x, y, scatter),
            _ => self.spmv_block_rows_generic(b0, b1, x, y, scatter),
        }
    }

    /// Fixed-size kernel: `BR`/`BC` must equal `self.br`/`self.bc`.
    /// Full blocks take an unrolled path; the ragged bottom/right edges
    /// fall through to scalar loops with the same visit order.
    fn spmv_block_rows_fixed<const BR: usize, const BC: usize>(
        &self,
        b0: usize,
        b1: usize,
        x: &[f64],
        y: &SharedMutSlice<'_>,
        scatter: Option<&[usize]>,
    ) {
        debug_assert_eq!((self.br, self.bc), (BR, BC));
        let bptr = &self.block_ptr;
        let bcols = &self.block_cols;
        let blocks = &self.blocks;
        for bi in b0..b1 {
            let r0 = bi * BR;
            let rh = BR.min(self.rows - r0);
            let mut acc = [0.0f64; BR];
            let (ks, ke) = (bptr[bi], bptr[bi + 1]);
            let tiles = blocks[ks * (BR * BC)..ke * (BR * BC)].chunks_exact(BR * BC);
            for (&bcol, tile) in bcols[ks..ke].iter().zip(tiles) {
                let c0 = bcol * BC;
                if c0 + BC <= self.cols {
                    let xs: &[f64; BC] =
                        x[c0..c0 + BC].try_into().expect("width checked");
                    for (ii, a) in acc.iter_mut().enumerate().take(rh) {
                        let mut s = *a;
                        for jj in 0..BC {
                            s += tile[ii * BC + jj] * xs[jj];
                        }
                        *a = s;
                    }
                } else {
                    // Ragged right edge: clamp the block width.
                    let w = self.cols - c0;
                    for (ii, a) in acc.iter_mut().enumerate().take(rh) {
                        let mut s = *a;
                        for jj in 0..w {
                            s += tile[ii * BC + jj] * x[c0 + jj];
                        }
                        *a = s;
                    }
                }
            }
            for (ii, &a) in acc.iter().enumerate().take(rh) {
                let row = r0 + ii;
                let idx = match scatter {
                    Some(map) => map[row],
                    None => row,
                };
                // SAFETY: disjoint block-row ranges → disjoint rows →
                // disjoint (injectively mapped) output elements.
                unsafe { y.set(idx, a) };
            }
        }
    }

    /// Arbitrary-block-size kernel, same visit order as the fixed one.
    fn spmv_block_rows_generic(
        &self,
        b0: usize,
        b1: usize,
        x: &[f64],
        y: &SharedMutSlice<'_>,
        scatter: Option<&[usize]>,
    ) {
        let tile = self.br * self.bc;
        let bptr = &self.block_ptr;
        let bcols = &self.block_cols;
        let blocks = &self.blocks;
        for bi in b0..b1 {
            let r0 = bi * self.br;
            let rh = self.br.min(self.rows - r0);
            for ii in 0..rh {
                let mut acc = 0.0f64;
                let (ks, ke) = (bptr[bi], bptr[bi + 1]);
                for (k, &bcol) in bcols[ks..ke].iter().enumerate().map(|(d, b)| (ks + d, b)) {
                    let c0 = bcol * self.bc;
                    let w = self.bc.min(self.cols - c0);
                    let base = k * tile + ii * self.bc;
                    for jj in 0..w {
                        acc += blocks[base + jj] * x[c0 + jj];
                    }
                }
                let row = r0 + ii;
                let idx = match scatter {
                    Some(map) => map[row],
                    None => row,
                };
                // SAFETY: as in the fixed kernel.
                unsafe { y.set(idx, acc) };
            }
        }
    }

    /// y = A·x into a caller-provided buffer (serial, no allocation).
    /// Bit-identical to [`CsrMatrix::matvec_into`] for finite data.
    #[inline]
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y.len(), self.rows);
        let ys = SharedMutSlice::new(y);
        self.spmv_block_rows(0, self.mb(), x, &ys, None);
    }

    /// y = A·x with an explicit thread count, splitting block rows into
    /// one contiguous chunk per thread — allocation-free, bit-identical
    /// to the serial kernel at any `threads` value.
    pub fn matvec_threaded_into(&self, x: &[f64], y: &mut [f64], threads: usize) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y.len(), self.rows);
        let ys = SharedMutSlice::new(y);
        if threads > 1 && self.rows >= PAR_SPMV_MIN_ROWS {
            threads::for_each_chunk(self.mb(), threads, |b0, b1| {
                self.spmv_block_rows(b0, b1, x, &ys, None);
            });
        } else {
            self.spmv_block_rows(0, self.mb(), x, &ys, None);
        }
    }

    /// y = A·x over the rank-local thread pool ([`threads::active`]
    /// threads), into a caller-provided buffer — the BCSR counterpart of
    /// [`CsrMatrix::matvec_par_into`].
    pub fn matvec_par_into(&self, x: &[f64], y: &mut [f64]) {
        self.matvec_threaded_into(x, y, threads::active());
    }

    /// y = A·x (allocating, validating wrapper).
    pub fn matvec(&self, x: &[f64]) -> SparseResult<Vec<f64>> {
        if x.len() != self.cols {
            return Err(SparseError::LengthMismatch {
                what: "matvec input",
                expected: self.cols,
                got: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        Ok(y)
    }

    /// Scatter SpMV for the distributed split kernels: scalar row `r`
    /// writes `y[rows_map[r]]`. `rows_map` must be injective. Threaded
    /// over block rows when warranted; bit-identical either way.
    pub(crate) fn spmv_scatter(
        &self,
        rows_map: &[usize],
        x: &[f64],
        y: &SharedMutSlice<'_>,
        threads: usize,
    ) {
        debug_assert_eq!(rows_map.len(), self.rows);
        if threads > 1 && self.rows >= PAR_SPMV_MIN_ROWS {
            threads::for_each_chunk(self.mb(), threads, |b0, b1| {
                self.spmv_block_rows(b0, b1, x, y, Some(rows_map));
            });
        } else {
            self.spmv_block_rows(0, self.mb(), x, y, Some(rows_map));
        }
    }

    /// Multi-vector block-row-range kernel: every scalar row of block
    /// rows `b0..b1` against `k` input columns (column `q` at
    /// `xs[q·x_stride..]`), each result written to
    /// `y[q·y_stride + map(row)]`. The tiles are swept once per group of
    /// [`crate::csr::MULTI_CHUNK`] columns; each column visits stored
    /// (and fill) positions in exactly the single-vector kernel's order,
    /// so per-column results are bit-identical for finite data.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spmv_block_rows_multi(
        &self,
        b0: usize,
        b1: usize,
        xs: &[f64],
        x_stride: usize,
        y: &SharedMutSlice<'_>,
        y_stride: usize,
        k: usize,
        scatter: Option<&[usize]>,
    ) {
        use crate::csr::MULTI_CHUNK;
        let tile = self.br * self.bc;
        let bptr = &self.block_ptr;
        let bcols = &self.block_cols;
        let blocks = &self.blocks;
        let mut q0 = 0;
        while q0 < k {
            let kc = (k - q0).min(MULTI_CHUNK);
            for bi in b0..b1 {
                let r0 = bi * self.br;
                let rh = self.br.min(self.rows - r0);
                for ii in 0..rh {
                    let mut acc = [0.0f64; MULTI_CHUNK];
                    let (ks, ke) = (bptr[bi], bptr[bi + 1]);
                    for (kb, &bcol) in
                        bcols[ks..ke].iter().enumerate().map(|(d, b)| (ks + d, b))
                    {
                        let c0 = bcol * self.bc;
                        let w = self.bc.min(self.cols - c0);
                        let base = kb * tile + ii * self.bc;
                        for jj in 0..w {
                            let v = blocks[base + jj];
                            let col = c0 + jj;
                            for (q, a) in acc.iter_mut().enumerate().take(kc) {
                                *a += v * xs[(q0 + q) * x_stride + col];
                            }
                        }
                    }
                    let row = r0 + ii;
                    let idx = match scatter {
                        Some(map) => map[row],
                        None => row,
                    };
                    for (q, &a) in acc.iter().enumerate().take(kc) {
                        // SAFETY: disjoint block-row ranges → disjoint
                        // rows → disjoint (injectively mapped) output
                        // elements, one per column segment.
                        unsafe { y.set((q0 + q) * y_stride + idx, a) };
                    }
                }
            }
            q0 += kc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    fn assert_bits_equal(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (p, q)) in a.iter().zip(b).enumerate() {
            assert_eq!(p.to_bits(), q.to_bits(), "element {i}: {p} vs {q}");
        }
    }

    #[test]
    fn round_trips_exactly() {
        for (seed, rows, cols) in [(1u64, 37, 41), (2, 64, 64), (3, 1, 9), (4, 130, 7)] {
            let a = generate::random_csr(rows, cols, 0.15, seed);
            for (br, bc) in [(1, 1), (2, 2), (3, 3), (4, 2), (16, 16)] {
                let b = BcsrMatrix::from_csr_with(&a, br, bc);
                assert_eq!(b.to_csr(), a, "br={br} bc={bc}");
                assert_eq!(b.nnz(), a.nnz());
            }
        }
    }

    #[test]
    fn fem_blocks_are_detected_full() {
        let a = generate::fem_block(5, 3, 9);
        let b = BcsrMatrix::from_csr(&a);
        assert_eq!(b.block_shape(), (3, 3));
        assert!((b.fill_ratio() - 1.0).abs() < 1e-12, "fill {}", b.fill_ratio());
        assert_eq!(b.n_blocks() * 9, a.nnz());
        assert_eq!(b.to_csr(), a);
    }

    #[test]
    fn matvec_bit_identical_to_csr() {
        let cases = [
            generate::fem_block(12, 3, 3), // 432 rows, full 3×3 blocks
            generate::random_diag_dominant(1000, 7, 17),
            generate::laplacian_2d(50), // 2500 rows, threaded path
        ];
        for a in &cases {
            let n = a.rows();
            let x = generate::random_vector(n, 123);
            let mut y_csr = vec![0.0; n];
            a.matvec_into(&x, &mut y_csr);
            for (br, bc) in [(3, 3), (2, 4), (1, 1)] {
                let b = BcsrMatrix::from_csr_with(a, br, bc);
                let mut y = vec![0.0; n];
                b.matvec_into(&x, &mut y);
                assert_bits_equal(&y, &y_csr);
                for threads in [1usize, 2, 4, 8] {
                    y.fill(f64::NAN);
                    b.matvec_threaded_into(&x, &mut y, threads);
                    assert_bits_equal(&y, &y_csr);
                }
            }
        }
    }

    #[test]
    fn refresh_values_tracks_csr_updates() {
        let mut a = generate::fem_block(6, 2, 31);
        let mut b = BcsrMatrix::from_csr_with(&a, 2, 2);
        for v in a.values_mut() {
            *v += 0.25;
        }
        b.refresh_values(&a).unwrap();
        assert_eq!(b.to_csr(), a);
        let bad = generate::random_csr(10, a.cols(), 0.05, 5);
        assert!(b.refresh_values(&bad).is_err());
    }

    #[test]
    fn ragged_edges_clamp_block_width() {
        // 7×5 with 3×3 blocks: bottom and right blocks are partial.
        let a = generate::random_csr(7, 5, 0.5, 99);
        let b = BcsrMatrix::from_csr_with(&a, 3, 3);
        assert_eq!(b.to_csr(), a);
        let x = generate::random_vector(5, 1);
        assert_bits_equal(&b.matvec(&x).unwrap(), &a.matvec(&x).unwrap());
    }
}
