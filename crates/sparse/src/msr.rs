//! Modified sparse row — the SPARSKIT format LISI's `SparseStruct::MSR`
//! refers to. A single pair of arrays `(val, ja)` of length `nnz + 1`
//! stores the diagonal densely in `val[0..n]` and the off-diagonal entries
//! (values in `val`, column indices in `ja`) after position `n`, with
//! `ja[0..=n]` doubling as the row pointer array (`ja[0] = n + 1`).

use crate::csr::CsrMatrix;
use crate::error::{SparseError, SparseResult};

/// A square sparse matrix in MSR form.
#[derive(Debug, Clone, PartialEq)]
pub struct MsrMatrix {
    n: usize,
    /// `val[0..n]`: diagonal; `val[n]`: unused padding; `val[n+1..]`:
    /// off-diagonal values.
    val: Vec<f64>,
    /// `ja[0..=n]`: row pointers into the off-diagonal region;
    /// `ja[n+1..]`: off-diagonal column indices.
    ja: Vec<usize>,
}

impl MsrMatrix {
    /// Build from the classic `(val, ja)` pair, validating the layout.
    pub fn from_parts(n: usize, val: Vec<f64>, ja: Vec<usize>) -> SparseResult<Self> {
        if val.len() != ja.len() {
            return Err(SparseError::LengthMismatch {
                what: "MSR val vs ja",
                expected: ja.len(),
                got: val.len(),
            });
        }
        if val.len() < n + 1 {
            return Err(SparseError::LengthMismatch {
                what: "MSR arrays",
                expected: n + 1,
                got: val.len(),
            });
        }
        if ja[0] != n + 1 {
            return Err(SparseError::MalformedPointers("MSR ja[0] must be n + 1"));
        }
        if ja[n] != val.len() {
            return Err(SparseError::MalformedPointers("MSR ja[n] must be len(val)"));
        }
        for i in 0..n {
            if ja[i + 1] < ja[i] {
                return Err(SparseError::MalformedPointers("MSR pointers must be non-decreasing"));
            }
        }
        for &col in ja.iter().skip(n + 1) {
            if col >= n {
                return Err(SparseError::IndexOutOfBounds {
                    axis: "column",
                    index: col,
                    bound: n,
                });
            }
        }
        // Off-diagonal region must not contain diagonal entries.
        for i in 0..n {
            for &col in &ja[ja[i]..ja[i + 1]] {
                if col == i {
                    return Err(SparseError::MalformedPointers(
                        "MSR off-diagonal region contains a diagonal entry",
                    ));
                }
            }
        }
        Ok(MsrMatrix { n, val, ja })
    }

    /// Matrix order (MSR is inherently square).
    pub fn order(&self) -> usize {
        self.n
    }

    /// Stored nonzeros: `n` diagonal slots plus the off-diagonal region.
    /// (MSR always stores the full diagonal, even zeros — a quirk callers
    /// converting from CSR must accept.)
    pub fn nnz_stored(&self) -> usize {
        self.n + (self.val.len() - self.n - 1)
    }

    /// Borrow `(val, ja)`.
    pub fn parts(&self) -> (&[f64], &[usize]) {
        (&self.val, &self.ja)
    }

    /// Diagonal slice.
    pub fn diagonal(&self) -> &[f64] {
        &self.val[..self.n]
    }

    /// y = A·x.
    pub fn matvec(&self, x: &[f64]) -> SparseResult<Vec<f64>> {
        if x.len() != self.n {
            return Err(SparseError::LengthMismatch {
                what: "matvec input",
                expected: self.n,
                got: x.len(),
            });
        }
        let mut y = vec![0.0; self.n];
        for i in 0..self.n {
            let mut acc = self.val[i] * x[i];
            for k in self.ja[i]..self.ja[i + 1] {
                acc += self.val[k] * x[self.ja[k]];
            }
            y[i] = acc;
        }
        Ok(y)
    }

    /// Convert from CSR. The CSR matrix must be square; missing diagonal
    /// entries become explicit zeros (MSR stores the diagonal densely).
    pub fn from_csr(a: &CsrMatrix) -> SparseResult<Self> {
        let (rows, cols) = a.shape();
        if rows != cols {
            return Err(SparseError::NotSquare { rows, cols });
        }
        let n = rows;
        let off_nnz = a.iter().filter(|&(r, c, _)| r != c).count();
        let mut val = vec![0.0f64; n + 1 + off_nnz];
        let mut ja = vec![0usize; n + 1 + off_nnz];
        ja[0] = n + 1;
        let mut pos = n + 1;
        for i in 0..n {
            let (cols_i, vals_i) = a.row(i);
            for (&c, &v) in cols_i.iter().zip(vals_i) {
                if c == i {
                    val[i] = v;
                } else {
                    val[pos] = v;
                    ja[pos] = c;
                    pos += 1;
                }
            }
            ja[i + 1] = pos;
        }
        Ok(MsrMatrix { n, val, ja })
    }

    /// Convert to CSR. Diagonal zeros are dropped (CSR stores only true
    /// nonzeros), so `from_csr ∘ to_csr` is the identity exactly when the
    /// original diagonal had no explicit zeros.
    pub fn to_csr(&self) -> CsrMatrix {
        let n = self.n;
        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx = Vec::with_capacity(self.nnz_stored());
        let mut values = Vec::with_capacity(self.nnz_stored());
        for i in 0..n {
            // Merge off-diagonal (sorted or not) with the diagonal entry,
            // emitting sorted columns. Off-diagonal order inside MSR is not
            // guaranteed, so collect and sort.
            let mut row: Vec<(usize, f64)> = (self.ja[i]..self.ja[i + 1])
                .map(|k| (self.ja[k], self.val[k]))
                .collect();
            if self.val[i] != 0.0 {
                row.push((i, self.val[i]));
            }
            row.sort_unstable_by_key(|&(c, _)| c);
            for (c, v) in row {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr[i + 1] = col_idx.len();
        }
        CsrMatrix::from_parts_unchecked(n, n, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// [ 4 1 0 ]
    /// [ 1 4 1 ]
    /// [ 0 1 4 ]
    fn tridiag_csr() -> CsrMatrix {
        CsrMatrix::from_parts(
            3,
            3,
            vec![0, 2, 5, 7],
            vec![0, 1, 0, 1, 2, 1, 2],
            vec![4.0, 1.0, 1.0, 4.0, 1.0, 1.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn csr_msr_round_trip() {
        let a = tridiag_csr();
        let m = MsrMatrix::from_csr(&a).unwrap();
        assert_eq!(m.order(), 3);
        assert_eq!(m.diagonal(), &[4.0, 4.0, 4.0]);
        assert_eq!(m.nnz_stored(), 7);
        assert_eq!(m.to_csr(), a);
    }

    #[test]
    fn matvec_matches_csr() {
        let a = tridiag_csr();
        let m = MsrMatrix::from_csr(&a).unwrap();
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(m.matvec(&x).unwrap(), a.matvec(&x).unwrap());
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn layout_validation() {
        // ja[0] wrong.
        assert!(MsrMatrix::from_parts(1, vec![1.0, 0.0], vec![0, 2]).is_err());
        // ja[n] must equal len.
        assert!(MsrMatrix::from_parts(1, vec![1.0, 0.0], vec![2, 9]).is_err());
        // Minimal valid 1x1: diagonal only.
        let m = MsrMatrix::from_parts(1, vec![5.0, 0.0], vec![2, 2]).unwrap();
        assert_eq!(m.matvec(&[2.0]).unwrap(), vec![10.0]);
        // Off-diagonal region containing a diagonal entry is rejected.
        assert!(MsrMatrix::from_parts(
            2,
            vec![1.0, 1.0, 0.0, 9.0],
            vec![3, 4, 4, 0],
        )
        .is_err());
    }

    #[test]
    fn rectangular_csr_is_rejected() {
        let a = CsrMatrix::from_parts(1, 2, vec![0, 1], vec![1], vec![1.0]).unwrap();
        assert!(MsrMatrix::from_csr(&a).is_err());
    }

    #[test]
    fn zero_diagonal_is_stored_densely_but_dropped_on_csr() {
        // [ 0 2 ]
        // [ 0 5 ]
        let a = CsrMatrix::from_parts(2, 2, vec![0, 1, 2], vec![1, 1], vec![2.0, 5.0]).unwrap();
        let m = MsrMatrix::from_csr(&a).unwrap();
        assert_eq!(m.diagonal(), &[0.0, 5.0]);
        assert_eq!(m.nnz_stored(), 3); // dense diagonal (2) + 1 off-diag
        assert_eq!(m.to_csr(), a); // zero diagonal dropped again
    }
}
