//! MatrixMarket I/O — the exchange format of the sparse-matrix community
//! and the natural way to feed external problems into the examples.
//! Supports the `matrix coordinate real {general|symmetric}` and
//! `matrix array real general` (dense vector) flavours.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::{SparseError, SparseResult};

/// Parsed MatrixMarket symmetry kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symmetry {
    /// All entries stored explicitly.
    General,
    /// Only the lower triangle stored; mirrored on read.
    Symmetric,
}

fn bad(line: usize, reason: impl Into<String>) -> SparseError {
    SparseError::BadMatrixMarket { line, reason: reason.into() }
}

/// Read a sparse matrix in MatrixMarket coordinate format from a reader.
pub fn read_matrix<R: BufRead>(reader: R) -> SparseResult<CsrMatrix> {
    let mut lines = reader.lines().enumerate();

    // Header.
    let (_, header) = lines
        .next()
        .ok_or_else(|| bad(0, "empty file"))?
        .1
        .map(|h| (0usize, h))
        .map_err(SparseError::from)?;
    let head = header.to_ascii_lowercase();
    let fields: Vec<&str> = head.split_whitespace().collect();
    if fields.len() < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(bad(1, "missing %%MatrixMarket matrix header"));
    }
    if fields[2] != "coordinate" {
        return Err(bad(1, format!("unsupported storage '{}'", fields[2])));
    }
    if fields[3] != "real" && fields[3] != "integer" {
        return Err(bad(1, format!("unsupported field type '{}'", fields[3])));
    }
    let symmetry = match fields[4] {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => return Err(bad(1, format!("unsupported symmetry '{other}'"))),
    };

    // Size line (skipping comments).
    let mut size_line = None;
    for (ln, line) in lines.by_ref() {
        let line = line.map_err(SparseError::from)?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some((ln + 1, t.to_string()));
        break;
    }
    let (size_ln, size_line) = size_line.ok_or_else(|| bad(0, "missing size line"))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>().map_err(|_| bad(size_ln, "bad size entry")))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(bad(size_ln, "size line must have rows cols nnz"));
    }
    let (rows, cols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::new(rows, cols);
    let mut seen = 0usize;
    for (ln, line) in lines {
        let line = line.map_err(SparseError::from)?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| bad(ln + 1, "missing row"))?
            .parse()
            .map_err(|_| bad(ln + 1, "bad row index"))?;
        let c: usize = it
            .next()
            .ok_or_else(|| bad(ln + 1, "missing column"))?
            .parse()
            .map_err(|_| bad(ln + 1, "bad column index"))?;
        let v: f64 = it
            .next()
            .ok_or_else(|| bad(ln + 1, "missing value"))?
            .parse()
            .map_err(|_| bad(ln + 1, "bad value"))?;
        if r == 0 || c == 0 {
            return Err(bad(ln + 1, "MatrixMarket indices are 1-based"));
        }
        coo.push(r - 1, c - 1, v)
            .map_err(|e| bad(ln + 1, e.to_string()))?;
        if symmetry == Symmetry::Symmetric && r != c {
            coo.push(c - 1, r - 1, v)
                .map_err(|e| bad(ln + 1, e.to_string()))?;
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(bad(0, format!("expected {nnz} entries, found {seen}")));
    }
    Ok(coo.to_csr())
}

/// Read a sparse matrix from a MatrixMarket file on disk.
pub fn read_matrix_file(path: impl AsRef<Path>) -> SparseResult<CsrMatrix> {
    let f = std::fs::File::open(path)?;
    read_matrix(std::io::BufReader::new(f))
}

/// Write a sparse matrix in MatrixMarket coordinate/real/general form.
pub fn write_matrix<W: Write>(w: W, a: &CsrMatrix) -> SparseResult<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by rsparse (CCA-LISI reproduction)")?;
    let (rows, cols) = a.shape();
    writeln!(w, "{rows} {cols} {}", a.nnz())?;
    for (r, c, v) in a.iter() {
        writeln!(w, "{} {} {:.17e}", r + 1, c + 1, v)?;
    }
    w.flush()?;
    Ok(())
}

/// Write a sparse matrix to a file.
pub fn write_matrix_file(path: impl AsRef<Path>, a: &CsrMatrix) -> SparseResult<()> {
    let f = std::fs::File::create(path)?;
    write_matrix(f, a)
}

/// Write a dense vector in MatrixMarket array form.
pub fn write_vector<W: Write>(w: W, v: &[f64]) -> SparseResult<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "%%MatrixMarket matrix array real general")?;
    writeln!(w, "{} 1", v.len())?;
    for x in v {
        writeln!(w, "{x:.17e}")?;
    }
    w.flush()?;
    Ok(())
}

/// Read a dense vector in MatrixMarket array form.
pub fn read_vector<R: BufRead>(reader: R) -> SparseResult<Vec<f64>> {
    let mut lines = reader.lines().enumerate();
    let (_, header) = match lines.next() {
        Some((i, l)) => (i, l.map_err(SparseError::from)?),
        None => return Err(bad(0, "empty file")),
    };
    let head = header.to_ascii_lowercase();
    if !head.starts_with("%%matrixmarket") || !head.contains("array") {
        return Err(bad(1, "expected MatrixMarket array header"));
    }
    let mut dims = None;
    let mut out = Vec::new();
    for (ln, line) in lines {
        let line = line.map_err(SparseError::from)?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        if dims.is_none() {
            let d: Vec<usize> = t
                .split_whitespace()
                .map(|x| x.parse().map_err(|_| bad(ln + 1, "bad dimension")))
                .collect::<Result<_, _>>()?;
            if d.len() != 2 || d[1] != 1 {
                return Err(bad(ln + 1, "expected 'n 1' vector dimensions"));
            }
            dims = Some(d[0]);
            out.reserve(d[0]);
        } else {
            out.push(t.parse::<f64>().map_err(|_| bad(ln + 1, "bad value"))?);
        }
    }
    let n = dims.ok_or_else(|| bad(0, "missing dimensions"))?;
    if out.len() != n {
        return Err(bad(0, format!("expected {n} values, found {}", out.len())));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn matrix_round_trips_through_text() {
        let a = generate::random_csr(9, 7, 0.25, 13);
        let mut buf = Vec::new();
        write_matrix(&mut buf, &a).unwrap();
        let back = read_matrix(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn symmetric_matrices_are_mirrored() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    3 3 3\n\
                    1 1 2.0\n\
                    2 1 -1.0\n\
                    3 3 4.0\n";
        let a = read_matrix(std::io::Cursor::new(text)).unwrap();
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(2, 2), 4.0);
        assert_eq!(a.nnz(), 4);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    \n\
                    2 2 2\n\
                    % another\n\
                    1 1 1.5\n\
                    2 2 2.5\n";
        let a = read_matrix(std::io::Cursor::new(text)).unwrap();
        assert_eq!(a.get(0, 0), 1.5);
        assert_eq!(a.get(1, 1), 2.5);
    }

    #[test]
    fn malformed_inputs_are_rejected_with_line_numbers() {
        let no_header = "1 1 1\n";
        assert!(read_matrix(std::io::Cursor::new(no_header)).is_err());

        let bad_kind = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0\n";
        assert!(read_matrix(std::io::Cursor::new(bad_kind)).is_err());

        let zero_based = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(matches!(
            read_matrix(std::io::Cursor::new(zero_based)),
            Err(SparseError::BadMatrixMarket { line: 3, .. })
        ));

        let wrong_count = "%%MatrixMarket matrix coordinate real general\n2 2 5\n1 1 1.0\n";
        assert!(read_matrix(std::io::Cursor::new(wrong_count)).is_err());

        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n9 1 1.0\n";
        assert!(read_matrix(std::io::Cursor::new(oob)).is_err());
    }

    #[test]
    fn vector_round_trips() {
        let v = generate::random_vector(17, 4);
        let mut buf = Vec::new();
        write_vector(&mut buf, &v).unwrap();
        let back = read_vector(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("rsparse_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.mtx");
        let a = generate::laplacian_2d(4);
        write_matrix_file(&path, &a).unwrap();
        let back = read_matrix_file(&path).unwrap();
        assert_eq!(back, a);
        std::fs::remove_file(&path).ok();
    }
}
