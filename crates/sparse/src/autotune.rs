//! Format autotuning: pick the storage format (CSR, SELL-C-σ, or
//! block-CSR) an operator should run its SpMV in.
//!
//! The policy is process-global like the thread count: it is read once
//! from the `RSPARSE_FORMAT` environment variable (`csr` — the default
//! and the historical behavior —, `sell`, `bcsr`, or `auto`) and can be
//! overridden programmatically with [`set_policy`], which is what the
//! LISI adapters' reserved `port.set("format", ...)` option key calls.
//!
//! Under `auto` the choice is made per matrix at plan-build time
//! (`setupMatrix`): a cheap O(nnz) scan computes row-length statistics
//! and the best dense-block fill ([`analyze`]), and a rule model
//! ([`choose`]) maps them to a format. Setting `RSPARSE_AUTOTUNE=measure`
//! replaces the model with direct micro-measurement of candidate
//! matvecs ([`choose_measured`]) — slower to plan, immune to model
//! error. Either way the decision and the converted matrix are cached
//! in the operator plan, so steady-state solves pay zero conversion
//! cost; and because every format's kernel accumulates each row in CSR
//! entry order, **the choice never changes a single result bit**.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::bcsr::BcsrMatrix;
use crate::csr::CsrMatrix;
use crate::sell::SellMatrix;
use crate::threads::SharedMutSlice;

/// A concrete storage format for SpMV kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// Compressed sparse row — the baseline every kernel is bit-compared
    /// against.
    Csr,
    /// SELL-C-σ (sliced ELLPACK, length-sorted lanes).
    Sell,
    /// Block-CSR (dense tiles over a CSR skeleton).
    Bcsr,
}

impl Format {
    /// Canonical lowercase name (`csr`, `sell`, `bcsr`).
    pub fn name(self) -> &'static str {
        match self {
            Format::Csr => "csr",
            Format::Sell => "sell",
            Format::Bcsr => "bcsr",
        }
    }
}

/// How operators pick their format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormatPolicy {
    /// Always use the given format.
    Fixed(Format),
    /// Decide per matrix from its pattern (or by measurement under
    /// `RSPARSE_AUTOTUNE=measure`).
    Auto,
}

impl FormatPolicy {
    /// Parse a policy from an env-var or `set("format", ...)` value.
    /// Case-insensitive; returns `None` for unrecognized spellings.
    pub fn parse(s: &str) -> Option<FormatPolicy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "csr" => Some(FormatPolicy::Fixed(Format::Csr)),
            "sell" | "sell-c-sigma" | "sellcs" => Some(FormatPolicy::Fixed(Format::Sell)),
            "bcsr" | "block" | "block-csr" => Some(FormatPolicy::Fixed(Format::Bcsr)),
            "auto" => Some(FormatPolicy::Auto),
            _ => None,
        }
    }

    /// Canonical lowercase name (`csr`, `sell`, `bcsr`, `auto`).
    pub fn name(self) -> &'static str {
        match self {
            FormatPolicy::Fixed(f) => f.name(),
            FormatPolicy::Auto => "auto",
        }
    }
}

/// Sentinel meaning "not yet initialized from the environment".
const POLICY_UNSET: u8 = u8::MAX;

static POLICY: AtomicU8 = AtomicU8::new(POLICY_UNSET);

fn policy_to_u8(p: FormatPolicy) -> u8 {
    match p {
        FormatPolicy::Fixed(Format::Csr) => 0,
        FormatPolicy::Fixed(Format::Sell) => 1,
        FormatPolicy::Fixed(Format::Bcsr) => 2,
        FormatPolicy::Auto => 3,
    }
}

fn policy_from_u8(v: u8) -> FormatPolicy {
    match v {
        1 => FormatPolicy::Fixed(Format::Sell),
        2 => FormatPolicy::Fixed(Format::Bcsr),
        3 => FormatPolicy::Auto,
        _ => FormatPolicy::Fixed(Format::Csr),
    }
}

/// Read the `RSPARSE_FORMAT` environment variable (unrecognized or unset
/// values mean CSR, the historical behavior).
pub fn policy_from_env() -> FormatPolicy {
    std::env::var("RSPARSE_FORMAT")
        .ok()
        .and_then(|v| FormatPolicy::parse(&v))
        .unwrap_or(FormatPolicy::Fixed(Format::Csr))
}

/// The active format policy, lazily initialized from `RSPARSE_FORMAT` on
/// first use.
#[inline]
pub fn active_policy() -> FormatPolicy {
    let raw = POLICY.load(Ordering::Relaxed);
    if raw == POLICY_UNSET {
        let p = policy_from_env();
        // A benign race: concurrent initializers compute the same value.
        POLICY.store(policy_to_u8(p), Ordering::Relaxed);
        p
    } else {
        policy_from_u8(raw)
    }
}

/// Set the format policy (overrides the environment). This is what
/// `port.set("format", ...)` installs.
pub fn set_policy(p: FormatPolicy) {
    POLICY.store(policy_to_u8(p), Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Pattern analysis and the selection model
// ---------------------------------------------------------------------------

/// Matrices smaller than this stay CSR under `auto`: conversion and
/// padding overheads cannot amortize.
pub const AUTOTUNE_MIN_ROWS: usize = 128;

/// Minimum dense-block fill for BCSR to win: below this the fill
/// arithmetic outweighs the index-load savings.
pub const BCSR_MIN_FILL: f64 = 0.66;

/// Maximum row-length coefficient of variation for SELL to win: above
/// this the slice padding outweighs the regular inner loop.
pub const SELL_MAX_CV: f64 = 0.4;

/// Square block sizes the detection scan tries, largest (best payoff)
/// first.
pub const BLOCK_CANDIDATES: [usize; 3] = [4, 3, 2];

/// Cheap O(nnz) pattern statistics driving the selection model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixStats {
    /// Row count.
    pub rows: usize,
    /// Stored entries.
    pub nnz: usize,
    /// Mean stored entries per row.
    pub mean_row_len: f64,
    /// Coefficient of variation (std-dev / mean) of the row lengths;
    /// 0.0 for perfectly uniform rows.
    pub row_len_cv: f64,
    /// Best candidate square block size (from [`BLOCK_CANDIDATES`]).
    pub block_size: usize,
    /// Dense-block fill at `block_size`: nnz / (blocks · b²).
    pub block_fill: f64,
}

/// Fill of the dense `b×b` block cover of `a`'s pattern — one stamped
/// O(nnz) pass, no allocation beyond a block-column stamp array.
fn block_fill(a: &CsrMatrix, b: usize) -> f64 {
    let rows = a.rows();
    if a.nnz() == 0 || rows == 0 {
        return 0.0;
    }
    let nb = a.cols().div_ceil(b);
    let mut stamp = vec![usize::MAX; nb];
    let mut blocks = 0usize;
    let row_ptr = a.row_ptr();
    let cols = a.col_idx();
    for bi in 0..rows.div_ceil(b) {
        for r in bi * b..((bi + 1) * b).min(rows) {
            for &c in &cols[row_ptr[r]..row_ptr[r + 1]] {
                let bcol = c / b;
                if stamp[bcol] != bi {
                    stamp[bcol] = bi;
                    blocks += 1;
                }
            }
        }
    }
    a.nnz() as f64 / (blocks * b * b) as f64
}

/// Compute [`MatrixStats`] for `a` (row-length moments plus the best
/// candidate block size by fill).
pub fn analyze(a: &CsrMatrix) -> MatrixStats {
    let rows = a.rows();
    let nnz = a.nnz();
    let row_ptr = a.row_ptr();
    let (mut mean, mut cv) = (0.0, 0.0);
    if rows > 0 {
        mean = nnz as f64 / rows as f64;
        let var = (0..rows)
            .map(|r| {
                let d = (row_ptr[r + 1] - row_ptr[r]) as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / rows as f64;
        cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
    }
    let (mut block_size, mut best_fill) = (1usize, 0.0f64);
    for &b in &BLOCK_CANDIDATES {
        let fill = block_fill(a, b);
        if fill > best_fill {
            best_fill = fill;
            block_size = b;
        }
    }
    MatrixStats { rows, nnz, mean_row_len: mean, row_len_cv: cv, block_size, block_fill: best_fill }
}

/// The rule model: map [`MatrixStats`] to a format.
///
/// * tiny or empty matrices → CSR (nothing to amortize);
/// * block fill ≥ [`BCSR_MIN_FILL`] at a block size ≥ 2 → BCSR
///   (FEM-style multi-dof assembly);
/// * row-length CV ≤ [`SELL_MAX_CV`] → SELL-C-σ (banded/stencil
///   matrices: near-uniform rows, negligible padding);
/// * otherwise → CSR (skewed row lengths defeat both).
pub fn choose_from_stats(stats: &MatrixStats) -> Format {
    if stats.rows < AUTOTUNE_MIN_ROWS || stats.nnz == 0 {
        return Format::Csr;
    }
    if stats.block_size >= 2 && stats.block_fill >= BCSR_MIN_FILL {
        return Format::Bcsr;
    }
    if stats.row_len_cv <= SELL_MAX_CV {
        return Format::Sell;
    }
    Format::Csr
}

/// Analyze `a` and apply the rule model.
pub fn choose(a: &CsrMatrix) -> Format {
    choose_from_stats(&analyze(a))
}

/// Decide by measurement instead of the model: convert to each
/// candidate format and time a few serial matvecs, keeping the fastest
/// (ties break toward CSR). Plan-time only — far costlier than
/// [`choose`], but immune to model error. Tiny matrices still short-
/// circuit to CSR.
pub fn choose_measured(a: &CsrMatrix) -> Format {
    if a.rows() < AUTOTUNE_MIN_ROWS || a.nnz() == 0 {
        return Format::Csr;
    }
    const TRIALS: usize = 3;
    let x = vec![1.0f64; a.cols()];
    let mut y = vec![0.0f64; a.rows()];
    let mut best = (Format::Csr, f64::INFINITY);
    for format in [Format::Csr, Format::Sell, Format::Bcsr] {
        let m = FormatMatrix::build(a, format);
        m.matvec_into(&x, &mut y); // warm-up
        let mut fastest = f64::INFINITY;
        for _ in 0..TRIALS {
            let t0 = std::time::Instant::now();
            m.matvec_into(&x, &mut y);
            fastest = fastest.min(t0.elapsed().as_secs_f64());
        }
        if fastest < best.1 {
            best = (format, fastest);
        }
    }
    best.0
}

/// Whether `RSPARSE_AUTOTUNE=measure` asked for measurement instead of
/// the model (read per call — plan building is rare).
pub fn measure_mode() -> bool {
    std::env::var("RSPARSE_AUTOTUNE")
        .map(|v| v.trim().eq_ignore_ascii_case("measure"))
        .unwrap_or(false)
}

/// Resolve the active policy for one matrix: fixed policies pass
/// through; `auto` runs the model (or measurement), and the autotune
/// time lands on [`probe::Counter::FormatAutotuneNs`].
pub fn plan(a: &CsrMatrix, policy: FormatPolicy) -> Format {
    match policy {
        FormatPolicy::Fixed(f) => f,
        FormatPolicy::Auto => {
            let t0 = std::time::Instant::now();
            let f = if measure_mode() { choose_measured(a) } else { choose(a) };
            probe::add(probe::Counter::FormatAutotuneNs, t0.elapsed().as_nanos() as u64);
            f
        }
    }
}

/// Bump the chosen-format counter and annotate the rank report
/// (`probe::note("format", ...)`). Call once per operator plan.
pub fn record_choice(format: Format) {
    probe::incr(match format {
        Format::Csr => probe::Counter::FormatChosenCsr,
        Format::Sell => probe::Counter::FormatChosenSell,
        Format::Bcsr => probe::Counter::FormatChosenBcsr,
    });
    probe::note("format", format.name());
}

// ---------------------------------------------------------------------------
// Format-dispatched matrix
// ---------------------------------------------------------------------------

/// A matrix stored in whichever format the plan chose, with uniform
/// SpMV entry points. All variants are bit-identical to the CSR kernels
/// for finite data at every thread count.
#[derive(Debug, Clone, PartialEq)]
pub enum FormatMatrix {
    /// CSR (kept as-is, no conversion).
    Csr(CsrMatrix),
    /// SELL-C-σ.
    Sell(SellMatrix),
    /// Block-CSR.
    Bcsr(BcsrMatrix),
}

impl FormatMatrix {
    /// Convert `a` into `format` storage (CSR clones), charging the
    /// conversion time to [`probe::Counter::FormatConversionNs`]. BCSR
    /// uses the detected best square block size.
    pub fn build(a: &CsrMatrix, format: Format) -> FormatMatrix {
        let t0 = std::time::Instant::now();
        let built = match format {
            Format::Csr => FormatMatrix::Csr(a.clone()),
            Format::Sell => FormatMatrix::Sell(SellMatrix::from_csr(a)),
            Format::Bcsr => {
                let b = analyze(a).block_size.max(2);
                FormatMatrix::Bcsr(BcsrMatrix::from_csr_with(a, b, b))
            }
        };
        probe::add(probe::Counter::FormatConversionNs, t0.elapsed().as_nanos() as u64);
        built
    }

    /// Which format this matrix is stored in.
    pub fn format(&self) -> Format {
        match self {
            FormatMatrix::Csr(_) => Format::Csr,
            FormatMatrix::Sell(_) => Format::Sell,
            FormatMatrix::Bcsr(_) => Format::Bcsr,
        }
    }

    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            FormatMatrix::Csr(m) => m.shape(),
            FormatMatrix::Sell(m) => m.shape(),
            FormatMatrix::Bcsr(m) => m.shape(),
        }
    }

    /// Stored entries (excluding any padding/fill).
    pub fn nnz(&self) -> usize {
        match self {
            FormatMatrix::Csr(m) => m.nnz(),
            FormatMatrix::Sell(m) => m.nnz(),
            FormatMatrix::Bcsr(m) => m.nnz(),
        }
    }

    /// y = A·x into a caller-provided buffer (serial, no allocation).
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        match self {
            FormatMatrix::Csr(m) => m.matvec_into(x, y),
            FormatMatrix::Sell(m) => m.matvec_into(x, y),
            FormatMatrix::Bcsr(m) => m.matvec_into(x, y),
        }
    }

    /// y = A·x with an explicit thread count (allocation-free,
    /// bit-identical to serial at any count).
    pub fn matvec_threaded_into(&self, x: &[f64], y: &mut [f64], threads: usize) {
        match self {
            FormatMatrix::Csr(m) => {
                // CSR's own par path reads the global thread count; chunk
                // explicitly to honor the caller's.
                let ys = SharedMutSlice::new(y);
                crate::threads::for_each_chunk(m.rows(), threads, |s, e| {
                    // SAFETY: disjoint chunks, reborrowed exclusively.
                    let chunk = unsafe {
                        std::slice::from_raw_parts_mut(ys.as_ptr().add(s), e - s)
                    };
                    m.spmv_chunk(s, x, chunk);
                });
            }
            FormatMatrix::Sell(m) => m.matvec_threaded_into(x, y, threads),
            FormatMatrix::Bcsr(m) => m.matvec_threaded_into(x, y, threads),
        }
    }

    /// y = A·x over the rank-local thread pool (allocation-free).
    pub fn matvec_par_into(&self, x: &[f64], y: &mut [f64]) {
        match self {
            FormatMatrix::Csr(m) => m.matvec_par_into(x, y),
            FormatMatrix::Sell(m) => m.matvec_par_into(x, y),
            FormatMatrix::Bcsr(m) => m.matvec_par_into(x, y),
        }
    }

    /// Re-read values from the (same-pattern) CSR matrix this was built
    /// from. CSR storage re-copies; SELL/BCSR replay their source maps.
    pub fn refresh_values(&mut self, a: &CsrMatrix) -> crate::error::SparseResult<()> {
        match self {
            FormatMatrix::Csr(m) => {
                if a.nnz() != m.nnz() {
                    return Err(crate::error::SparseError::LengthMismatch {
                        what: "format refresh values",
                        expected: m.nnz(),
                        got: a.nnz(),
                    });
                }
                m.values_mut().copy_from_slice(a.values());
                Ok(())
            }
            FormatMatrix::Sell(m) => m.refresh_values(a),
            FormatMatrix::Bcsr(m) => m.refresh_values(a),
        }
    }

    /// Scatter SpMV for the distributed split kernels: row `r` writes
    /// `y[rows_map[r]]` (`rows_map` injective); threaded when warranted.
    pub(crate) fn spmv_scatter(
        &self,
        rows_map: &[usize],
        x: &[f64],
        y: &SharedMutSlice<'_>,
        threads: usize,
    ) {
        match self {
            FormatMatrix::Csr(m) => {
                crate::dist::spmv_rows_threaded(m, rows_map, x, y, threads);
            }
            FormatMatrix::Sell(m) => m.spmv_scatter(rows_map, x, y, threads),
            FormatMatrix::Bcsr(m) => m.spmv_scatter(rows_map, x, y, threads),
        }
    }

    /// Multi-vector scatter SpMV: row `r` against `k` input columns
    /// (column `q` at `xs[q·x_stride..]`), each result written to
    /// `y[q·y_stride + rows_map[r]]`. One matrix sweep per
    /// [`crate::csr::MULTI_CHUNK`]-column group in every format;
    /// per-column results are bit-identical to [`Self::spmv_scatter`] at
    /// any thread count (threads get disjoint row/slice/block-row
    /// chunks, exactly as in the single-vector scatter).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spmv_scatter_multi(
        &self,
        rows_map: &[usize],
        xs: &[f64],
        x_stride: usize,
        y: &SharedMutSlice<'_>,
        y_stride: usize,
        k: usize,
        threads: usize,
    ) {
        match self {
            FormatMatrix::Csr(m) => {
                crate::dist::spmv_rows_multi_threaded(
                    m, rows_map, xs, x_stride, y, y_stride, k, threads,
                );
            }
            FormatMatrix::Sell(m) => {
                let kernel = |s0: usize, s1: usize| {
                    m.spmv_slices_multi(s0, s1, xs, x_stride, y, y_stride, k, Some(rows_map));
                };
                if threads > 1 && m.rows() >= 2048 {
                    crate::threads::for_each_chunk(m.n_slices(), threads, kernel);
                } else {
                    kernel(0, m.n_slices());
                }
            }
            FormatMatrix::Bcsr(m) => {
                let mb = m.rows().div_ceil(m.block_shape().0);
                let kernel = |b0: usize, b1: usize| {
                    m.spmv_block_rows_multi(b0, b1, xs, x_stride, y, y_stride, k, Some(rows_map));
                };
                if threads > 1 && m.rows() >= 2048 {
                    crate::threads::for_each_chunk(mb, threads, kernel);
                } else {
                    kernel(0, mb);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn policy_parses_all_spellings() {
        assert_eq!(FormatPolicy::parse("csr"), Some(FormatPolicy::Fixed(Format::Csr)));
        assert_eq!(FormatPolicy::parse(""), Some(FormatPolicy::Fixed(Format::Csr)));
        assert_eq!(FormatPolicy::parse("SELL"), Some(FormatPolicy::Fixed(Format::Sell)));
        assert_eq!(FormatPolicy::parse("sell-c-sigma"), Some(FormatPolicy::Fixed(Format::Sell)));
        assert_eq!(FormatPolicy::parse("bcsr"), Some(FormatPolicy::Fixed(Format::Bcsr)));
        assert_eq!(FormatPolicy::parse("block"), Some(FormatPolicy::Fixed(Format::Bcsr)));
        assert_eq!(FormatPolicy::parse(" auto "), Some(FormatPolicy::Auto));
        assert_eq!(FormatPolicy::parse("bogus"), None);
        for p in [
            FormatPolicy::Fixed(Format::Csr),
            FormatPolicy::Fixed(Format::Sell),
            FormatPolicy::Fixed(Format::Bcsr),
            FormatPolicy::Auto,
        ] {
            assert_eq!(FormatPolicy::parse(p.name()), Some(p));
        }
    }

    #[test]
    fn model_picks_the_expected_family() {
        // Dense band: every 2×2 tile inside the band is full → BCSR.
        assert_eq!(choose(&generate::banded(600, 4, 1)), Format::Bcsr);
        // 5-point stencil: near-uniform rows but scattered entries (low
        // block fill) → SELL.
        assert_eq!(choose(&generate::laplacian_2d(40)), Format::Sell);
        // FEM blocks: full 3×3 tiles → BCSR.
        let fem = generate::fem_block(12, 3, 2);
        let stats = analyze(&fem);
        assert_eq!(stats.block_size, 3);
        assert!(stats.block_fill > 0.9, "fill {}", stats.block_fill);
        assert_eq!(choose(&fem), Format::Bcsr);
        // Skewed row lengths → CSR.
        assert_eq!(choose(&generate::skewed_csr(600, 600, 3, 80, 3)), Format::Csr);
        // Tiny matrices never convert.
        assert_eq!(choose(&generate::banded(32, 2, 4)), Format::Csr);
    }

    #[test]
    fn measured_choice_is_a_valid_format_and_small_stays_csr() {
        let a = generate::banded(300, 3, 9);
        let f = choose_measured(&a);
        assert!(matches!(f, Format::Csr | Format::Sell | Format::Bcsr));
        assert_eq!(choose_measured(&generate::banded(16, 1, 2)), Format::Csr);
    }

    #[test]
    fn format_matrix_round_trips_and_refreshes() {
        let mut a = generate::laplacian_2d(20);
        let x = generate::random_vector(a.cols(), 5);
        let mut y_csr = vec![0.0; a.rows()];
        a.matvec_into(&x, &mut y_csr);
        for format in [Format::Csr, Format::Sell, Format::Bcsr] {
            let mut m = FormatMatrix::build(&a, format);
            assert_eq!(m.format(), format);
            assert_eq!(m.shape(), a.shape());
            assert_eq!(m.nnz(), a.nnz());
            let mut y = vec![0.0; a.rows()];
            m.matvec_into(&x, &mut y);
            for (p, q) in y.iter().zip(&y_csr) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
            for v in a.values_mut() {
                *v *= 2.0;
            }
            m.refresh_values(&a).unwrap();
            m.matvec_into(&x, &mut y);
            for (p, q) in y.iter().zip(&y_csr) {
                assert_eq!(p.to_bits(), (q * 2.0).to_bits());
            }
            for v in a.values_mut() {
                *v /= 2.0;
            }
        }
    }

    #[test]
    fn stats_are_sane_on_degenerate_matrices() {
        let empty = CsrMatrix::from_parts(3, 3, vec![0, 0, 0, 0], vec![], vec![]).unwrap();
        let stats = analyze(&empty);
        assert_eq!(stats.nnz, 0);
        assert_eq!(choose_from_stats(&stats), Format::Csr);
        let zero = CsrMatrix::from_parts(0, 0, vec![0], vec![], vec![]).unwrap();
        assert_eq!(choose(&zero), Format::Csr);
    }
}
