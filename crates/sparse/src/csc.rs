//! Compressed sparse column — the column-oriented twin of CSR, used by the
//! direct solver (`lisi-direct`), whose left-looking factorization works
//! column by column exactly like SuperLU.

use crate::csr::CsrMatrix;
use crate::error::{SparseError, SparseResult};

/// A sparse matrix in CSC form: `col_ptr` has `cols + 1` monotone entries;
/// row indices are strictly increasing within each column.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Build from raw parts, validating all invariants.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> SparseResult<Self> {
        if col_ptr.len() != cols + 1 {
            return Err(SparseError::LengthMismatch {
                what: "CSC col_ptr",
                expected: cols + 1,
                got: col_ptr.len(),
            });
        }
        if col_ptr[0] != 0 {
            return Err(SparseError::MalformedPointers("col_ptr[0] must be 0"));
        }
        if *col_ptr.last().expect("len >= 1") != values.len() {
            return Err(SparseError::MalformedPointers("col_ptr[cols] must equal nnz"));
        }
        if row_idx.len() != values.len() {
            return Err(SparseError::LengthMismatch {
                what: "CSC row_idx",
                expected: values.len(),
                got: row_idx.len(),
            });
        }
        for w in col_ptr.windows(2) {
            if w[1] < w[0] {
                return Err(SparseError::MalformedPointers("col_ptr must be non-decreasing"));
            }
        }
        for c in 0..cols {
            let seg = &row_idx[col_ptr[c]..col_ptr[c + 1]];
            for (k, &r) in seg.iter().enumerate() {
                if r >= rows {
                    return Err(SparseError::IndexOutOfBounds {
                        axis: "row",
                        index: r,
                        bound: rows,
                    });
                }
                if k > 0 && seg[k - 1] >= r {
                    return Err(SparseError::MalformedPointers(
                        "row indices must be strictly increasing within a column",
                    ));
                }
            }
        }
        Ok(CscMatrix { rows, cols, col_ptr, row_idx, values })
    }

    pub(crate) fn from_parts_unchecked(
        rows: usize,
        cols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(col_ptr.len(), cols + 1);
        debug_assert_eq!(row_idx.len(), values.len());
        CscMatrix { rows, cols, col_ptr, row_idx, values }
    }

    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column pointer array.
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row index array.
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// Value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The `(row_idx, values)` slices of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// y = A·x via column sweeps (gather-free scatter kernel).
    pub fn matvec(&self, x: &[f64]) -> SparseResult<Vec<f64>> {
        if x.len() != self.cols {
            return Err(SparseError::LengthMismatch {
                what: "matvec input",
                expected: self.cols,
                got: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (j, &xj) in x.iter().enumerate() {
            if xj != 0.0 {
                let (rows, vals) = self.col(j);
                for (&r, &v) in rows.iter().zip(vals) {
                    y[r] += v * xj;
                }
            }
        }
        Ok(y)
    }

    /// Convert to CSR.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.rows + 1];
        for &r in &self.row_idx {
            counts[r + 1] += 1;
        }
        for i in 0..self.rows {
            counts[i + 1] += counts[i];
        }
        let mut next = counts.clone();
        let nnz = self.nnz();
        let mut col_idx = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        for j in 0..self.cols {
            let (rows, vals) = self.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                let slot = next[r];
                col_idx[slot] = j;
                values[slot] = v;
                next[r] += 1;
            }
        }
        CsrMatrix::from_parts_unchecked(self.rows, self.cols, counts, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// [ 1 0 ]
    /// [ 2 3 ]
    fn sample() -> CscMatrix {
        CscMatrix::from_parts(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1.0, 2.0, 3.0]).unwrap()
    }

    #[test]
    fn validation_rejects_malformed_inputs() {
        assert!(CscMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CscMatrix::from_parts(1, 1, vec![1, 1], vec![], vec![]).is_err());
        assert!(CscMatrix::from_parts(1, 1, vec![0, 2], vec![0], vec![1.0]).is_err());
        assert!(CscMatrix::from_parts(2, 1, vec![0, 2], vec![1, 0], vec![1.0, 1.0]).is_err());
        assert!(CscMatrix::from_parts(1, 1, vec![0, 1], vec![4], vec![1.0]).is_err());
    }

    #[test]
    fn matvec_matches_dense() {
        let a = sample();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![1.0, 5.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn csc_csr_round_trip() {
        let a = sample();
        let csr = a.to_csr();
        assert_eq!(csr.get(1, 0), 2.0);
        assert_eq!(csr.get(0, 1), 0.0);
        let back = csr.to_csc();
        assert_eq!(back, a);
    }

    #[test]
    fn column_access() {
        let a = sample();
        assert_eq!(a.col(0).0, &[0, 1]);
        assert_eq!(a.col(1).1, &[3.0]);
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.shape(), (2, 2));
    }
}
