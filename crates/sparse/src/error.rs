//! Error type for sparse-matrix construction, conversion, kernels and I/O.

use std::fmt;

/// Result alias for sparse operations.
pub type SparseResult<T> = Result<T, SparseError>;

/// Errors raised by format construction/validation, conversions, kernels
/// and MatrixMarket I/O.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// Array lengths passed to a constructor are mutually inconsistent.
    LengthMismatch {
        /// Human-readable description of what mismatched.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// A row or column index is outside the matrix dimensions.
    IndexOutOfBounds {
        /// Which axis the offending index addresses.
        axis: &'static str,
        /// The offending index value.
        index: usize,
        /// The exclusive bound it violated.
        bound: usize,
    },
    /// A CSR/CSC pointer array is not monotonically non-decreasing or has
    /// the wrong first/last entry.
    MalformedPointers(&'static str),
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Left operand shape.
        left: (usize, usize),
        /// Right operand shape.
        right: (usize, usize),
    },
    /// The matrix has a zero (or structurally missing) pivot where one is
    /// required (diagonal scaling, triangular solve, factorization).
    ZeroPivot {
        /// Row of the offending pivot.
        row: usize,
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Actual shape.
        rows: usize,
        /// Actual shape.
        cols: usize,
    },
    /// MatrixMarket parsing failed.
    BadMatrixMarket {
        /// Line number (1-based) where parsing failed; 0 for header issues.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// An underlying I/O error (message-only so the error stays `Clone`).
    Io(String),
    /// A VBR block partition is invalid.
    BadBlockPartition(String),
    /// Distributed operation failure (wraps a communication error).
    Comm(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::LengthMismatch { what, expected, got } => {
                write!(f, "{what}: expected length {expected}, got {got}")
            }
            SparseError::IndexOutOfBounds { axis, index, bound } => {
                write!(f, "{axis} index {index} out of bounds (< {bound} required)")
            }
            SparseError::MalformedPointers(why) => write!(f, "malformed pointer array: {why}"),
            SparseError::ShapeMismatch { left, right } => write!(
                f,
                "shape mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            SparseError::ZeroPivot { row } => write!(f, "zero pivot in row {row}"),
            SparseError::NotSquare { rows, cols } => {
                write!(f, "operation requires a square matrix, got {rows}x{cols}")
            }
            SparseError::BadMatrixMarket { line, reason } => {
                write!(f, "MatrixMarket parse error at line {line}: {reason}")
            }
            SparseError::Io(msg) => write!(f, "I/O error: {msg}"),
            SparseError::BadBlockPartition(msg) => write!(f, "bad block partition: {msg}"),
            SparseError::Comm(msg) => write!(f, "communication error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

impl From<rcomm::CommError> for SparseError {
    fn from(e: rcomm::CommError) -> Self {
        SparseError::Comm(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_key_facts() {
        let e = SparseError::LengthMismatch { what: "values", expected: 5, got: 4 };
        assert!(e.to_string().contains("values"));
        let e = SparseError::IndexOutOfBounds { axis: "column", index: 10, bound: 5 };
        assert!(e.to_string().contains("column index 10"));
        let e = SparseError::ShapeMismatch { left: (2, 3), right: (4, 5) };
        assert!(e.to_string().contains("2x3"));
        let e = SparseError::ZeroPivot { row: 7 };
        assert!(e.to_string().contains("row 7"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: SparseError = io.into();
        assert!(matches!(e, SparseError::Io(_)));
    }
}
