//! Level-set analysis and level-scheduled execution for sparse triangular
//! solves.
//!
//! A triangular solve `L·z = r` (or `U·z = r`) is sequential row-by-row,
//! but row `i` only depends on the rows its off-diagonal columns point at.
//! Grouping rows by the length of their longest dependency chain — their
//! **level** — yields a schedule in which all rows of one level are
//! mutually independent and may run in parallel; levels execute in order
//! with a barrier between them.
//!
//! The analysis walks the pattern once (`O(nnz)`), is done at
//! preconditioner setup, and the resulting [`LevelSchedule`] is cached
//! alongside the factor and reused on every apply. Execution is
//! bit-deterministic for any thread count: each row performs the identical
//! arithmetic (same entry order as the serial sweep) and writes only its
//! own output element, so only completion order varies.

use crate::csr::CsrMatrix;
use crate::threads::SharedMutSlice;

/// Minimum rows for a schedule to be worth executing in parallel at all.
const MIN_PAR_ROWS: usize = 4096;

/// Required average level width per extra thread: narrower schedules spend
/// more on barriers than they gain from fan-out.
const MIN_AVG_WIDTH_PER_THREAD: usize = 8;

/// Which triangle the schedule was built for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Triangle {
    /// Forward sweep: dependencies are columns `< i`.
    Lower,
    /// Backward sweep: dependencies are columns `> i`.
    Upper,
}

/// A cached level schedule: rows grouped by dependency depth.
///
/// `rows[level_ptr[l]..level_ptr[l + 1]]` are the rows of level `l`, in
/// ascending row order. For [`Triangle::Lower`] levels run first-to-last
/// in forward row order; for [`Triangle::Upper`] the levels were computed
/// from the reversed recurrence, so running them first-to-last performs
/// the backward sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelSchedule {
    triangle: Triangle,
    n: usize,
    level_ptr: Vec<usize>,
    rows: Vec<usize>,
    max_width: usize,
}

impl LevelSchedule {
    /// Build a schedule from per-row dependency levels (`level[i]` ≥ 1).
    fn from_levels(triangle: Triangle, levels: Vec<usize>, n_levels: usize) -> Self {
        let n = levels.len();
        let mut counts = vec![0usize; n_levels + 1];
        for &l in &levels {
            counts[l] += 1;
        }
        let mut level_ptr = vec![0usize; n_levels + 1];
        for l in 1..=n_levels {
            level_ptr[l] = level_ptr[l - 1] + counts[l];
        }
        let mut next = level_ptr.clone();
        let mut rows = vec![0usize; n];
        // Ascending row iteration ⇒ rows within a level stay ascending.
        for (i, &l) in levels.iter().enumerate() {
            rows[next[l - 1]] = i;
            next[l - 1] += 1;
        }
        let max_width =
            level_ptr.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
        let sched = LevelSchedule { triangle, n, level_ptr, rows, max_width };
        sched.record_histogram();
        sched
    }

    /// Level analysis of the strict lower triangle of `mat`'s pattern:
    /// entries with column ≥ row are ignored, so the same matrix works
    /// whether it stores a pure strict-lower factor, a lower factor with
    /// diagonal, or a combined LU on one pattern.
    pub fn lower(mat: &CsrMatrix) -> Self {
        let n = mat.rows();
        let mut levels = vec![0usize; n];
        let mut n_levels = 0usize;
        for i in 0..n {
            let (cols, _) = mat.row(i);
            let mut depth = 0usize;
            for &c in cols {
                if c >= i {
                    break; // columns sorted ascending
                }
                depth = depth.max(levels[c]);
            }
            levels[i] = depth + 1;
            n_levels = n_levels.max(levels[i]);
        }
        Self::from_levels(Triangle::Lower, levels, n_levels)
    }

    /// Level analysis of the strict upper triangle of `mat`'s pattern
    /// (entries with column ≤ row ignored), for the backward sweep.
    pub fn upper(mat: &CsrMatrix) -> Self {
        let n = mat.rows();
        let mut levels = vec![0usize; n];
        let mut n_levels = 0usize;
        for i in (0..n).rev() {
            let (cols, _) = mat.row(i);
            let mut depth = 0usize;
            for &c in cols {
                if c > i {
                    depth = depth.max(levels[c]);
                }
            }
            levels[i] = depth + 1;
            n_levels = n_levels.max(levels[i]);
        }
        Self::from_levels(Triangle::Upper, levels, n_levels)
    }

    /// Which triangle this schedule describes.
    pub fn triangle(&self) -> Triangle {
        self.triangle
    }

    /// Number of rows covered.
    pub fn n_rows(&self) -> usize {
        self.n
    }

    /// Number of levels (the critical-path length of the solve).
    pub fn levels(&self) -> usize {
        self.level_ptr.len() - 1
    }

    /// Widest level (peak exploitable parallelism).
    pub fn max_width(&self) -> usize {
        self.max_width
    }

    /// Histogram of level widths over fixed log-ish buckets
    /// `[1, 2–7, 8–31, 32–127, ≥128]` — the shape Table-1-style breakdowns
    /// report to explain where threading can and cannot help.
    pub fn width_histogram(&self) -> [usize; 5] {
        let mut hist = [0usize; 5];
        for w in self.level_ptr.windows(2) {
            hist[Self::width_bucket(w[1] - w[0])] += 1;
        }
        hist
    }

    fn width_bucket(width: usize) -> usize {
        match width {
            0..=1 => 0,
            2..=7 => 1,
            8..=31 => 2,
            32..=127 => 3,
            _ => 4,
        }
    }

    /// Record the per-level width histogram into the probe counters (done
    /// once, at schedule construction — never on the apply hot path).
    fn record_histogram(&self) {
        use probe::Counter as C;
        const BUCKETS: [probe::Counter; 5] = [
            C::SptrsvLevelWidth1,
            C::SptrsvLevelWidth2to7,
            C::SptrsvLevelWidth8to31,
            C::SptrsvLevelWidth32to127,
            C::SptrsvLevelWidth128Plus,
        ];
        for (bucket, &count) in BUCKETS.iter().zip(self.width_histogram().iter()) {
            if count > 0 {
                probe::add(*bucket, count as u64);
            }
        }
    }

    /// The serial-fallback heuristic: is fan-out across `threads` expected
    /// to beat the serial sweep? Requires enough total rows to amortize
    /// the dispatch and enough average level width to amortize the
    /// per-level barrier. A 1-D chain (one row per level) always says no;
    /// the 200×200 five-point mesh (≈100 rows/level) says yes for the
    /// thread counts a node can offer.
    pub fn parallel_worthwhile(&self, threads: usize) -> bool {
        threads > 1
            && self.n >= MIN_PAR_ROWS
            && self.n / self.levels().max(1) >= MIN_AVG_WIDTH_PER_THREAD * threads
    }

    /// Execute `f(row)` for every row, honoring level order. With
    /// `threads > 1` the rows of each level are split into contiguous
    /// chunks across the pool with a spin barrier between levels; serially
    /// (or when the pool is busy) rows run in schedule order. Either way
    /// each row's arithmetic is identical, so results are bit-equal.
    ///
    /// Returns the number of threads that actually executed (1 if the
    /// parallel path was unavailable).
    pub fn run<F>(&self, threads: usize, f: F) -> usize
    where
        F: Fn(usize) + Sync,
    {
        // Per-level sweep latencies feed the `sptrsv_level` histogram.
        // Pool threads carry no rank, so durations are collected here and
        // recorded from the calling (ranked) thread after the broadcast.
        let timing = probe::hist::active();
        let level_ns: std::sync::Mutex<Vec<u64>> = std::sync::Mutex::new(Vec::new());
        if threads > 1 {
            let barrier = rayon::pool::SpinBarrier::new(threads);
            let n_levels = self.levels();
            let ran = rayon::pool::try_broadcast(threads, |tid| {
                let mut tick = (timing && tid == 0).then(std::time::Instant::now);
                for l in 0..n_levels {
                    let lo = self.level_ptr[l];
                    let hi = self.level_ptr[l + 1];
                    let width = hi - lo;
                    let chunk = width.div_ceil(threads);
                    let start = (lo + tid * chunk).min(hi);
                    let end = (start + chunk).min(hi);
                    for &row in &self.rows[start..end] {
                        f(row);
                    }
                    if l + 1 < n_levels {
                        barrier.wait();
                    }
                    if let Some(prev) = tick.take() {
                        // Barrier-to-barrier on thread 0 ≈ the level's
                        // wall-clock (all peers have arrived).
                        level_ns
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push(prev.elapsed().as_nanos() as u64);
                        tick = Some(std::time::Instant::now());
                    }
                }
            });
            if ran {
                self.record_level_latencies(&level_ns);
                return threads;
            }
        }
        if timing {
            for w in self.level_ptr.windows(2) {
                let t0 = std::time::Instant::now();
                for &row in &self.rows[w[0]..w[1]] {
                    f(row);
                }
                probe::hist::record_ns(
                    probe::hist::Hist::SptrsvLevel,
                    t0.elapsed().as_nanos() as u64,
                );
            }
        } else {
            for &row in &self.rows {
                f(row);
            }
        }
        1
    }

    /// Flush durations gathered on pool thread 0 into this (ranked)
    /// thread's recorder.
    fn record_level_latencies(&self, level_ns: &std::sync::Mutex<Vec<u64>>) {
        let ns = level_ns.lock().unwrap_or_else(|e| e.into_inner());
        for &d in ns.iter() {
            probe::hist::record_ns(probe::hist::Hist::SptrsvLevel, d);
        }
    }
}

/// Scheduled sparse triangular solve `L·x = b` on a lower-triangular CSR
/// matrix (diagonal stored last per row unless `unit_diag`). Exposed for
/// tests, benches and custom factors; the preconditioners drive
/// [`LevelSchedule::run`] directly with their own row kernels.
///
/// Row arithmetic matches the serial forward sweep entry-for-entry, so the
/// result is bit-identical at every thread count. Returns the number of
/// threads actually used (1 when the schedule fell back to serial).
pub fn sptrsv_lower_scheduled(
    mat: &CsrMatrix,
    sched: &LevelSchedule,
    unit_diag: bool,
    b: &[f64],
    x: &mut [f64],
    threads: usize,
) -> usize {
    debug_assert_eq!(sched.triangle(), Triangle::Lower);
    debug_assert_eq!(b.len(), mat.rows());
    debug_assert_eq!(x.len(), mat.rows());
    let xs = SharedMutSlice::new(x);
    sched.run(threads, |i| {
        let (cols, vals) = mat.row(i);
        let mut acc = b[i];
        let mut diag = 1.0;
        for (&c, &v) in cols.iter().zip(vals) {
            if c < i {
                // SAFETY: row c is in an earlier level, fully written
                // before this level's barrier released us.
                acc -= v * unsafe { xs.get(c) };
            } else if c == i {
                diag = v;
            }
        }
        let xi = if unit_diag { acc } else { acc / diag };
        // SAFETY: each row is executed exactly once; x[i] is ours alone.
        unsafe { xs.set(i, xi) };
    })
}

/// Scheduled sparse triangular solve `U·x = b` on an upper-triangular CSR
/// matrix (diagonal stored first per row unless `unit_diag`); the backward
/// counterpart of [`sptrsv_lower_scheduled`]. Returns the number of threads
/// actually used.
pub fn sptrsv_upper_scheduled(
    mat: &CsrMatrix,
    sched: &LevelSchedule,
    unit_diag: bool,
    b: &[f64],
    x: &mut [f64],
    threads: usize,
) -> usize {
    debug_assert_eq!(sched.triangle(), Triangle::Upper);
    debug_assert_eq!(b.len(), mat.rows());
    debug_assert_eq!(x.len(), mat.rows());
    let xs = SharedMutSlice::new(x);
    sched.run(threads, |i| {
        let (cols, vals) = mat.row(i);
        let mut acc = b[i];
        let mut diag = 1.0;
        for (&c, &v) in cols.iter().zip(vals) {
            if c > i {
                // SAFETY: row c sits in an earlier (deeper) level.
                acc -= v * unsafe { xs.get(c) };
            } else if c == i {
                diag = v;
            }
        }
        let xi = if unit_diag { acc } else { acc / diag };
        // SAFETY: x[i] is written only by row i's executor.
        unsafe { xs.set(i, xi) };
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    fn serial_lower(mat: &CsrMatrix, unit_diag: bool, b: &[f64]) -> Vec<f64> {
        let n = mat.rows();
        let mut x = vec![0.0; n];
        for i in 0..n {
            let (cols, vals) = mat.row(i);
            let mut acc = b[i];
            let mut diag = 1.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c < i {
                    acc -= v * x[c];
                } else if c == i {
                    diag = v;
                }
            }
            x[i] = if unit_diag { acc } else { acc / diag };
        }
        x
    }

    fn lower_laplacian_factor() -> CsrMatrix {
        // Lower triangle (with diagonal) of a 2-D Laplacian: a realistic
        // multi-level pattern.
        let a = generate::laplacian_2d(9);
        let mut coo = crate::coo::CooMatrix::new(a.rows(), a.cols());
        for (r, c, v) in a.iter() {
            if c <= r {
                coo.push(r, c, v).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn lower_levels_respect_dependencies() {
        let l = lower_laplacian_factor();
        let sched = LevelSchedule::lower(&l);
        // Every dependency must live in a strictly earlier level.
        let mut level_of = vec![0usize; l.rows()];
        for lvl in 0..sched.levels() {
            for &r in &sched.rows[sched.level_ptr[lvl]..sched.level_ptr[lvl + 1]] {
                level_of[r] = lvl;
            }
        }
        for i in 0..l.rows() {
            for &c in l.row(i).0 {
                if c < i {
                    assert!(level_of[c] < level_of[i], "row {i} dep {c}");
                }
            }
        }
        // All rows scheduled exactly once.
        let mut seen = sched.rows.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..l.rows()).collect::<Vec<_>>());
        assert_eq!(sched.width_histogram().iter().sum::<usize>(), sched.levels());
    }

    #[test]
    fn scheduled_lower_solve_is_bit_identical_to_serial() {
        let l = lower_laplacian_factor();
        let sched = LevelSchedule::lower(&l);
        let b = generate::random_vector(l.rows(), 11);
        let expect = serial_lower(&l, false, &b);
        for threads in [1usize, 2, 4] {
            let mut x = vec![0.0; l.rows()];
            sptrsv_lower_scheduled(&l, &sched, false, &b, &mut x, threads);
            assert_eq!(x, expect, "threads = {threads}");
        }
    }

    #[test]
    fn upper_solve_matches_transpose_reference() {
        let l = lower_laplacian_factor();
        let u = l.transpose();
        let sched = LevelSchedule::upper(&u);
        let b = generate::random_vector(u.rows(), 3);
        // Reference: solve Lᵀx = b via the serial backward recurrence.
        let n = u.rows();
        let mut expect = vec![0.0; n];
        for i in (0..n).rev() {
            let (cols, vals) = u.row(i);
            let mut acc = b[i];
            let mut diag = 1.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c > i {
                    acc -= v * expect[c];
                } else if c == i {
                    diag = v;
                }
            }
            expect[i] = acc / diag;
        }
        for threads in [1usize, 3] {
            let mut x = vec![0.0; n];
            sptrsv_upper_scheduled(&u, &sched, false, &b, &mut x, threads);
            assert_eq!(x, expect, "threads = {threads}");
        }
    }

    #[test]
    fn chain_pattern_is_never_worthwhile() {
        // 1-D Laplacian lower triangle: one row per level.
        let a = generate::laplacian_1d(5000);
        let mut coo = crate::coo::CooMatrix::new(a.rows(), a.cols());
        for (r, c, v) in a.iter() {
            if c <= r {
                coo.push(r, c, v).unwrap();
            }
        }
        let l = coo.to_csr();
        let sched = LevelSchedule::lower(&l);
        assert_eq!(sched.levels(), 5000);
        assert!(!sched.parallel_worthwhile(4));
        // Diagonal-only pattern: a single level, fully parallel.
        let d = CsrMatrix::identity(5000);
        let sd = LevelSchedule::lower(&d);
        assert_eq!(sd.levels(), 1);
        assert_eq!(sd.max_width(), 5000);
        assert!(sd.parallel_worthwhile(4));
    }
}
