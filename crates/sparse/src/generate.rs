//! Reproducible test-matrix generators. Everything is seeded with a plain
//! `u64` and uses a local xorshift generator, so tests and benches are
//! deterministic without dragging `rand` into the library's dependency
//! surface.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

/// Minimal xorshift64* PRNG — deterministic, seedable, dependency-free.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeded generator (seed 0 is remapped — xorshift's fixed point).
    pub fn new(seed: u64) -> Self {
        XorShift64 { state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in [0, bound).
    pub fn next_below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Random sparse matrix with approximately `density · rows · cols` entries
/// uniform in (−1, 1); duplicates collapse via COO summing.
pub fn random_csr(rows: usize, cols: usize, density: f64, seed: u64) -> CsrMatrix {
    let mut rng = XorShift64::new(seed);
    let target = ((rows * cols) as f64 * density).ceil() as usize;
    let mut coo = CooMatrix::new(rows, cols);
    for _ in 0..target {
        let r = rng.next_below(rows);
        let c = rng.next_below(cols);
        let v = 2.0 * rng.next_f64() - 1.0;
        coo.push(r, c, v).expect("bounds by construction");
    }
    coo.to_csr()
}

/// Random strictly diagonally dominant matrix (every iterative method and
/// the ILU factorizations are guaranteed to behave): off-diagonal entries
/// uniform in (−1, 1), diagonal set to (row abs-sum + 1).
pub fn random_diag_dominant(n: usize, off_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = XorShift64::new(seed);
    let mut coo = CooMatrix::new(n, n);
    let mut row_sums = vec![0.0f64; n];
    for (i, row_sum) in row_sums.iter_mut().enumerate() {
        for _ in 0..off_per_row {
            let j = rng.next_below(n);
            if j != i {
                let v = 2.0 * rng.next_f64() - 1.0;
                coo.push(i, j, v).expect("bounds");
                *row_sum += v.abs();
            }
        }
    }
    for (i, &row_sum) in row_sums.iter().enumerate() {
        coo.push(i, i, row_sum + 1.0).expect("bounds");
    }
    coo.to_csr()
}

/// Random symmetric positive definite matrix: S = B + Bᵀ with boosted
/// diagonal, guaranteed SPD by diagonal dominance with positive diagonal.
pub fn random_spd(n: usize, off_per_row: usize, seed: u64) -> CsrMatrix {
    let b = random_csr(n, n, off_per_row as f64 / n as f64, seed);
    let bt = b.transpose();
    let sym = crate::ops::add(0.5, &b, 0.5, &bt).expect("shapes match");
    // Boost the diagonal above the off-diagonal row sums.
    let mut coo = sym.to_coo();
    let mut row_sums = vec![0.0f64; n];
    for (r, c, v) in sym.iter() {
        if r != c {
            row_sums[r] += v.abs();
        }
    }
    for (i, &s) in row_sums.iter().enumerate() {
        let d = sym.get(i, i);
        coo.push(i, i, s + 1.0 - d).expect("bounds");
    }
    coo.to_csr()
}

/// 1-D Laplacian tridiag(−1, 2, −1) of order `n`.
pub fn laplacian_1d(n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 2.0).expect("bounds");
        if i > 0 {
            coo.push(i, i - 1, -1.0).expect("bounds");
        }
        if i + 1 < n {
            coo.push(i, i + 1, -1.0).expect("bounds");
        }
    }
    coo.to_csr()
}

/// 2-D 5-point Laplacian on an `m×m` interior grid (order `m²`,
/// `nnz = 5m² − 4m`) — the paper's coefficient-matrix family before the
/// convection term is added.
pub fn laplacian_2d(m: usize) -> CsrMatrix {
    let n = m * m;
    let mut coo = CooMatrix::new(n, n);
    let idx = |i: usize, j: usize| i * m + j;
    for i in 0..m {
        for j in 0..m {
            let k = idx(i, j);
            coo.push(k, k, 4.0).expect("bounds");
            if i > 0 {
                coo.push(k, idx(i - 1, j), -1.0).expect("bounds");
            }
            if i + 1 < m {
                coo.push(k, idx(i + 1, j), -1.0).expect("bounds");
            }
            if j > 0 {
                coo.push(k, idx(i, j - 1), -1.0).expect("bounds");
            }
            if j + 1 < m {
                coo.push(k, idx(i, j + 1), -1.0).expect("bounds");
            }
        }
    }
    coo.to_csr()
}

/// Dense random vector, entries uniform in (−1, 1).
pub fn random_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = XorShift64::new(seed);
    (0..n).map(|_| 2.0 * rng.next_f64() - 1.0).collect()
}

/// Banded matrix of order `n`: every diagonal within `±bw` fully
/// populated with entries uniform in (−1, 1), diagonal boosted to strict
/// dominance. Rows have nearly identical lengths (clipped at the ends) —
/// the SELL-C-σ best case.
pub fn banded(n: usize, bw: usize, seed: u64) -> CsrMatrix {
    let mut rng = XorShift64::new(seed);
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        let lo = i.saturating_sub(bw);
        let hi = (i + bw).min(n - 1);
        for j in lo..=hi {
            let v = if j == i {
                2.0 * bw as f64 + 1.0
            } else {
                2.0 * rng.next_f64() - 1.0
            };
            coo.push(i, j, v).expect("bounds");
        }
    }
    coo.to_csr()
}

/// FEM-style block matrix: the 2-D 5-point Laplacian pattern on an `m×m`
/// grid with every scalar entry expanded into a dense `b×b` block
/// (order `m²·b`, as multi-dof-per-node assembly produces). Block
/// diagonal is boosted to strict dominance; off-block entries are
/// uniform in (−1, 1). Every stored block is completely full — the
/// block-CSR best case.
pub fn fem_block(m: usize, b: usize, seed: u64) -> CsrMatrix {
    let mut rng = XorShift64::new(seed);
    let pattern = laplacian_2d(m);
    let n = m * m * b;
    let mut coo = CooMatrix::new(n, n);
    for (i, j, _) in pattern.iter() {
        for bi in 0..b {
            for bj in 0..b {
                let v = if i == j && bi == bj {
                    // > 4 neighbor blocks × b entries of |v| < 1 each.
                    5.0 * b as f64
                } else {
                    2.0 * rng.next_f64() - 1.0
                };
                coo.push(i * b + bi, j * b + bj, v).expect("bounds");
            }
        }
    }
    coo.to_csr()
}

/// Skewed row-length matrix: most rows hold about `short` random
/// entries, but every 32nd row holds about `long` — the high-variance
/// profile where padding makes SELL lose to CSR. Diagonal included and
/// boosted to dominance.
pub fn skewed_csr(rows: usize, cols: usize, short: usize, long: usize, seed: u64) -> CsrMatrix {
    let mut rng = XorShift64::new(seed);
    let mut coo = CooMatrix::new(rows, cols);
    for i in 0..rows {
        let len = if i % 32 == 0 { long } else { short };
        for _ in 0..len {
            let j = rng.next_below(cols);
            if i >= cols || j != i {
                coo.push(i, j, 2.0 * rng.next_f64() - 1.0).expect("bounds");
            }
        }
        if i < cols {
            coo.push(i, i, long as f64 + 1.0).expect("bounds");
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_in_range() {
        let mut a = XorShift64::new(12);
        let mut b = XorShift64::new(12);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = XorShift64::new(5);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    fn random_csr_has_requested_shape_and_some_entries() {
        let a = random_csr(20, 30, 0.1, 3);
        assert_eq!(a.shape(), (20, 30));
        assert!(a.nnz() > 20);
        // Determinism.
        assert_eq!(a, random_csr(20, 30, 0.1, 3));
        assert_ne!(a, random_csr(20, 30, 0.1, 4));
    }

    #[test]
    fn diag_dominant_really_is() {
        let a = random_diag_dominant(30, 4, 9);
        for i in 0..30 {
            let (cols, vals) = a.row(i);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c == i {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            assert!(diag > off, "row {i}: {diag} vs {off}");
        }
    }

    #[test]
    fn spd_is_symmetric_with_dominant_positive_diagonal() {
        let a = random_spd(25, 3, 11);
        let at = a.transpose();
        assert_eq!(a, at);
        for i in 0..25 {
            let (cols, vals) = a.row(i);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c == i {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            assert!(diag > 0.0 && diag > off, "row {i}");
        }
    }

    #[test]
    fn laplacian_2d_matches_paper_nnz_formula() {
        for m in [3usize, 10, 50] {
            let a = laplacian_2d(m);
            assert_eq!(a.shape(), (m * m, m * m));
            assert_eq!(a.nnz(), 5 * m * m - 4 * m, "m = {m}");
        }
    }

    #[test]
    fn banded_rows_have_full_bandwidth_inside() {
        let a = banded(50, 3, 7);
        assert_eq!(a.shape(), (50, 50));
        for i in 3..47 {
            let (cols, _) = a.row(i);
            assert_eq!(cols.len(), 7, "row {i}");
            assert_eq!(cols[0], i - 3);
            assert_eq!(cols[6], i + 3);
        }
        assert_eq!(a, banded(50, 3, 7));
    }

    #[test]
    fn fem_block_expands_pattern_into_full_blocks() {
        let (m, b) = (4usize, 3usize);
        let a = fem_block(m, b, 5);
        assert_eq!(a.shape(), (m * m * b, m * m * b));
        assert_eq!(a.nnz(), (5 * m * m - 4 * m) * b * b);
        // Diagonal dominance from the boosted block diagonal.
        for i in 0..a.rows() {
            let (cols, vals) = a.row(i);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c == i {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            assert!(diag > off, "row {i}");
        }
    }

    #[test]
    fn skewed_rows_alternate_short_and_long() {
        let a = skewed_csr(256, 256, 3, 64, 13);
        let len = |i: usize| a.row(i).0.len();
        assert!(len(0) > 2 * len(1), "{} vs {}", len(0), len(1));
        assert!(len(32) > 2 * len(33));
    }

    #[test]
    fn laplacian_1d_rowsums_vanish_inside() {
        let a = laplacian_1d(6);
        let ones = vec![1.0; 6];
        let y = a.matvec(&ones).unwrap();
        assert_eq!(y, vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
    }
}
