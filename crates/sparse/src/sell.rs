//! SELL-C-σ — sliced ELLPACK with row sorting.
//!
//! Rows are grouped into slices of a fixed height `C`; within sorting
//! windows of `σ` rows (a multiple of `C`, so no slice straddles a
//! window) rows are ordered by **descending** length, and each slice
//! stores its entries column-major (`slot = offset + j·C + lane`) padded
//! to the slice's widest row. The descending sort means the lanes that
//! are still active at column-position `j` always form a *prefix* of the
//! slice, so the SpMV inner loop runs over a shrinking dense prefix of
//! lanes with no per-lane branch and — crucially — **performs no padding
//! arithmetic at all**.
//!
//! # Bit-identity contract
//!
//! Each row's entries occupy slots `offset + j·C + lane` for
//! `j = 0..len`, i.e. exactly the row's CSR order, and the kernel
//! accumulates them in ascending `j` with one scalar accumulator per
//! lane. Padding slots are never touched by the kernel. The result is
//! therefore bit-identical to [`CsrMatrix::matvec_into`] for every
//! matrix, every input, and every thread count.

use crate::csr::CsrMatrix;
use crate::error::{SparseError, SparseResult};
use crate::threads::{self, SharedMutSlice};

/// Default slice height: 8 lanes keeps the per-slice accumulators in
/// registers/L1 while amortizing the per-slice width lookup.
pub const DEFAULT_C: usize = 8;

/// Default sorting window (a multiple of [`DEFAULT_C`]): wide enough to
/// group similar-length rows, narrow enough to keep `x` accesses local.
pub const DEFAULT_SIGMA: usize = 128;

/// Hard cap on the slice height (sizes the kernel's stack accumulators).
pub const MAX_C: usize = 64;

/// Minimum row count before `matvec_par_into` dispatches to the pool
/// (same rationale and value as the CSR threshold).
const PAR_SPMV_MIN_ROWS: usize = 2048;

/// Slot marker for padding entries in the `src_idx` map.
const PAD: usize = usize::MAX;

/// A sparse matrix in SELL-C-σ form. Built from (and convertible back
/// to) [`CsrMatrix`]; the CSR source's explicit zeros are preserved.
#[derive(Debug, Clone, PartialEq)]
pub struct SellMatrix {
    rows: usize,
    cols: usize,
    /// Slice height (lanes per slice), clamped to `1..=MAX_C`.
    c: usize,
    /// Sorting window, always a positive multiple of `c`.
    sigma: usize,
    /// Element offset of each slice's storage; `n_slices + 1` entries.
    slice_ptr: Vec<usize>,
    /// Original row of each sorted lane position (`rows` entries):
    /// lane `l` of slice `s` holds row `perm[s·c + l]`.
    perm: Vec<usize>,
    /// Row length of each sorted lane position (`rows` entries),
    /// non-increasing within a slice.
    lens: Vec<usize>,
    /// Column index per stored slot (padding slots hold 0).
    col_idx: Vec<usize>,
    /// Value per stored slot (padding slots hold 0.0).
    values: Vec<f64>,
    /// CSR nnz index per stored slot, [`PAD`] for padding — the map that
    /// makes `refresh_values`/`to_csr` exact.
    src_idx: Vec<usize>,
    /// Real (non-padding) stored entries.
    nnz: usize,
}

impl SellMatrix {
    /// Convert a CSR matrix using the default `C`/`σ`.
    pub fn from_csr(a: &CsrMatrix) -> SellMatrix {
        SellMatrix::from_csr_with(a, DEFAULT_C, DEFAULT_SIGMA)
    }

    /// Convert a CSR matrix with an explicit slice height `c` (clamped to
    /// `1..=MAX_C`) and sorting window `sigma` (rounded down to a positive
    /// multiple of the clamped `c`).
    pub fn from_csr_with(a: &CsrMatrix, c: usize, sigma: usize) -> SellMatrix {
        let rows = a.rows();
        let cols = a.cols();
        let c = c.clamp(1, MAX_C);
        let sigma = (sigma.max(c) / c) * c;
        let row_ptr = a.row_ptr();
        let row_len = |r: usize| row_ptr[r + 1] - row_ptr[r];

        // Sort rows by descending length within each σ-window. The sort
        // is stable, so equal-length rows keep ascending row order —
        // the layout is a pure function of the pattern.
        let mut perm: Vec<usize> = (0..rows).collect();
        for window in perm.chunks_mut(sigma) {
            window.sort_by_key(|&q| std::cmp::Reverse(row_len(q)));
        }
        let lens: Vec<usize> = perm.iter().map(|&r| row_len(r)).collect();

        let n_slices = rows.div_ceil(c);
        let mut slice_ptr = Vec::with_capacity(n_slices + 1);
        slice_ptr.push(0usize);
        for s in 0..n_slices {
            // Lanes are length-sorted descending, so the slice width is
            // the first lane's length.
            let width = lens[s * c];
            slice_ptr.push(slice_ptr[s] + width * c);
        }
        let total = *slice_ptr.last().unwrap_or(&0);

        let mut col_idx = vec![0usize; total];
        let mut values = vec![0.0f64; total];
        let mut src_idx = vec![PAD; total];
        let (a_cols, a_vals) = (a.col_idx(), a.values());
        for (s, &off) in slice_ptr.iter().enumerate().take(n_slices) {
            let base = s * c;
            let lanes = c.min(rows - base);
            for l in 0..lanes {
                let row = perm[base + l];
                let start = row_ptr[row];
                for j in 0..lens[base + l] {
                    let slot = off + j * c + l;
                    col_idx[slot] = a_cols[start + j];
                    values[slot] = a_vals[start + j];
                    src_idx[slot] = start + j;
                }
            }
        }

        SellMatrix {
            rows,
            cols,
            c,
            sigma,
            slice_ptr,
            perm,
            lens,
            col_idx,
            values,
            src_idx,
            nnz: a.nnz(),
        }
    }

    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Real stored entries (excluding padding).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The slice height `C`.
    pub fn slice_height(&self) -> usize {
        self.c
    }

    /// The sorting window `σ`.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Number of slices.
    pub fn n_slices(&self) -> usize {
        self.slice_ptr.len() - 1
    }

    /// Stored slots / real entries — 1.0 means no padding at all.
    pub fn padding_overhead(&self) -> f64 {
        if self.nnz == 0 {
            return 1.0;
        }
        self.values.len() as f64 / self.nnz as f64
    }

    /// Reconstruct the exact CSR source (pattern, values, and explicit
    /// zeros; padding is dropped via the `src_idx` map).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.rows + 1];
        for (pos, &row) in self.perm.iter().enumerate() {
            row_ptr[row + 1] = self.lens[pos];
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0usize; self.nnz];
        let mut values = vec![0.0f64; self.nnz];
        for (pos, &row) in self.perm.iter().enumerate() {
            let (s, l) = (pos / self.c, pos % self.c);
            let off = self.slice_ptr[s];
            let start = row_ptr[row];
            for j in 0..self.lens[pos] {
                let slot = off + j * self.c + l;
                col_idx[start + j] = self.col_idx[slot];
                values[start + j] = self.values[slot];
            }
        }
        CsrMatrix::from_parts(self.rows, self.cols, row_ptr, col_idx, values)
            .expect("SELL round-trip preserves CSR invariants")
    }

    /// Re-read values from the CSR matrix this was converted from (same
    /// pattern, possibly new values) — O(slots), no re-conversion.
    pub fn refresh_values(&mut self, a: &CsrMatrix) -> SparseResult<()> {
        if a.nnz() != self.nnz {
            return Err(SparseError::LengthMismatch {
                what: "SELL refresh values",
                expected: self.nnz,
                got: a.nnz(),
            });
        }
        let vals = a.values();
        for (slot, &src) in self.src_idx.iter().enumerate() {
            if src != PAD {
                self.values[slot] = vals[src];
            }
        }
        Ok(())
    }

    /// The slice-range SpMV kernel: computes every row held by slices
    /// `s0..s1` and writes each result to `y[map(row)]` (identity map
    /// when `scatter` is `None`). Rows accumulate in CSR entry order —
    /// see the module docs for the bit-identity argument.
    ///
    /// Caller guarantees: distinct slices hold distinct original rows, so
    /// concurrent calls on disjoint slice ranges write disjoint `y`
    /// elements (scatter maps must be injective, as the distributed
    /// interior/boundary row lists are).
    pub(crate) fn spmv_slices(
        &self,
        s0: usize,
        s1: usize,
        x: &[f64],
        y: &SharedMutSlice<'_>,
        scatter: Option<&[usize]>,
    ) {
        // Monomorphized kernels for the common slice heights: a constant
        // `C` lets the full-lane inner loop unroll completely.
        match self.c {
            4 => self.spmv_slices_fixed::<4>(s0, s1, x, y, scatter),
            8 => self.spmv_slices_fixed::<8>(s0, s1, x, y, scatter),
            16 => self.spmv_slices_fixed::<16>(s0, s1, x, y, scatter),
            _ => self.spmv_slices_generic(s0, s1, x, y, scatter),
        }
    }

    /// Fixed-height kernel: `C` must equal `self.c`. Columns where every
    /// lane is still active (`j` below the shortest row length — the
    /// common case after length sorting) take an unrolled path; the
    /// shrinking tail falls through to the prefix loop with the same
    /// per-lane accumulation order.
    fn spmv_slices_fixed<const C: usize>(
        &self,
        s0: usize,
        s1: usize,
        x: &[f64],
        y: &SharedMutSlice<'_>,
        scatter: Option<&[usize]>,
    ) {
        debug_assert_eq!(self.c, C);
        let values = &self.values;
        let col_idx = &self.col_idx;
        let lens = &self.lens;
        for s in s0..s1 {
            let base = s * C;
            let off = self.slice_ptr[s];
            let width = (self.slice_ptr[s + 1] - off) / C;
            let lanes = C.min(self.rows - base);
            let mut acc = [0.0f64; C];
            let mut active = lanes;
            while active > 0 && lens[base + active - 1] == 0 {
                active -= 1;
            }
            let mut j = 0;
            if active == C {
                // Lengths are non-increasing within the slice, so lane
                // C-1 holds the shortest row: every j below its length
                // keeps all C lanes active.
                let full = lens[base + C - 1];
                while j < full {
                    let row_off = off + j * C;
                    let vs: &[f64; C] =
                        values[row_off..row_off + C].try_into().expect("slice width");
                    let cs: &[usize; C] =
                        col_idx[row_off..row_off + C].try_into().expect("slice width");
                    for l in 0..C {
                        acc[l] += vs[l] * x[cs[l]];
                    }
                    j += 1;
                }
            }
            while j < width {
                while active > 0 && lens[base + active - 1] <= j {
                    active -= 1;
                }
                let row_off = off + j * C;
                for (l, a) in acc.iter_mut().enumerate().take(active) {
                    let slot = row_off + l;
                    *a += values[slot] * x[col_idx[slot]];
                }
                j += 1;
            }
            for (l, &a) in acc.iter().enumerate().take(lanes) {
                let row = self.perm[base + l];
                let idx = match scatter {
                    Some(map) => map[row],
                    None => row,
                };
                // SAFETY: distinct slices → distinct rows → distinct
                // (injectively mapped) output elements.
                unsafe { y.set(idx, a) };
            }
        }
    }

    /// Arbitrary-height kernel, same visit order as the fixed one.
    fn spmv_slices_generic(
        &self,
        s0: usize,
        s1: usize,
        x: &[f64],
        y: &SharedMutSlice<'_>,
        scatter: Option<&[usize]>,
    ) {
        let c = self.c;
        let mut acc = [0.0f64; MAX_C];
        for s in s0..s1 {
            let base = s * c;
            let off = self.slice_ptr[s];
            let width = (self.slice_ptr[s + 1] - off) / c;
            let lanes = c.min(self.rows - base);
            acc[..lanes].fill(0.0);
            let mut active = lanes;
            while active > 0 && self.lens[base + active - 1] == 0 {
                active -= 1;
            }
            for j in 0..width {
                while active > 0 && self.lens[base + active - 1] <= j {
                    active -= 1;
                }
                let row_off = off + j * c;
                for (l, a) in acc.iter_mut().enumerate().take(active) {
                    let slot = row_off + l;
                    *a += self.values[slot] * x[self.col_idx[slot]];
                }
            }
            for (l, &a) in acc.iter().enumerate().take(lanes) {
                let row = self.perm[base + l];
                let idx = match scatter {
                    Some(map) => map[row],
                    None => row,
                };
                // SAFETY: as in the fixed kernel.
                unsafe { y.set(idx, a) };
            }
        }
    }

    /// y = A·x into a caller-provided buffer (serial, no allocation).
    /// Bit-identical to [`CsrMatrix::matvec_into`].
    #[inline]
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y.len(), self.rows);
        let ys = SharedMutSlice::new(y);
        self.spmv_slices(0, self.n_slices(), x, &ys, None);
    }

    /// y = A·x with an explicit thread count, splitting slices into one
    /// contiguous chunk per thread — allocation-free, bit-identical to
    /// the serial kernel at any `threads` value.
    pub fn matvec_threaded_into(&self, x: &[f64], y: &mut [f64], threads: usize) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y.len(), self.rows);
        let ys = SharedMutSlice::new(y);
        if threads > 1 && self.rows >= PAR_SPMV_MIN_ROWS {
            threads::for_each_chunk(self.n_slices(), threads, |s0, s1| {
                self.spmv_slices(s0, s1, x, &ys, None);
            });
        } else {
            self.spmv_slices(0, self.n_slices(), x, &ys, None);
        }
    }

    /// y = A·x over the rank-local thread pool ([`threads::active`]
    /// threads), into a caller-provided buffer — the SELL counterpart of
    /// [`CsrMatrix::matvec_par_into`].
    pub fn matvec_par_into(&self, x: &[f64], y: &mut [f64]) {
        self.matvec_threaded_into(x, y, threads::active());
    }

    /// y = A·x (allocating, validating wrapper).
    pub fn matvec(&self, x: &[f64]) -> SparseResult<Vec<f64>> {
        if x.len() != self.cols {
            return Err(SparseError::LengthMismatch {
                what: "matvec input",
                expected: self.cols,
                got: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        Ok(y)
    }

    /// Scatter SpMV for the distributed split kernels: row `r` of this
    /// (compact) matrix writes `y[rows_map[r]]`. `rows_map` must be
    /// injective. Threaded over slices when `threads > 1` and the matrix
    /// clears the dispatch threshold; bit-identical either way.
    pub(crate) fn spmv_scatter(
        &self,
        rows_map: &[usize],
        x: &[f64],
        y: &SharedMutSlice<'_>,
        threads: usize,
    ) {
        debug_assert_eq!(rows_map.len(), self.rows);
        if threads > 1 && self.rows >= PAR_SPMV_MIN_ROWS {
            threads::for_each_chunk(self.n_slices(), threads, |s0, s1| {
                self.spmv_slices(s0, s1, x, y, Some(rows_map));
            });
        } else {
            self.spmv_slices(0, self.n_slices(), x, y, Some(rows_map));
        }
    }

    /// Multi-vector slice-range kernel: computes every row of slices
    /// `s0..s1` against `k` input columns (column `q` at
    /// `xs[q·x_stride..]`) and writes each result to
    /// `y[q·y_stride + map(row)]`. One sweep over the slice storage per
    /// group of [`crate::csr::MULTI_CHUNK`] columns; each column's lanes
    /// accumulate in exactly [`Self::spmv_slices`]'s visit order, so
    /// per-column results are bit-identical to the single-vector kernel.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spmv_slices_multi(
        &self,
        s0: usize,
        s1: usize,
        xs: &[f64],
        x_stride: usize,
        y: &SharedMutSlice<'_>,
        y_stride: usize,
        k: usize,
        scatter: Option<&[usize]>,
    ) {
        use crate::csr::MULTI_CHUNK;
        let c = self.c;
        let mut q0 = 0;
        while q0 < k {
            let kc = (k - q0).min(MULTI_CHUNK);
            // One accumulator per (column, lane) pair; MAX_C·MULTI_CHUNK
            // doubles fit comfortably on the stack.
            let mut acc = [0.0f64; MAX_C * MULTI_CHUNK];
            for s in s0..s1 {
                let base = s * c;
                let off = self.slice_ptr[s];
                let width = (self.slice_ptr[s + 1] - off) / c;
                let lanes = c.min(self.rows - base);
                acc[..kc * c].fill(0.0);
                let mut active = lanes;
                while active > 0 && self.lens[base + active - 1] == 0 {
                    active -= 1;
                }
                for j in 0..width {
                    while active > 0 && self.lens[base + active - 1] <= j {
                        active -= 1;
                    }
                    let row_off = off + j * c;
                    for l in 0..active {
                        let slot = row_off + l;
                        let v = self.values[slot];
                        let col = self.col_idx[slot];
                        for q in 0..kc {
                            acc[q * c + l] += v * xs[(q0 + q) * x_stride + col];
                        }
                    }
                }
                for l in 0..lanes {
                    let row = self.perm[base + l];
                    let idx = match scatter {
                        Some(map) => map[row],
                        None => row,
                    };
                    for q in 0..kc {
                        // SAFETY: distinct slices → distinct rows →
                        // distinct (injectively mapped) output elements,
                        // one per column segment.
                        unsafe { y.set((q0 + q) * y_stride + idx, acc[q * c + l]) };
                    }
                }
            }
            q0 += kc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    fn assert_bits_equal(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (p, q)) in a.iter().zip(b).enumerate() {
            assert_eq!(p.to_bits(), q.to_bits(), "element {i}: {p} vs {q}");
        }
    }

    #[test]
    fn round_trips_exactly() {
        for (seed, rows, cols) in [(1u64, 37, 41), (2, 64, 64), (3, 1, 9), (4, 130, 7)] {
            let a = generate::random_csr(rows, cols, 0.15, seed);
            for (c, sigma) in [(1, 1), (4, 8), (8, 128), (64, 64)] {
                let s = SellMatrix::from_csr_with(&a, c, sigma);
                assert_eq!(s.to_csr(), a, "c={c} sigma={sigma}");
                assert_eq!(s.nnz(), a.nnz());
            }
        }
    }

    #[test]
    fn empty_and_dense_rows_round_trip() {
        // Rows 0 and 3 empty, row 1 full.
        let a = CsrMatrix::from_parts(
            4,
            3,
            vec![0, 0, 3, 4, 4],
            vec![0, 1, 2, 1],
            vec![1.0, -2.0, 3.0, 0.0], // keeps an explicit zero
        )
        .unwrap();
        let s = SellMatrix::from_csr_with(&a, 2, 4);
        assert_eq!(s.to_csr(), a);
        let x = vec![1.0, 2.0, 3.0];
        let y = s.matvec(&x).unwrap();
        assert_bits_equal(&y, &a.matvec(&x).unwrap());
        assert_eq!(y[0], 0.0);
        assert_eq!(y[3], 0.0);
    }

    #[test]
    fn matvec_bit_identical_to_csr() {
        for (seed, n) in [(11u64, 200), (12, 1023), (13, 4096)] {
            let a = generate::random_diag_dominant(n, 9, seed);
            let x = generate::random_vector(n, seed ^ 0xabc);
            let mut y_csr = vec![0.0; n];
            a.matvec_into(&x, &mut y_csr);
            for (c, sigma) in [(4, 32), (8, 128), (16, 16)] {
                let s = SellMatrix::from_csr_with(&a, c, sigma);
                let mut y = vec![0.0; n];
                s.matvec_into(&x, &mut y);
                assert_bits_equal(&y, &y_csr);
                for threads in [1usize, 2, 4, 8] {
                    y.fill(f64::NAN);
                    s.matvec_threaded_into(&x, &mut y, threads);
                    assert_bits_equal(&y, &y_csr);
                }
            }
        }
    }

    #[test]
    fn refresh_values_tracks_csr_updates() {
        let mut a = generate::random_diag_dominant(300, 5, 77);
        let mut s = SellMatrix::from_csr(&a);
        for v in a.values_mut() {
            *v *= -1.5;
        }
        s.refresh_values(&a).unwrap();
        assert_eq!(s.to_csr(), a);
        let bad = generate::random_csr(10, 300, 0.05, 5);
        assert!(s.refresh_values(&bad).is_err());
    }

    #[test]
    fn skewed_rows_pad_but_stay_exact() {
        // One long row per window dominates the slice width.
        let a = generate::skewed_csr(512, 512, 3, 64, 21);
        let s = SellMatrix::from_csr(&a);
        assert!(s.padding_overhead() >= 1.0);
        assert_eq!(s.to_csr(), a);
        let x = generate::random_vector(512, 9);
        assert_bits_equal(&s.matvec(&x).unwrap(), &a.matvec(&x).unwrap());
    }
}
