//! Format-to-format conversion helpers and `From` impls.
//!
//! The paper (§5.3) notes that "none of the sparse linear solver packages
//! provides support for all formats"; LISI's adapters therefore convert at
//! the interface boundary. This module is that conversion layer: any of
//! COO/CSR/CSC/MSR/VBR/FEM can reach CSR (every package's native ingest
//! format here), and CSR can reach any of them back.

use crate::bcsr::BcsrMatrix;
use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseResult;
use crate::fem::FemAssembly;
use crate::msr::MsrMatrix;
use crate::sell::SellMatrix;
use crate::vbr::VbrMatrix;

impl From<&CooMatrix> for CsrMatrix {
    fn from(m: &CooMatrix) -> Self {
        m.to_csr()
    }
}

impl From<&CsrMatrix> for CooMatrix {
    fn from(m: &CsrMatrix) -> Self {
        m.to_coo()
    }
}

impl From<&CscMatrix> for CsrMatrix {
    fn from(m: &CscMatrix) -> Self {
        m.to_csr()
    }
}

impl From<&CsrMatrix> for CscMatrix {
    fn from(m: &CsrMatrix) -> Self {
        m.to_csc()
    }
}

impl From<&FemAssembly> for CsrMatrix {
    fn from(m: &FemAssembly) -> Self {
        m.to_csr()
    }
}

impl From<&CsrMatrix> for SellMatrix {
    fn from(m: &CsrMatrix) -> Self {
        SellMatrix::from_csr(m)
    }
}

impl From<&SellMatrix> for CsrMatrix {
    fn from(m: &SellMatrix) -> Self {
        m.to_csr()
    }
}

impl From<&CsrMatrix> for BcsrMatrix {
    fn from(m: &CsrMatrix) -> Self {
        BcsrMatrix::from_csr(m)
    }
}

impl From<&BcsrMatrix> for CsrMatrix {
    fn from(m: &BcsrMatrix) -> Self {
        m.to_csr()
    }
}

/// Convert CSR to SELL-C-σ with explicit slice height and sort window
/// (see [`SellMatrix::from_csr_with`] for the clamping rules).
pub fn csr_to_sell(a: &CsrMatrix, c: usize, sigma: usize) -> SellMatrix {
    SellMatrix::from_csr_with(a, c, sigma)
}

/// Convert CSR to block-CSR with explicit block dimensions (see
/// [`BcsrMatrix::from_csr_with`] for the clamping rules).
pub fn csr_to_bcsr(a: &CsrMatrix, br: usize, bc: usize) -> BcsrMatrix {
    BcsrMatrix::from_csr_with(a, br, bc)
}

/// Convert raw COO triplet arrays with a given index base (`offset` = 0 for
/// C-style, 1 for Fortran-style numbering — LISI's `setupMatrix[large_args]`
/// carries exactly this `Offset` argument).
pub fn coo_arrays_to_csr(
    rows: usize,
    cols: usize,
    values: &[f64],
    row_idx: &[usize],
    col_idx: &[usize],
    offset: usize,
) -> SparseResult<CsrMatrix> {
    let r: Vec<usize> = row_idx.iter().map(|&i| i.wrapping_sub(offset)).collect();
    let c: Vec<usize> = col_idx.iter().map(|&i| i.wrapping_sub(offset)).collect();
    Ok(CooMatrix::from_triplets(rows, cols, &r, &c, values)?.to_csr())
}

/// Convert raw CSR arrays (`row_ptr` of length `rows + 1`) with an index
/// base applied to both pointers and column indices.
pub fn csr_arrays_to_csr(
    rows: usize,
    cols: usize,
    values: &[f64],
    row_ptr: &[usize],
    col_idx: &[usize],
    offset: usize,
) -> SparseResult<CsrMatrix> {
    let ptr: Vec<usize> = row_ptr.iter().map(|&p| p.wrapping_sub(offset)).collect();
    let cidx: Vec<usize> = col_idx.iter().map(|&c| c.wrapping_sub(offset)).collect();
    // Input rows may be unsorted within a row; route through COO to
    // normalize rather than trusting the caller.
    let mut coo = CooMatrix::new(rows, cols);
    for r in 0..rows {
        let (lo, hi) = (ptr[r], ptr[r + 1]);
        if lo > hi || hi > values.len() {
            return Err(crate::error::SparseError::MalformedPointers(
                "row pointer out of range",
            ));
        }
        for k in lo..hi {
            coo.push(r, cidx[k], values[k])?;
        }
    }
    Ok(coo.to_csr())
}

/// Convert raw MSR arrays to CSR with an index base.
pub fn msr_arrays_to_csr(
    n: usize,
    values: &[f64],
    ja: &[usize],
    offset: usize,
) -> SparseResult<CsrMatrix> {
    // MSR's ja mixes pointers (ja[0..=n], offset-adjusted base n+1) and
    // column indices (ja[n+1..]); both shift by `offset` in Fortran codes.
    let adj: Vec<usize> = ja.iter().map(|&x| x.wrapping_sub(offset)).collect();
    Ok(MsrMatrix::from_parts(n, values.to_vec(), adj)?.to_csr())
}

/// Convert a CSR matrix to VBR given a uniform block size `bs` (the LISI
/// `setBlockSize` parameter); trailing partial blocks are allowed.
pub fn csr_to_vbr_uniform(a: &CsrMatrix, bs: usize) -> SparseResult<VbrMatrix> {
    let (rows, cols) = a.shape();
    let bs = bs.max(1);
    let mk = |n: usize| -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).step_by(bs).collect();
        p.push(n);
        p.dedup();
        p
    };
    VbrMatrix::from_csr(a, &mk(rows), &mk(cols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn from_impls_agree_with_methods() {
        let a = generate::random_csr(8, 8, 0.3, 5);
        let coo: CooMatrix = (&a).into();
        let back: CsrMatrix = (&coo).into();
        assert_eq!(back, a);
        let csc: CscMatrix = (&a).into();
        let back2: CsrMatrix = (&csc).into();
        assert_eq!(back2, a);
    }

    #[test]
    fn one_based_coo_arrays_convert() {
        // Fortran-style 1-based triplets for [[1,2],[0,3]].
        let a = coo_arrays_to_csr(2, 2, &[1.0, 2.0, 3.0], &[1, 1, 2], &[1, 2, 2], 1).unwrap();
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 1), 2.0);
        assert_eq!(a.get(1, 1), 3.0);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn one_based_csr_arrays_convert() {
        // Same matrix in 1-based CSR.
        let a = csr_arrays_to_csr(2, 2, &[1.0, 2.0, 3.0], &[1, 3, 4], &[1, 2, 2], 1).unwrap();
        assert_eq!(a.get(0, 1), 2.0);
        assert_eq!(a.get(1, 1), 3.0);
    }

    #[test]
    fn unsorted_csr_input_is_normalized() {
        // Columns out of order within the row; must come out sorted.
        let a = csr_arrays_to_csr(1, 3, &[5.0, 1.0], &[0, 2], &[2, 0], 0).unwrap();
        assert_eq!(a.col_idx(), &[0, 2]);
        assert_eq!(a.values(), &[1.0, 5.0]);
    }

    #[test]
    fn bad_row_pointers_are_rejected() {
        assert!(csr_arrays_to_csr(1, 2, &[1.0], &[0, 9], &[0], 0).is_err());
        assert!(csr_arrays_to_csr(2, 2, &[1.0], &[0, 1, 0], &[0], 0).is_err());
    }

    #[test]
    fn msr_arrays_round_trip() {
        let a = generate::random_diag_dominant(10, 3, 2);
        let m = MsrMatrix::from_csr(&a).unwrap();
        let (val, ja) = m.parts();
        let back = msr_arrays_to_csr(10, val, ja, 0).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn uniform_vbr_round_trips() {
        let a = generate::random_csr(10, 10, 0.2, 8);
        for bs in [1usize, 2, 3, 4, 10, 99] {
            let v = csr_to_vbr_uniform(&a, bs).unwrap();
            assert_eq!(v.to_csr(), a, "bs = {bs}");
        }
    }
}
