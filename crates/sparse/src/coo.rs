//! Coordinate (triplet) format — the natural assembly format, and the
//! layout behind LISI's `setupMatrix[few_args]` overload (three parallel
//! arrays `Values`, `Rows`, `Columns` of length `NNZ`).

use crate::csr::CsrMatrix;
use crate::error::{SparseError, SparseResult};

/// A sparse matrix in coordinate format. Duplicate entries are allowed and
/// are summed on conversion to CSR — the convention finite-element
/// assembly relies on.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    row_idx: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CooMatrix {
    /// Empty matrix of the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix { rows, cols, row_idx: vec![], col_idx: vec![], values: vec![] }
    }

    /// Build from parallel triplet arrays, validating every index.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        row_idx: &[usize],
        col_idx: &[usize],
        values: &[f64],
    ) -> SparseResult<Self> {
        if row_idx.len() != values.len() {
            return Err(SparseError::LengthMismatch {
                what: "COO row indices",
                expected: values.len(),
                got: row_idx.len(),
            });
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::LengthMismatch {
                what: "COO column indices",
                expected: values.len(),
                got: col_idx.len(),
            });
        }
        for &r in row_idx {
            if r >= rows {
                return Err(SparseError::IndexOutOfBounds { axis: "row", index: r, bound: rows });
            }
        }
        for &c in col_idx {
            if c >= cols {
                return Err(SparseError::IndexOutOfBounds {
                    axis: "column",
                    index: c,
                    bound: cols,
                });
            }
        }
        Ok(CooMatrix {
            rows,
            cols,
            row_idx: row_idx.to_vec(),
            col_idx: col_idx.to_vec(),
            values: values.to_vec(),
        })
    }

    /// Append one entry (duplicates accumulate on conversion).
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> SparseResult<()> {
        if row >= self.rows {
            return Err(SparseError::IndexOutOfBounds {
                axis: "row",
                index: row,
                bound: self.rows,
            });
        }
        if col >= self.cols {
            return Err(SparseError::IndexOutOfBounds {
                axis: "column",
                index: col,
                bound: self.cols,
            });
        }
        self.row_idx.push(row);
        self.col_idx.push(col);
        self.values.push(value);
        Ok(())
    }

    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries, duplicates included.
    pub fn nnz_stored(&self) -> usize {
        self.values.len()
    }

    /// Borrow the triplet arrays `(rows, cols, values)`.
    pub fn triplets(&self) -> (&[usize], &[usize], &[f64]) {
        (&self.row_idx, &self.col_idx, &self.values)
    }

    /// Iterate over `(row, col, value)` entries in stored order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.row_idx
            .iter()
            .zip(&self.col_idx)
            .zip(&self.values)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// y = A·x by direct triplet accumulation (reference kernel; CSR is the
    /// fast path).
    pub fn matvec(&self, x: &[f64]) -> SparseResult<Vec<f64>> {
        if x.len() != self.cols {
            return Err(SparseError::LengthMismatch {
                what: "matvec input",
                expected: self.cols,
                got: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (r, c, v) in self.iter() {
            y[r] += v * x[c];
        }
        Ok(y)
    }

    /// Convert to CSR: counting sort by row, columns sorted within each
    /// row, duplicate entries summed. O(nnz + rows).
    pub fn to_csr(&self) -> CsrMatrix {
        let n = self.rows;
        let mut counts = vec![0usize; n + 1];
        for &r in &self.row_idx {
            counts[r + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let row_ptr_raw = counts.clone();
        let nnz = self.values.len();
        let mut cols = vec![0usize; nnz];
        let mut vals = vec![0.0f64; nnz];
        {
            let mut next = row_ptr_raw.clone();
            for (r, c, v) in self.iter() {
                let slot = next[r];
                cols[slot] = c;
                vals[slot] = v;
                next[r] += 1;
            }
        }
        // Sort within each row and merge duplicates in place.
        let mut out_ptr = vec![0usize; n + 1];
        let mut out_cols = Vec::with_capacity(nnz);
        let mut out_vals = Vec::with_capacity(nnz);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..n {
            scratch.clear();
            scratch.extend(
                cols[row_ptr_raw[r]..row_ptr_raw[r + 1]]
                    .iter()
                    .copied()
                    .zip(vals[row_ptr_raw[r]..row_ptr_raw[r + 1]].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let (c, mut v) = scratch[i];
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                out_cols.push(c);
                out_vals.push(v);
                i = j;
            }
            out_ptr[r + 1] = out_cols.len();
        }
        CsrMatrix::from_parts_unchecked(self.rows, self.cols, out_ptr, out_cols, out_vals)
    }

    /// Transpose (swap row/column indices; O(nnz)).
    pub fn transpose(&self) -> CooMatrix {
        CooMatrix {
            rows: self.cols,
            cols: self.rows,
            row_idx: self.col_idx.clone(),
            col_idx: self.row_idx.clone(),
            values: self.values.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        CooMatrix::from_triplets(2, 3, &[0, 0, 1], &[0, 2, 1], &[1.0, 2.0, 3.0]).unwrap()
    }

    #[test]
    fn construction_validates_indices_and_lengths() {
        assert!(CooMatrix::from_triplets(2, 2, &[0], &[0, 1], &[1.0]).is_err());
        assert!(CooMatrix::from_triplets(2, 2, &[5], &[0], &[1.0]).is_err());
        assert!(CooMatrix::from_triplets(2, 2, &[0], &[5], &[1.0]).is_err());
        assert!(CooMatrix::from_triplets(2, 2, &[1], &[1], &[1.0]).is_ok());
    }

    #[test]
    fn push_validates_and_appends() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 0, 1.0).unwrap();
        assert!(m.push(2, 0, 1.0).is_err());
        assert!(m.push(0, 2, 1.0).is_err());
        assert_eq!(m.nnz_stored(), 1);
    }

    #[test]
    fn matvec_reference() {
        let m = sample();
        let y = m.matvec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 3.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn to_csr_sorts_and_sums_duplicates() {
        // Entry (0,1) appears twice: 4 + 6 = 10; unsorted column order.
        let m = CooMatrix::from_triplets(
            2,
            3,
            &[0, 0, 0, 1],
            &[2, 1, 1, 0],
            &[5.0, 4.0, 6.0, 7.0],
        )
        .unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.row_ptr(), &[0, 2, 3]);
        assert_eq!(csr.col_idx(), &[1, 2, 0]);
        assert_eq!(csr.values(), &[10.0, 5.0, 7.0]);
    }

    #[test]
    fn transpose_swaps_shape() {
        let t = sample().transpose();
        assert_eq!(t.shape(), (3, 2));
        let y = t.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn empty_rows_are_preserved_in_csr() {
        let m = CooMatrix::from_triplets(4, 4, &[3], &[0], &[9.0]).unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.row_ptr(), &[0, 0, 0, 0, 1]);
    }
}
