//! Dense kernels: BLAS-1 style vector operations and a small dense matrix
//! with an LU solve, used as the reference implementation in tests and as
//! the coarsest-grid solver in multigrid.

use crate::error::{SparseError, SparseResult};
use crate::threads::{self, SharedMutSlice};

/// Fixed reduction-block length for [`pdot`]. Partial sums are formed per
/// block and combined in block order, so the result depends only on this
/// constant — never on the thread count. Vectors at or under one block
/// reduce with the plain serial [`dot`], bit-identical to the historical
/// serial kernel.
pub const DOT_BLOCK: usize = 65_536;

/// Elementwise kernels shorter than this run serially even when threads
/// are configured: the pool dispatch costs more than the memory pass.
const PAR_ELEMWISE_MIN: usize = 32_768;

/// Dot product ⟨x, y⟩.
///
/// # Panics
/// Panics in debug builds if lengths differ.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    // Chunked accumulation: lets LLVM vectorize and improves associativity
    // stability versus a naive serial fold.
    const LANES: usize = 8;
    let mut acc = [0.0f64; LANES];
    let chunks = x.len() / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        for l in 0..LANES {
            acc[l] += x[base + l] * y[base + l];
        }
    }
    let mut s: f64 = acc.iter().sum();
    for i in chunks * LANES..x.len() {
        s += x[i] * y[i];
    }
    s
}

/// Deterministic (optionally threaded) dot product ⟨x, y⟩ — the reduction
/// kernel feeding the fused solver collectives.
///
/// Partial sums are computed over fixed [`DOT_BLOCK`]-element blocks and
/// combined in block order on the calling thread, so the result is
/// bit-identical for every `RSPARSE_THREADS` value. A single-block input
/// degenerates to exactly [`dot`], matching the pre-threading serial
/// histories for every local length ≤ `DOT_BLOCK`.
pub fn pdot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    if n <= DOT_BLOCK {
        return dot(x, y);
    }
    let n_blocks = n.div_ceil(DOT_BLOCK);
    let mut partials = vec![0.0f64; n_blocks];
    let threads = threads::active().min(n_blocks);
    let block_of = |b: usize| {
        let lo = b * DOT_BLOCK;
        let hi = (lo + DOT_BLOCK).min(n);
        dot(&x[lo..hi], &y[lo..hi])
    };
    let filled = if threads > 1 {
        let out = SharedMutSlice::new(&mut partials);
        rayon::pool::try_broadcast(threads, |tid| {
            let mut b = tid;
            while b < n_blocks {
                // SAFETY: block `b` is owned by exactly one tid
                // (round-robin assignment).
                unsafe { out.set(b, block_of(b)) };
                b += threads;
            }
        })
    } else {
        false
    };
    if !filled {
        for (b, p) in partials.iter_mut().enumerate() {
            *p = block_of(b);
        }
    }
    // Fixed-order combination: block 0 first, always on this thread.
    partials.iter().sum()
}

/// y ← a·x + y. Threaded over contiguous chunks for long vectors; each
/// element's arithmetic is unchanged, so results are bit-identical at any
/// thread count.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let threads = par_threads(y.len());
    if threads > 1 {
        let ys = SharedMutSlice::new(y);
        threads::for_each_chunk(ys.len(), threads, |s, e| {
            for (i, xi) in (s..e).zip(&x[s..e]) {
                // SAFETY: chunks are disjoint.
                unsafe { ys.set(i, ys.get(i) + a * xi) };
            }
        });
    } else {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += a * xi;
        }
    }
}

/// y ← x + b·y (the "xpby" update GMRES and BiCG variants use). Threaded
/// like [`axpy`], with bit-identical results at any thread count.
#[inline]
pub fn xpby(x: &[f64], b: f64, y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let threads = par_threads(y.len());
    if threads > 1 {
        let ys = SharedMutSlice::new(y);
        threads::for_each_chunk(ys.len(), threads, |s, e| {
            for (i, xi) in (s..e).zip(&x[s..e]) {
                // SAFETY: chunks are disjoint.
                unsafe { ys.set(i, xi + b * ys.get(i)) };
            }
        });
    } else {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = xi + b * *yi;
        }
    }
}

/// Threads to use for an elementwise kernel of length `n`.
#[inline]
fn par_threads(n: usize) -> usize {
    if n >= PAR_ELEMWISE_MIN {
        threads::active()
    } else {
        1
    }
}

/// x ← a·x.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= a;
    }
}

/// Euclidean norm ‖x‖₂.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Max norm ‖x‖∞.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, &v| m.max(v.abs()))
}

/// 1-norm ‖x‖₁.
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// y ← x (copy helper that asserts shapes).
#[inline]
pub fn copy(x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    y.copy_from_slice(x);
}

/// A row-major dense matrix. Deliberately minimal: it exists to provide
/// ground truth for sparse kernels and a coarse-grid direct solve, not to
/// compete with a real dense library.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major slice.
    pub fn from_row_major(rows: usize, cols: usize, data: &[f64]) -> SparseResult<Self> {
        if data.len() != rows * cols {
            return Err(SparseError::LengthMismatch {
                what: "dense data",
                expected: rows * cols,
                got: data.len(),
            });
        }
        Ok(DenseMatrix { rows, cols, data: data.to_vec() })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the row-major storage.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// y = A·x.
    pub fn matvec(&self, x: &[f64]) -> SparseResult<Vec<f64>> {
        if x.len() != self.cols {
            return Err(SparseError::LengthMismatch {
                what: "matvec input",
                expected: self.cols,
                got: x.len(),
            });
        }
        Ok((0..self.rows).map(|i| dot(self.row(i), x)).collect())
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        norm2(&self.data)
    }

    /// Solve A·x = b by LU with partial pivoting (in a copy). This is the
    /// reference solver every sparse solver in the workspace is tested
    /// against.
    pub fn solve(&self, b: &[f64]) -> SparseResult<Vec<f64>> {
        if self.rows != self.cols {
            return Err(SparseError::NotSquare { rows: self.rows, cols: self.cols });
        }
        let n = self.rows;
        if b.len() != n {
            return Err(SparseError::LengthMismatch {
                what: "rhs",
                expected: n,
                got: b.len(),
            });
        }
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        let mut piv: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Partial pivot: largest magnitude in column k at/below row k.
            let (p, pmax) = (k..n)
                .map(|i| (i, a[i * n + k].abs()))
                .fold((k, -1.0), |best, cur| if cur.1 > best.1 { cur } else { best });
            if pmax == 0.0 {
                return Err(SparseError::ZeroPivot { row: k });
            }
            if p != k {
                for j in 0..n {
                    a.swap(k * n + j, p * n + j);
                }
                piv.swap(k, p);
                x.swap(k, p);
            }
            let pivot = a[k * n + k];
            for i in k + 1..n {
                let l = a[i * n + k] / pivot;
                if l != 0.0 {
                    a[i * n + k] = l;
                    for j in k + 1..n {
                        a[i * n + j] -= l * a[k * n + j];
                    }
                    x[i] -= l * x[k];
                }
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            for j in k + 1..n {
                x[k] -= a[k * n + j] * x[j];
            }
            x[k] /= a[k * n + k];
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blas1_ops() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![4.0, 5.0, 6.0];
        assert_eq!(dot(&x, &y), 32.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![6.0, 9.0, 12.0]);
        xpby(&x, 0.5, &mut y);
        assert_eq!(y, vec![4.0, 6.5, 9.0]);
        scale(2.0, &mut y);
        assert_eq!(y, vec![8.0, 13.0, 18.0]);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm1(&[-7.0, 2.0]), 9.0);
    }

    #[test]
    fn pdot_matches_dot_below_one_block_and_is_thread_invariant() {
        // Below one block pdot IS the serial dot, bit for bit.
        let x: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..1000).map(|i| (i as f64).cos()).collect();
        assert_eq!(pdot(&x, &y), dot(&x, &y));
        // Above one block: blocked combination, identical at every thread
        // count.
        let n = DOT_BLOCK + 1234;
        let x: Vec<f64> = (0..n).map(|i| ((i % 97) as f64) * 0.25 - 3.0).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i % 31) as f64) * 0.5 - 1.0).collect();
        let reference = pdot(&x, &y);
        let prev = crate::threads::active();
        for t in [1usize, 2, 4, 8] {
            crate::threads::set_threads(t);
            assert_eq!(pdot(&x, &y), reference, "threads = {t}");
        }
        crate::threads::set_threads(prev);
        // And the blocked result is numerically (not bitwise) the dot.
        assert!((reference - dot(&x, &y)).abs() < 1e-9 * dot(&x, &x).abs().sqrt());
    }

    #[test]
    fn dot_handles_lengths_around_lane_boundaries() {
        for n in 0..34 {
            let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let expect: f64 = (0..n).map(|i| (i * i) as f64).sum();
            assert_eq!(dot(&x, &x), expect, "n = {n}");
        }
    }

    #[test]
    fn identity_solve_returns_rhs() {
        let a = DenseMatrix::identity(4);
        let b = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(a.solve(&b).unwrap(), b);
    }

    #[test]
    fn lu_solve_matches_known_solution() {
        // A deliberately non-symmetric matrix needing pivoting.
        let a = DenseMatrix::from_row_major(
            3,
            3,
            &[0.0, 2.0, 1.0, 1.0, 1.0, 1.0, 2.0, -1.0, 3.0],
        )
        .unwrap();
        let x_true = vec![1.0, -1.0, 2.0];
        let b = a.matvec(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn singular_matrix_reports_zero_pivot() {
        let a =
            DenseMatrix::from_row_major(2, 2, &[1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(matches!(a.solve(&[1.0, 1.0]), Err(SparseError::ZeroPivot { .. })));
    }

    #[test]
    fn shape_validation() {
        assert!(DenseMatrix::from_row_major(2, 2, &[1.0]).is_err());
        let a = DenseMatrix::zeros(2, 3);
        assert!(a.matvec(&[1.0, 2.0]).is_err());
        assert!(a.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn matvec_matches_manual() {
        let a = DenseMatrix::from_row_major(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]).unwrap(), vec![6.0, 15.0]);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(a[(1, 2)], 6.0);
    }
}
