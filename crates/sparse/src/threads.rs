//! Rank-local thread-count configuration and small helpers for the
//! deterministic threaded kernels.
//!
//! The thread count is process-global: it is read once from the
//! `RSPARSE_THREADS` environment variable (default 1 — fully serial, the
//! historical behavior) and can be overridden programmatically with
//! [`set_threads`], which is what the LISI adapters' reserved
//! `port.set("threads", ...)` option key calls.
//!
//! # Determinism contract
//!
//! Every threaded kernel in this crate is **bit-deterministic across
//! thread counts**:
//!
//! * elementwise kernels (SpMV rows, triangular-solve rows within a level,
//!   axpy/xpby) write disjoint outputs and perform the identical per-element
//!   arithmetic regardless of which thread runs them;
//! * reductions ([`crate::dense::pdot`]) accumulate fixed-size blocks
//!   ([`crate::dense::DOT_BLOCK`] elements, independent of the thread
//!   count) and combine the partial sums in block order on the calling
//!   thread.
//!
//! Consequently residual histories are bit-identical for any
//! `RSPARSE_THREADS` value, and for local lengths ≤ `DOT_BLOCK` they are
//! also bit-identical to the pre-threading serial code.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Hard cap on the configured thread count (matches the pool's own limit).
pub const MAX_THREADS: usize = rayon::pool::MAX_POOL_THREADS;

/// 0 = not yet initialized from the environment.
static THREADS: AtomicUsize = AtomicUsize::new(0);

fn clamp(n: usize) -> usize {
    n.clamp(1, MAX_THREADS)
}

/// The active rank-local thread count (≥ 1). First call reads
/// `RSPARSE_THREADS`; unset, unparsable or zero values mean 1.
#[inline]
pub fn active() -> usize {
    let t = THREADS.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    let init = std::env::var("RSPARSE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(clamp)
        .unwrap_or(1);
    // A benign race: concurrent initializers compute the same value.
    THREADS.store(init, Ordering::Relaxed);
    init
}

/// Set the rank-local thread count, clamped to `1..=MAX_THREADS`. Returns
/// the value actually installed. Overrides `RSPARSE_THREADS`.
pub fn set_threads(n: usize) -> usize {
    let t = clamp(n);
    THREADS.store(t, Ordering::Relaxed);
    t
}

/// A `Copy + Sync` view of a mutable slice for kernels whose threads write
/// provably disjoint elements (distinct rows of a level, distinct output
/// chunks). The unsafety is confined to `get`/`set`.
#[derive(Clone, Copy)]
pub struct SharedMutSlice<'a> {
    ptr: *mut f64,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [f64]>,
}

// SAFETY: access discipline (disjoint element sets per thread) is the
// caller's obligation, documented on `get`/`set`.
unsafe impl Send for SharedMutSlice<'_> {}
unsafe impl Sync for SharedMutSlice<'_> {}

impl<'a> SharedMutSlice<'a> {
    /// Wrap a mutable slice.
    pub fn new(slice: &'a mut [f64]) -> Self {
        SharedMutSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw base pointer, for callers that reborrow provably disjoint
    /// subranges as exclusive slices (see [`crate::csr::CsrMatrix::matvec_par_into`]).
    pub fn as_ptr(&self) -> *mut f64 {
        self.ptr
    }

    /// Read element `i`.
    ///
    /// # Safety
    /// `i < len`, and no other thread may be writing element `i`
    /// concurrently.
    #[inline]
    pub unsafe fn get(&self, i: usize) -> f64 {
        debug_assert!(i < self.len);
        unsafe { *self.ptr.add(i) }
    }

    /// Write element `i`.
    ///
    /// # Safety
    /// `i < len`, and no other thread may be reading or writing element `i`
    /// concurrently.
    #[inline]
    pub unsafe fn set(&self, i: usize, v: f64) {
        debug_assert!(i < self.len);
        unsafe { *self.ptr.add(i) = v }
    }
}

/// Split `0..len` into `threads` contiguous chunks and run `f(start, end)`
/// for each, in parallel over the pool when possible and serially (same
/// chunk boundaries, ascending order) otherwise. Deterministic for any
/// kernel whose chunks touch disjoint data: the chunk boundaries depend
/// only on `threads`, and elementwise work is order-independent.
pub fn for_each_chunk<F>(len: usize, threads: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    if len == 0 {
        return;
    }
    let t = threads.clamp(1, MAX_THREADS).min(len);
    let chunk = len.div_ceil(t);
    let run = |tid: usize| {
        let start = tid * chunk;
        let end = (start + chunk).min(len);
        if start < end {
            f(start, end);
        }
    };
    if t <= 1 || !rayon::pool::try_broadcast(t, run) {
        for tid in 0..t {
            run(tid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_threads_clamps() {
        assert_eq!(set_threads(0), 1);
        assert_eq!(set_threads(4), 4);
        assert_eq!(set_threads(MAX_THREADS + 7), MAX_THREADS);
        set_threads(1);
        assert_eq!(active(), 1);
    }

    #[test]
    fn chunks_cover_range_exactly_once() {
        for threads in [1usize, 2, 3, 8] {
            for len in [0usize, 1, 5, 1000] {
                let mut buf = vec![0.0f64; len];
                let out = SharedMutSlice::new(&mut buf);
                for_each_chunk(len, threads, |s, e| {
                    for i in s..e {
                        // Chunks are disjoint, so each element is written
                        // by exactly one thread.
                        unsafe { out.set(i, out.get(i) + 1.0) };
                    }
                });
                for (i, &v) in buf.iter().enumerate() {
                    assert_eq!(v, 1.0, "threads={threads} len={len} i={i}");
                }
            }
        }
    }
}
