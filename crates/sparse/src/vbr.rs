//! Variable block row — LISI's `SparseStruct::VBR`. Rows and columns are
//! grouped into variable-sized blocks; any block containing a nonzero is
//! stored as a dense column-major sub-matrix. The layout follows the
//! classic SPARSKIT/Aztec convention:
//!
//! * `rpntr[0..=nbr]` — first scalar row of each block row;
//! * `cpntr[0..=nbc]` — first scalar column of each block column;
//! * `bptr[0..=nbr]`  — extent of each block row inside `bindx`;
//! * `bindx`          — block-column index of every stored block;
//! * `indx[0..=bnnz]` — offset of every stored block inside `val`;
//! * `val`            — the dense blocks, column-major within a block.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::{SparseError, SparseResult};

/// A sparse matrix in VBR form.
#[derive(Debug, Clone, PartialEq)]
pub struct VbrMatrix {
    rpntr: Vec<usize>,
    cpntr: Vec<usize>,
    bptr: Vec<usize>,
    bindx: Vec<usize>,
    indx: Vec<usize>,
    val: Vec<f64>,
}

impl VbrMatrix {
    /// Build from raw parts, validating the full layout.
    pub fn from_parts(
        rpntr: Vec<usize>,
        cpntr: Vec<usize>,
        bptr: Vec<usize>,
        bindx: Vec<usize>,
        indx: Vec<usize>,
        val: Vec<f64>,
    ) -> SparseResult<Self> {
        let check_partition = |p: &[usize], what: &str| -> SparseResult<()> {
            if p.is_empty() || p[0] != 0 {
                return Err(SparseError::BadBlockPartition(format!(
                    "{what} must start at 0"
                )));
            }
            if p.windows(2).any(|w| w[1] <= w[0]) {
                return Err(SparseError::BadBlockPartition(format!(
                    "{what} must be strictly increasing"
                )));
            }
            Ok(())
        };
        check_partition(&rpntr, "rpntr")?;
        check_partition(&cpntr, "cpntr")?;
        let nbr = rpntr.len() - 1;
        let nbc = cpntr.len() - 1;
        if bptr.len() != nbr + 1 {
            return Err(SparseError::LengthMismatch {
                what: "VBR bptr",
                expected: nbr + 1,
                got: bptr.len(),
            });
        }
        if bptr[0] != 0 || *bptr.last().expect("nonempty") != bindx.len() {
            return Err(SparseError::MalformedPointers("bptr bounds"));
        }
        if bptr.windows(2).any(|w| w[1] < w[0]) {
            return Err(SparseError::MalformedPointers("bptr must be non-decreasing"));
        }
        if indx.len() != bindx.len() + 1 {
            return Err(SparseError::LengthMismatch {
                what: "VBR indx",
                expected: bindx.len() + 1,
                got: indx.len(),
            });
        }
        if indx[0] != 0 || *indx.last().expect("nonempty") != val.len() {
            return Err(SparseError::MalformedPointers("indx bounds"));
        }
        // Every stored block's extent must match its block dimensions.
        for br in 0..nbr {
            let brows = rpntr[br + 1] - rpntr[br];
            for k in bptr[br]..bptr[br + 1] {
                let bc = bindx[k];
                if bc >= nbc {
                    return Err(SparseError::IndexOutOfBounds {
                        axis: "block column",
                        index: bc,
                        bound: nbc,
                    });
                }
                let bcols = cpntr[bc + 1] - cpntr[bc];
                if indx[k + 1] - indx[k] != brows * bcols {
                    return Err(SparseError::BadBlockPartition(format!(
                        "block ({br},{bc}) has {} values, expected {}",
                        indx[k + 1] - indx[k],
                        brows * bcols
                    )));
                }
            }
        }
        Ok(VbrMatrix { rpntr, cpntr, bptr, bindx, indx, val })
    }

    /// Scalar shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (
            *self.rpntr.last().expect("validated"),
            *self.cpntr.last().expect("validated"),
        )
    }

    /// Block shape `(block_rows, block_cols)`.
    pub fn block_shape(&self) -> (usize, usize) {
        (self.rpntr.len() - 1, self.cpntr.len() - 1)
    }

    /// Number of stored dense blocks.
    pub fn stored_blocks(&self) -> usize {
        self.bindx.len()
    }

    /// Number of stored scalar values (including explicit zeros inside
    /// blocks — the padding cost of a block format).
    pub fn stored_values(&self) -> usize {
        self.val.len()
    }

    /// Construct from CSR given block partitions; every block with at
    /// least one nonzero is stored densely.
    pub fn from_csr(a: &CsrMatrix, rpntr: &[usize], cpntr: &[usize]) -> SparseResult<Self> {
        let (rows, cols) = a.shape();
        if rpntr.last() != Some(&rows) || cpntr.last() != Some(&cols) {
            return Err(SparseError::BadBlockPartition(
                "partitions must cover the matrix".into(),
            ));
        }
        let nbr = rpntr.len() - 1;
        let nbc = cpntr.len() - 1;
        // Map each scalar column to its block column.
        let mut col_block = vec![0usize; cols];
        for bc in 0..nbc {
            for cb in &mut col_block[cpntr[bc]..cpntr[bc + 1]] {
                *cb = bc;
            }
        }
        let mut bptr = vec![0usize; nbr + 1];
        let mut bindx = Vec::new();
        let mut indx = vec![0usize];
        let mut val = Vec::new();
        for br in 0..nbr {
            let brows = rpntr[br + 1] - rpntr[br];
            // Which block columns are populated in this block row?
            let mut present = vec![false; nbc];
            for r in rpntr[br]..rpntr[br + 1] {
                for &c in a.row(r).0 {
                    present[col_block[c]] = true;
                }
            }
            for bc in 0..nbc {
                if !present[bc] {
                    continue;
                }
                let bcols = cpntr[bc + 1] - cpntr[bc];
                let base = val.len();
                val.resize(base + brows * bcols, 0.0);
                for (lr, r) in (rpntr[br]..rpntr[br + 1]).enumerate() {
                    let (cs, vs) = a.row(r);
                    for (&c, &v) in cs.iter().zip(vs) {
                        if col_block[c] == bc {
                            let lc = c - cpntr[bc];
                            // Column-major within the block.
                            val[base + lc * brows + lr] = v;
                        }
                    }
                }
                bindx.push(bc);
                indx.push(val.len());
            }
            bptr[br + 1] = bindx.len();
        }
        VbrMatrix::from_parts(rpntr.to_vec(), cpntr.to_vec(), bptr, bindx, indx, val)
    }

    /// Convert to CSR, dropping the explicit zeros block padding added.
    pub fn to_csr(&self) -> CsrMatrix {
        let (rows, cols) = self.shape();
        let mut coo = CooMatrix::new(rows, cols);
        let nbr = self.rpntr.len() - 1;
        for br in 0..nbr {
            let brows = self.rpntr[br + 1] - self.rpntr[br];
            for k in self.bptr[br]..self.bptr[br + 1] {
                let bc = self.bindx[k];
                let bcols = self.cpntr[bc + 1] - self.cpntr[bc];
                let base = self.indx[k];
                for lc in 0..bcols {
                    for lr in 0..brows {
                        let v = self.val[base + lc * brows + lr];
                        if v != 0.0 {
                            coo.push(self.rpntr[br] + lr, self.cpntr[bc] + lc, v)
                                .expect("indices valid by construction");
                        }
                    }
                }
            }
        }
        coo.to_csr()
    }

    /// y = A·x using block kernels.
    pub fn matvec(&self, x: &[f64]) -> SparseResult<Vec<f64>> {
        let (rows, cols) = self.shape();
        if x.len() != cols {
            return Err(SparseError::LengthMismatch {
                what: "matvec input",
                expected: cols,
                got: x.len(),
            });
        }
        let mut y = vec![0.0; rows];
        let nbr = self.rpntr.len() - 1;
        for br in 0..nbr {
            let r0 = self.rpntr[br];
            let brows = self.rpntr[br + 1] - r0;
            for k in self.bptr[br]..self.bptr[br + 1] {
                let bc = self.bindx[k];
                let c0 = self.cpntr[bc];
                let bcols = self.cpntr[bc + 1] - c0;
                let base = self.indx[k];
                for lc in 0..bcols {
                    let xc = x[c0 + lc];
                    if xc != 0.0 {
                        let col = &self.val[base + lc * brows..base + (lc + 1) * brows];
                        for (lr, &v) in col.iter().enumerate() {
                            y[r0 + lr] += v * xc;
                        }
                    }
                }
            }
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4×4 with 2×2 blocks:
    /// [ 1 2 | 0 0 ]
    /// [ 3 4 | 0 0 ]
    /// [ 0 0 | 5 0 ]
    /// [ 0 6 | 0 7 ]
    fn sample_csr() -> CsrMatrix {
        let coo = CooMatrix::from_triplets(
            4,
            4,
            &[0, 0, 1, 1, 2, 3, 3],
            &[0, 1, 0, 1, 2, 1, 3],
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
        )
        .unwrap();
        coo.to_csr()
    }

    #[test]
    fn from_csr_stores_touched_blocks_only() {
        let a = sample_csr();
        let v = VbrMatrix::from_csr(&a, &[0, 2, 4], &[0, 2, 4]).unwrap();
        assert_eq!(v.shape(), (4, 4));
        assert_eq!(v.block_shape(), (2, 2));
        // Blocks (0,0), (1,0) (because of the 6 at (3,1)), (1,1).
        assert_eq!(v.stored_blocks(), 3);
        assert_eq!(v.stored_values(), 12);
    }

    #[test]
    fn vbr_round_trips_through_csr() {
        let a = sample_csr();
        let v = VbrMatrix::from_csr(&a, &[0, 2, 4], &[0, 2, 4]).unwrap();
        assert_eq!(v.to_csr(), a);
    }

    #[test]
    fn uneven_blocks_round_trip() {
        let a = sample_csr();
        let v = VbrMatrix::from_csr(&a, &[0, 1, 4], &[0, 3, 4]).unwrap();
        assert_eq!(v.to_csr(), a);
    }

    #[test]
    fn matvec_matches_csr() {
        let a = sample_csr();
        let v = VbrMatrix::from_csr(&a, &[0, 2, 4], &[0, 2, 4]).unwrap();
        let x = vec![1.0, -1.0, 2.0, 0.5];
        assert_eq!(v.matvec(&x).unwrap(), a.matvec(&x).unwrap());
        assert!(v.matvec(&[1.0]).is_err());
    }

    #[test]
    fn partition_validation() {
        let a = sample_csr();
        // Partition not covering the matrix.
        assert!(VbrMatrix::from_csr(&a, &[0, 2], &[0, 2, 4]).is_err());
        // Non-monotone partition.
        assert!(VbrMatrix::from_parts(
            vec![0, 2, 1],
            vec![0, 1],
            vec![0, 0, 0],
            vec![],
            vec![0],
            vec![],
        )
        .is_err());
        // Block size mismatch in indx.
        assert!(VbrMatrix::from_parts(
            vec![0, 2],
            vec![0, 2],
            vec![0, 1],
            vec![0],
            vec![0, 3],
            vec![1.0, 2.0, 3.0],
        )
        .is_err());
    }
}
