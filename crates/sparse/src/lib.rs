//! `rsparse` — sparse linear-algebra substrate for the CCA-LISI
//! reproduction.
//!
//! The LISI interface (paper §5.3, §7.2) accepts assembled linear systems
//! in several storage formats — COO, CSR, MSR, VBR and FEM element
//! contributions — and each underlying solver package keeps its own native
//! structure. This crate provides:
//!
//! * the storage formats themselves ([`CooMatrix`], [`CsrMatrix`],
//!   [`CscMatrix`], [`MsrMatrix`], [`VbrMatrix`], [`FemAssembly`]) with
//!   validated construction and conversions between all of them;
//! * dense kernels ([`dense`]) used by every solver: dot products, axpy,
//!   norms, and a small dense LU for reference solutions;
//! * sparse kernels: serial and thread-parallel SpMV, transpose,
//!   sparse×sparse products (needed for Galerkin coarse grids), matrix
//!   addition and scaling;
//! * rank-local threading ([`threads`]) and level-set analysis for
//!   sparse triangular solves ([`schedule`]): a cached [`LevelSchedule`]
//!   runs independent rows of each dependency level in parallel over the
//!   shim worker pool, bit-identical to the serial sweep at any
//!   `RSPARSE_THREADS` value;
//! * MatrixMarket I/O ([`io`]);
//! * the distributed layer ([`partition`], [`dist`]): block-row partitioned
//!   matrices and vectors over an [`rcomm`] communicator, with an
//!   automatically constructed halo-exchange plan for parallel SpMV, and
//!   reductions for parallel dot products/norms — exactly the data
//!   distribution LISI assumes (paper §5.4);
//! * adaptive SpMV formats ([`sell`], [`bcsr`]) behind an autotuned
//!   selector ([`autotune`]): SELL-C-σ and block-CSR kernels chosen per
//!   matrix at plan time (`RSPARSE_FORMAT` / `port.set("format", ...)`),
//!   bit-identical to the CSR kernels at every thread count;
//! * reproducible random test-matrix generators ([`generate`]).

#![warn(missing_docs)]

pub mod autotune;
pub mod bcsr;
pub mod convert;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod dist;
pub mod error;
pub mod fem;
pub mod generate;
pub mod io;
pub mod msr;
pub mod ops;
pub mod partition;
pub mod schedule;
pub mod sell;
pub mod threads;
pub mod vbr;

pub use autotune::{Format, FormatMatrix, FormatPolicy};
pub use bcsr::BcsrMatrix;
pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use dist::{DistCsrMatrix, DistVector};
pub use error::{SparseError, SparseResult};
pub use fem::FemAssembly;
pub use msr::MsrMatrix;
pub use partition::BlockRowPartition;
pub use schedule::LevelSchedule;
pub use sell::SellMatrix;
pub use vbr::VbrMatrix;
