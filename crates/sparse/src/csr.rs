//! Compressed sparse row — the workhorse format every solver package in
//! this workspace uses internally, and the `CSR` member of LISI's
//! `SparseStruct` enum.

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use crate::dense::DenseMatrix;
use crate::error::{SparseError, SparseResult};
use crate::threads::{self, SharedMutSlice};

/// Minimum row count before `matvec_par_into` dispatches to the pool:
/// below this the per-dispatch synchronization dwarfs the row work.
const PAR_SPMV_MIN_ROWS: usize = 2048;

/// One row's dot product against a (renumbered) input vector — the single
/// inner loop every SpMV variant in this crate shares (serial, threaded,
/// and the distributed interior/boundary scatter kernels).
#[inline(always)]
pub(crate) fn row_dot(cols: &[usize], vals: &[f64], x: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (&c, &v) in cols.iter().zip(vals) {
        acc += v * x[c];
    }
    acc
}

/// Column-group width of the multi-vector kernels: each sweep over a
/// row's entries feeds up to this many right-hand sides from stack
/// accumulators, so the matrix is read once per group instead of once
/// per vector.
pub(crate) const MULTI_CHUNK: usize = 8;

/// One row's dot products against `acc.len()` input vectors stored as
/// contiguous columns of `xs` (column `l` at `xs[l·x_stride..]`). Each
/// column accumulates in exactly [`row_dot`]'s entry order from a `+0.0`
/// start, so per-column results are bit-identical to the single-vector
/// kernel. Columns are processed in groups of [`MULTI_CHUNK`] with stack
/// accumulators.
#[inline]
pub(crate) fn row_dot_multi(
    cols: &[usize],
    vals: &[f64],
    xs: &[f64],
    x_stride: usize,
    acc: &mut [f64],
) {
    let k = acc.len();
    let mut l0 = 0;
    while l0 < k {
        let kc = (k - l0).min(MULTI_CHUNK);
        let mut a = [0.0f64; MULTI_CHUNK];
        for (&c, &v) in cols.iter().zip(vals) {
            let base = l0 * x_stride + c;
            for (l, al) in a.iter_mut().enumerate().take(kc) {
                *al += v * xs[base + l * x_stride];
            }
        }
        acc[l0..l0 + kc].copy_from_slice(&a[..kc]);
        l0 += kc;
    }
}

/// A sparse matrix in CSR form with the usual invariants: `row_ptr` has
/// `rows + 1` monotone entries, `col_idx`/`values` have `nnz` entries, and
/// column indices are strictly increasing within each row.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from raw parts, validating all invariants (sorted, in-bounds,
    /// duplicate-free column indices per row; monotone pointers).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> SparseResult<Self> {
        if row_ptr.len() != rows + 1 {
            return Err(SparseError::LengthMismatch {
                what: "CSR row_ptr",
                expected: rows + 1,
                got: row_ptr.len(),
            });
        }
        if row_ptr[0] != 0 {
            return Err(SparseError::MalformedPointers("row_ptr[0] must be 0"));
        }
        if *row_ptr.last().expect("len >= 1") != values.len() {
            return Err(SparseError::MalformedPointers("row_ptr[rows] must equal nnz"));
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::LengthMismatch {
                what: "CSR col_idx",
                expected: values.len(),
                got: col_idx.len(),
            });
        }
        for w in row_ptr.windows(2) {
            if w[1] < w[0] {
                return Err(SparseError::MalformedPointers("row_ptr must be non-decreasing"));
            }
        }
        for r in 0..rows {
            let seg = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for (k, &c) in seg.iter().enumerate() {
                if c >= cols {
                    return Err(SparseError::IndexOutOfBounds {
                        axis: "column",
                        index: c,
                        bound: cols,
                    });
                }
                if k > 0 && seg[k - 1] >= c {
                    return Err(SparseError::MalformedPointers(
                        "column indices must be strictly increasing within a row",
                    ));
                }
            }
        }
        Ok(CsrMatrix { rows, cols, row_ptr, col_idx, values })
    }

    /// Build from parts that are known valid (internal fast path for
    /// conversions that construct invariant-satisfying arrays).
    pub(crate) fn from_parts_unchecked(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), rows + 1);
        debug_assert_eq!(col_idx.len(), values.len());
        CsrMatrix { rows, cols, row_ptr, col_idx, values }
    }

    /// n×n identity.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row pointer array (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array (`nnz` entries, sorted within each row).
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Value array (`nnz` entries).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable value array (pattern is immutable — the "same sparsity
    /// pattern, new values" reuse scenario of paper §5.2d).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consume into raw parts `(rows, cols, row_ptr, col_idx, values)`.
    pub fn into_parts(self) -> (usize, usize, Vec<usize>, Vec<usize>, Vec<f64>) {
        (self.rows, self.cols, self.row_ptr, self.col_idx, self.values)
    }

    /// The `(col_idx, values)` slices of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Value at `(i, j)` — binary search within the row; zero if absent.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Iterate `(row, col, value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// y = A·x (serial).
    pub fn matvec(&self, x: &[f64]) -> SparseResult<Vec<f64>> {
        if x.len() != self.cols {
            return Err(SparseError::LengthMismatch {
                what: "matvec input",
                expected: self.cols,
                got: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        Ok(y)
    }

    /// y[k] = A.row(r0 + k) · x for the contiguous row range
    /// `r0..r0 + y.len()` — the one chunk kernel behind `matvec_into` and
    /// `matvec_par_into` (threads get disjoint output chunks).
    #[inline]
    pub(crate) fn spmv_chunk(&self, r0: usize, x: &[f64], y: &mut [f64]) {
        for (k, yi) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(r0 + k);
            *yi = row_dot(cols, vals, x);
        }
    }

    /// y = A·x into a caller-provided buffer (no allocation; hot path).
    #[inline]
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y.len(), self.rows);
        self.spmv_chunk(0, x, y);
    }

    /// y = A·x over the rank-local thread pool, into a caller-provided
    /// buffer — allocation-free on every call. Rows are split into one
    /// contiguous chunk per thread ([`crate::threads::active`] of them),
    /// each writing its own output range, so the result is bit-identical
    /// to [`Self::matvec_into`] at any thread count. Short matrices (and a
    /// busy pool) run serially.
    pub fn matvec_par_into(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y.len(), self.rows);
        let threads = threads::active();
        if threads > 1 && self.rows >= PAR_SPMV_MIN_ROWS {
            let ys = SharedMutSlice::new(y);
            threads::for_each_chunk(self.rows, threads, |s, e| {
                // SAFETY: `for_each_chunk` hands out disjoint ranges; we
                // reborrow each as an exclusive chunk.
                let chunk = unsafe {
                    std::slice::from_raw_parts_mut(ys.as_ptr().add(s), e - s)
                };
                self.spmv_chunk(s, x, chunk);
            });
        } else {
            self.spmv_chunk(0, x, y);
        }
    }

    /// y = A·x over the rank-local thread pool (allocating wrapper around
    /// [`Self::matvec_par_into`] — call that directly on repeat
    /// applications to avoid the per-call output allocation).
    pub fn matvec_par(&self, x: &[f64]) -> SparseResult<Vec<f64>> {
        if x.len() != self.cols {
            return Err(SparseError::LengthMismatch {
                what: "matvec input",
                expected: self.cols,
                got: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        self.matvec_par_into(x, &mut y);
        Ok(y)
    }

    /// yᵀ = xᵀ·A, i.e. y = Aᵀ·x, without forming the transpose.
    pub fn matvec_transpose(&self, x: &[f64]) -> SparseResult<Vec<f64>> {
        if x.len() != self.rows {
            return Err(SparseError::LengthMismatch {
                what: "transpose matvec input",
                expected: self.rows,
                got: x.len(),
            });
        }
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            let (cols, vals) = self.row(i);
            if xi != 0.0 {
                for (&c, &v) in cols.iter().zip(vals) {
                    y[c] += v * xi;
                }
            }
        }
        Ok(y)
    }

    /// The main diagonal as a dense vector (zeros where absent). Errors if
    /// not square.
    pub fn diagonal(&self) -> SparseResult<Vec<f64>> {
        if self.rows != self.cols {
            return Err(SparseError::NotSquare { rows: self.rows, cols: self.cols });
        }
        Ok((0..self.rows).map(|i| self.get(i, i)).collect())
    }

    /// Explicit transpose in CSR form (equivalently, this matrix viewed as
    /// CSC). O(nnz + rows + cols).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let mut next = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        for (r, c, v) in self.iter() {
            let slot = next[c];
            col_idx[slot] = r;
            values[slot] = v;
            next[c] += 1;
        }
        // Row-major iteration fills each transposed row in increasing
        // original-row order, so indices are already sorted.
        CsrMatrix::from_parts_unchecked(self.cols, self.rows, counts, col_idx, values)
    }

    /// View as CSC (shares semantics with `transpose`, different type).
    pub fn to_csc(&self) -> CscMatrix {
        let t = self.transpose();
        let (rows, cols, ptr, idx, vals) = t.into_parts();
        // t is cols×rows in CSR == self in CSC.
        CscMatrix::from_parts_unchecked(cols, rows, ptr, idx, vals)
    }

    /// Convert to COO triplets.
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::new(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            coo.push(r, c, v).expect("indices valid by invariant");
        }
        coo
    }

    /// Densify (tests and small reference problems only).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            d[(r, c)] = v;
        }
        d
    }

    /// Extract the contiguous row block `[r0, r1)` as a standalone CSR
    /// matrix with the full column space — the block-row distribution
    /// primitive (paper §5.4).
    pub fn row_block(&self, r0: usize, r1: usize) -> SparseResult<CsrMatrix> {
        if r1 < r0 || r1 > self.rows {
            return Err(SparseError::IndexOutOfBounds {
                axis: "row",
                index: r1,
                bound: self.rows + 1,
            });
        }
        let lo = self.row_ptr[r0];
        let hi = self.row_ptr[r1];
        let row_ptr: Vec<usize> = self.row_ptr[r0..=r1].iter().map(|p| p - lo).collect();
        Ok(CsrMatrix::from_parts_unchecked(
            r1 - r0,
            self.cols,
            row_ptr,
            self.col_idx[lo..hi].to_vec(),
            self.values[lo..hi].to_vec(),
        ))
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        crate::dense::norm2(&self.values)
    }

    /// Infinity norm (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).1.iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Symmetric permutation B = A(p, p): entry (i, j) moves to
    /// `(inv_p[i], inv_p[j])` where `perm[k]` is the old index placed at new
    /// position k. Used by fill-reducing orderings.
    pub fn permute_symmetric(&self, perm: &[usize]) -> SparseResult<CsrMatrix> {
        if self.rows != self.cols {
            return Err(SparseError::NotSquare { rows: self.rows, cols: self.cols });
        }
        if perm.len() != self.rows {
            return Err(SparseError::LengthMismatch {
                what: "permutation",
                expected: self.rows,
                got: perm.len(),
            });
        }
        let n = self.rows;
        let mut inv = vec![usize::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            if old >= n || inv[old] != usize::MAX {
                return Err(SparseError::BadBlockPartition(format!(
                    "invalid permutation entry {old} at position {new}"
                )));
            }
            inv[old] = new;
        }
        let mut coo = CooMatrix::new(n, n);
        for (r, c, v) in self.iter() {
            coo.push(inv[r], inv[c], v).expect("bounds hold");
        }
        Ok(coo.to_csr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// [ 4 1 0 ]
    /// [ 1 4 1 ]
    /// [ 0 1 4 ]
    fn tridiag() -> CsrMatrix {
        CsrMatrix::from_parts(
            3,
            3,
            vec![0, 2, 5, 7],
            vec![0, 1, 0, 1, 2, 1, 2],
            vec![4.0, 1.0, 1.0, 4.0, 1.0, 1.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_malformed_inputs() {
        // Wrong ptr length.
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // ptr not starting at 0.
        assert!(CsrMatrix::from_parts(1, 1, vec![1, 1], vec![], vec![]).is_err());
        // Last ptr != nnz.
        assert!(CsrMatrix::from_parts(1, 1, vec![0, 2], vec![0], vec![1.0]).is_err());
        // Decreasing ptr.
        assert!(
            CsrMatrix::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err()
        );
        // Out-of-bounds column.
        assert!(CsrMatrix::from_parts(1, 1, vec![0, 1], vec![3], vec![1.0]).is_err());
        // Unsorted columns within a row.
        assert!(
            CsrMatrix::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).is_err()
        );
        // Duplicate column within a row.
        assert!(
            CsrMatrix::from_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 1.0]).is_err()
        );
    }

    #[test]
    fn accessors_and_get() {
        let a = tridiag();
        assert_eq!(a.shape(), (3, 3));
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.row(1).0, &[0, 1, 2]);
        assert_eq!(a.diagonal().unwrap(), vec![4.0, 4.0, 4.0]);
    }

    #[test]
    fn matvec_variants_agree() {
        let a = tridiag();
        let x = vec![1.0, 2.0, 3.0];
        let y = a.matvec(&x).unwrap();
        assert_eq!(y, vec![6.0, 12.0, 14.0]);
        assert_eq!(a.matvec_par(&x).unwrap(), y);
        let mut y2 = vec![0.0; 3];
        a.matvec_into(&x, &mut y2);
        assert_eq!(y2, y);
    }

    #[test]
    fn matvec_transpose_matches_explicit_transpose() {
        let a = CsrMatrix::from_parts(
            2,
            3,
            vec![0, 2, 3],
            vec![0, 2, 1],
            vec![1.0, 2.0, 3.0],
        )
        .unwrap();
        let x = vec![1.0, -1.0];
        let via_implicit = a.matvec_transpose(&x).unwrap();
        let via_explicit = a.transpose().matvec(&x).unwrap();
        assert_eq!(via_implicit, via_explicit);
        assert_eq!(via_implicit, vec![1.0, -3.0, 2.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = tridiag();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
    }

    #[test]
    fn row_block_extracts_partition() {
        let a = tridiag();
        let b = a.row_block(1, 3).unwrap();
        assert_eq!(b.shape(), (2, 3));
        assert_eq!(b.row(0).0, &[0, 1, 2]);
        assert_eq!(b.row(1).0, &[1, 2]);
        assert!(a.row_block(2, 5).is_err());
    }

    #[test]
    fn identity_behaves() {
        let i = CsrMatrix::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.matvec(&x).unwrap(), x);
        assert_eq!(i.nnz(), 4);
    }

    #[test]
    fn permute_symmetric_reverses() {
        let a = tridiag();
        let perm = vec![2, 1, 0];
        let b = a.permute_symmetric(&perm).unwrap();
        // Reversal of a symmetric tridiagonal matrix is itself.
        assert_eq!(b, a);
        // Invalid permutations are rejected.
        assert!(a.permute_symmetric(&[0, 0, 1]).is_err());
        assert!(a.permute_symmetric(&[0, 1]).is_err());
    }

    #[test]
    fn norms() {
        let a = tridiag();
        assert!((a.norm_inf() - 6.0).abs() < 1e-15);
        // Frobenius: three 4s and four 1s → √(3·16 + 4·1) = √52.
        assert!((a.norm_fro() - 52.0f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn values_mut_allows_pattern_reuse() {
        let mut a = tridiag();
        for v in a.values_mut() {
            *v *= 2.0;
        }
        assert_eq!(a.get(1, 1), 8.0);
        assert_eq!(a.nnz(), 7);
    }
}
