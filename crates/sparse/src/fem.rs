//! Finite-element assembly input — LISI's `SparseStruct::FEM`. The
//! application hands over *element* contributions (a dense element matrix
//! plus the global indices of its local degrees of freedom); assembly sums
//! them into a global sparse matrix. This is the format scientific codes
//! have "in hand" before any sparse structure exists, and the reason COO
//! duplicate-summing semantics matter.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::{SparseError, SparseResult};

/// One element contribution: `dofs.len() × dofs.len()` dense matrix in
/// row-major order plus the global indices it scatters to.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Global degree-of-freedom indices of the element's local nodes.
    pub dofs: Vec<usize>,
    /// Row-major dense element matrix of size `dofs.len()²`.
    pub matrix: Vec<f64>,
}

impl Element {
    /// Build one element, checking the matrix size.
    pub fn new(dofs: Vec<usize>, matrix: Vec<f64>) -> SparseResult<Self> {
        let k = dofs.len();
        if matrix.len() != k * k {
            return Err(SparseError::LengthMismatch {
                what: "element matrix",
                expected: k * k,
                got: matrix.len(),
            });
        }
        Ok(Element { dofs, matrix })
    }
}

/// A collection of element contributions awaiting assembly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FemAssembly {
    n: usize,
    elements: Vec<Element>,
}

impl FemAssembly {
    /// Empty assembly over `n` global degrees of freedom.
    pub fn new(n: usize) -> Self {
        FemAssembly { n, elements: Vec::new() }
    }

    /// Global problem size.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Number of elements added so far.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Borrow the raw elements.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Add one element, validating all its dof indices.
    pub fn add_element(&mut self, element: Element) -> SparseResult<()> {
        for &d in &element.dofs {
            if d >= self.n {
                return Err(SparseError::IndexOutOfBounds {
                    axis: "dof",
                    index: d,
                    bound: self.n,
                });
            }
        }
        self.elements.push(element);
        Ok(())
    }

    /// Assemble into COO (duplicates kept; summed on CSR conversion).
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::new(self.n, self.n);
        for e in &self.elements {
            let k = e.dofs.len();
            for (li, &gi) in e.dofs.iter().enumerate() {
                for (lj, &gj) in e.dofs.iter().enumerate() {
                    let v = e.matrix[li * k + lj];
                    if v != 0.0 {
                        coo.push(gi, gj, v).expect("dofs validated on insert");
                    }
                }
            }
        }
        coo
    }

    /// Assemble straight to CSR (overlapping contributions summed).
    pub fn to_csr(&self) -> CsrMatrix {
        self.to_coo().to_csr()
    }

    /// Assemble an element-wise right-hand side: `loads[i]` scatters into
    /// the global vector at `elements[i].dofs`.
    pub fn assemble_rhs(&self, loads: &[Vec<f64>]) -> SparseResult<Vec<f64>> {
        if loads.len() != self.elements.len() {
            return Err(SparseError::LengthMismatch {
                what: "element loads",
                expected: self.elements.len(),
                got: loads.len(),
            });
        }
        let mut b = vec![0.0; self.n];
        for (e, load) in self.elements.iter().zip(loads) {
            if load.len() != e.dofs.len() {
                return Err(SparseError::LengthMismatch {
                    what: "element load vector",
                    expected: e.dofs.len(),
                    got: load.len(),
                });
            }
            for (&d, &v) in e.dofs.iter().zip(load) {
                b[d] += v;
            }
        }
        Ok(b)
    }
}

/// Assemble a 1-D linear-element stiffness matrix for −u″ on `n + 1`
/// equally spaced nodes (a standard smoke-test problem whose assembled
/// matrix is the scaled tridiagonal [−1, 2, −1]).
pub fn stiffness_1d(n_elements: usize) -> FemAssembly {
    let n = n_elements + 1;
    let h = 1.0 / n_elements as f64;
    let mut fem = FemAssembly::new(n);
    let k = 1.0 / h;
    for e in 0..n_elements {
        fem.add_element(
            Element::new(vec![e, e + 1], vec![k, -k, -k, k]).expect("square by construction"),
        )
        .expect("indices in range");
    }
    fem
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_matrix_size_is_validated() {
        assert!(Element::new(vec![0, 1], vec![1.0, 2.0, 3.0]).is_err());
        assert!(Element::new(vec![0, 1], vec![1.0; 4]).is_ok());
    }

    #[test]
    fn dof_bounds_are_validated() {
        let mut fem = FemAssembly::new(2);
        let e = Element::new(vec![0, 5], vec![1.0; 4]).unwrap();
        assert!(fem.add_element(e).is_err());
    }

    #[test]
    fn overlapping_elements_sum() {
        // Two 2-dof elements sharing dof 1.
        let mut fem = FemAssembly::new(3);
        fem.add_element(Element::new(vec![0, 1], vec![1.0, -1.0, -1.0, 1.0]).unwrap())
            .unwrap();
        fem.add_element(Element::new(vec![1, 2], vec![1.0, -1.0, -1.0, 1.0]).unwrap())
            .unwrap();
        let a = fem.to_csr();
        // Assembled: [1 -1 0; -1 2 -1; 0 -1 1]
        assert_eq!(a.get(1, 1), 2.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 2), -1.0);
        assert_eq!(a.get(0, 2), 0.0);
    }

    #[test]
    fn stiffness_1d_matches_finite_differences() {
        let fem = stiffness_1d(4);
        assert_eq!(fem.element_count(), 4);
        let a = fem.to_csr();
        let h_inv = 4.0;
        // Interior row: (1/h)·[−1, 2, −1].
        assert_eq!(a.get(2, 1), -h_inv);
        assert_eq!(a.get(2, 2), 2.0 * h_inv);
        assert_eq!(a.get(2, 3), -h_inv);
        // Boundary rows have a single off-diagonal.
        assert_eq!(a.get(0, 0), h_inv);
    }

    #[test]
    fn rhs_assembly_scatters_and_sums() {
        let mut fem = FemAssembly::new(3);
        fem.add_element(Element::new(vec![0, 1], vec![0.0; 4]).unwrap()).unwrap();
        fem.add_element(Element::new(vec![1, 2], vec![0.0; 4]).unwrap()).unwrap();
        let b = fem.assemble_rhs(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(b, vec![1.0, 5.0, 4.0]);
        assert!(fem.assemble_rhs(&[vec![1.0, 2.0]]).is_err());
        assert!(fem.assemble_rhs(&[vec![1.0], vec![1.0, 1.0]]).is_err());
    }
}
