//! Distributed block-row matrices and vectors over an [`rcomm`]
//! communicator.
//!
//! This is the parallel layout the paper's LISI assumes (§5.4): the
//! coefficient matrix, right-hand side and solution are divided conformally
//! into block rows, one block per processor. A [`DistCsrMatrix`] stores its
//! local rows (with *global* column indices) and, at construction, builds a
//! **halo-exchange plan**: which remote vector entries its rows touch, who
//! owns them, and which of its own entries other ranks need. A parallel
//! matvec is then: post sends of owned boundary entries, receive ghosts,
//! multiply the locally compiled matrix against `[x_local, ghosts]`.
//! Dot products and norms reduce over the communicator.

use rcomm::Communicator;

use crate::csr::CsrMatrix;
use crate::dense;
use crate::error::{SparseError, SparseResult};
use crate::partition::BlockRowPartition;

/// Reserved user-level tag for halo traffic.
const TAG_HALO: rcomm::Tag = 7001;

/// A block-row-distributed dense vector: each rank owns one contiguous
/// chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct DistVector {
    partition: BlockRowPartition,
    rank: usize,
    local: Vec<f64>,
}

impl DistVector {
    /// Wrap a local chunk. The chunk length must match the partition.
    pub fn from_local(
        partition: BlockRowPartition,
        rank: usize,
        local: Vec<f64>,
    ) -> SparseResult<Self> {
        let expect = partition.local_rows(rank);
        if local.len() != expect {
            return Err(SparseError::LengthMismatch {
                what: "local vector chunk",
                expected: expect,
                got: local.len(),
            });
        }
        Ok(DistVector { partition, rank, local })
    }

    /// Zero vector conforming to `partition`.
    pub fn zeros(partition: BlockRowPartition, rank: usize) -> Self {
        let n = partition.local_rows(rank);
        DistVector { partition, rank, local: vec![0.0; n] }
    }

    /// Take this rank's chunk of a replicated global vector.
    pub fn from_global(
        partition: BlockRowPartition,
        rank: usize,
        global: &[f64],
    ) -> SparseResult<Self> {
        if global.len() != partition.global_rows() {
            return Err(SparseError::LengthMismatch {
                what: "global vector",
                expected: partition.global_rows(),
                got: global.len(),
            });
        }
        let r = partition.range(rank);
        Ok(DistVector { partition, rank, local: global[r].to_vec() })
    }

    /// The owning partition.
    pub fn partition(&self) -> &BlockRowPartition {
        &self.partition
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Borrow the local chunk.
    pub fn local(&self) -> &[f64] {
        &self.local
    }

    /// Mutably borrow the local chunk.
    pub fn local_mut(&mut self) -> &mut [f64] {
        &mut self.local
    }

    /// Global length.
    pub fn global_len(&self) -> usize {
        self.partition.global_rows()
    }

    /// Parallel dot product (local dot + allreduce).
    pub fn dot(&self, other: &DistVector, comm: &Communicator) -> SparseResult<f64> {
        if self.partition != other.partition {
            return Err(SparseError::BadBlockPartition(
                "dot operands have different partitions".into(),
            ));
        }
        let local = dense::dot(&self.local, &other.local);
        Ok(comm.allreduce(local, rcomm::sum)?)
    }

    /// Parallel 2-norm.
    pub fn norm2(&self, comm: &Communicator) -> SparseResult<f64> {
        Ok(self.dot(self, comm)?.sqrt())
    }

    /// Parallel ∞-norm.
    pub fn norm_inf(&self, comm: &Communicator) -> SparseResult<f64> {
        let local = dense::norm_inf(&self.local);
        Ok(comm.allreduce(local, rcomm::max)?)
    }

    /// self ← self + a·x (purely local).
    pub fn axpy(&mut self, a: f64, x: &DistVector) -> SparseResult<()> {
        if self.partition != x.partition {
            return Err(SparseError::BadBlockPartition(
                "axpy operands have different partitions".into(),
            ));
        }
        dense::axpy(a, &x.local, &mut self.local);
        Ok(())
    }

    /// Gather the full vector onto `root` (None elsewhere).
    pub fn gather_to_root(
        &self,
        comm: &Communicator,
        root: usize,
    ) -> SparseResult<Option<Vec<f64>>> {
        Ok(comm.gatherv(root, &self.local)?)
    }

    /// Replicate the full vector on every rank.
    pub fn allgather_full(&self, comm: &Communicator) -> SparseResult<Vec<f64>> {
        Ok(comm.allgatherv(&self.local)?)
    }
}

/// The halo-exchange plan compiled at matrix construction.
#[derive(Debug, Clone, PartialEq)]
struct HaloPlan {
    /// `(destination rank, local indices to ship)`, ascending by rank.
    sends: Vec<(usize, Vec<usize>)>,
    /// `(source rank, ghost-slot offset, count)`, ascending by rank; the
    /// ghost region is grouped by owner and sorted by global column inside
    /// each group — both sides derive this order independently.
    recvs: Vec<(usize, usize, usize)>,
    /// Total number of ghost slots.
    n_ghosts: usize,
}

/// A block-row-distributed square sparse matrix in CSR form.
#[derive(Debug, Clone, PartialEq)]
pub struct DistCsrMatrix {
    partition: BlockRowPartition,
    rank: usize,
    /// Local rows with columns renumbered: `0..local_rows` are owned
    /// columns (global start-row subtracted), `local_rows..` are ghost
    /// slots in plan order.
    compiled: CsrMatrix,
    /// Local rows with original global column indices (kept for gather,
    /// value updates and diagnostics).
    local_global: CsrMatrix,
    plan: HaloPlan,
}

impl DistCsrMatrix {
    /// Distribute a replicated global matrix: every rank takes its block
    /// row. Collective.
    pub fn from_global(
        comm: &Communicator,
        partition: BlockRowPartition,
        global: &CsrMatrix,
    ) -> SparseResult<Self> {
        let (rows, cols) = global.shape();
        if rows != cols {
            return Err(SparseError::NotSquare { rows, cols });
        }
        if rows != partition.global_rows() {
            return Err(SparseError::LengthMismatch {
                what: "partition",
                expected: rows,
                got: partition.global_rows(),
            });
        }
        let r = partition.range(comm.rank());
        let local = global.row_block(r.start, r.end)?;
        Self::from_local_rows(comm, partition, local)
    }

    /// Build from this rank's local rows (columns global). Collective: the
    /// halo plan construction performs an all-to-all.
    pub fn from_local_rows(
        comm: &Communicator,
        partition: BlockRowPartition,
        local: CsrMatrix,
    ) -> SparseResult<Self> {
        let rank = comm.rank();
        if partition.parts() != comm.size() {
            return Err(SparseError::BadBlockPartition(format!(
                "partition has {} parts for {} ranks",
                partition.parts(),
                comm.size()
            )));
        }
        let n_local = partition.local_rows(rank);
        if local.rows() != n_local {
            return Err(SparseError::LengthMismatch {
                what: "local rows",
                expected: n_local,
                got: local.rows(),
            });
        }
        if local.cols() != partition.global_rows() {
            return Err(SparseError::LengthMismatch {
                what: "local row width",
                expected: partition.global_rows(),
                got: local.cols(),
            });
        }
        let start = partition.start_row(rank);

        // 1. Find needed remote columns, grouped by owner.
        let p = comm.size();
        let mut needed: Vec<Vec<usize>> = vec![Vec::new(); p];
        for &c in local.col_idx() {
            let owner = partition.owner(c)?;
            if owner != rank {
                needed[owner].push(c);
            }
        }
        for lst in &mut needed {
            lst.sort_unstable();
            lst.dedup();
        }

        // 2. Tell every owner which of its entries we need.
        let requests = comm.alltoall(needed.clone())?;

        // 3. Build send specs (convert requested global cols to local
        //    indices) and recv specs (ghost-slot layout).
        let mut sends = Vec::new();
        for (dest, req) in requests.into_iter().enumerate() {
            if dest == rank || req.is_empty() {
                continue;
            }
            let local_idx: Vec<usize> = req
                .iter()
                .map(|&c| {
                    debug_assert!(partition.range(rank).contains(&c));
                    c - start
                })
                .collect();
            sends.push((dest, local_idx));
        }
        let mut recvs = Vec::new();
        let mut ghost_of: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let mut offset = 0usize;
        for (src, lst) in needed.iter().enumerate() {
            if src == rank || lst.is_empty() {
                continue;
            }
            recvs.push((src, offset, lst.len()));
            for (k, &c) in lst.iter().enumerate() {
                ghost_of.insert(c, offset + k);
            }
            offset += lst.len();
        }
        let n_ghosts = offset;
        let plan = HaloPlan { sends, recvs, n_ghosts };

        // 4. Compile the local matrix with renumbered columns.
        let (rows, _, row_ptr, col_idx, values) = local.clone().into_parts();
        let my_range = partition.range(rank);
        let new_cols: Vec<usize> = col_idx
            .iter()
            .map(|&c| {
                if my_range.contains(&c) {
                    c - start
                } else {
                    n_local + ghost_of[&c]
                }
            })
            .collect();
        // Renumbering is monotone within owned vs ghost groups but not
        // globally sorted per row; rebuild through COO to restore CSR
        // invariants.
        let mut coo = crate::coo::CooMatrix::new(rows, n_local + n_ghosts);
        for i in 0..rows {
            for k in row_ptr[i]..row_ptr[i + 1] {
                coo.push(i, new_cols[k], values[k])?;
            }
        }
        let compiled = coo.to_csr();

        Ok(DistCsrMatrix { partition, rank, compiled, local_global: local, plan })
    }

    /// The row partition.
    pub fn partition(&self) -> &BlockRowPartition {
        &self.partition
    }

    /// Local row count.
    pub fn local_rows(&self) -> usize {
        self.local_global.rows()
    }

    /// Local stored nonzeros.
    pub fn local_nnz(&self) -> usize {
        self.local_global.nnz()
    }

    /// Global order of the (square) matrix.
    pub fn global_order(&self) -> usize {
        self.partition.global_rows()
    }

    /// Borrow the local rows with global column indices.
    pub fn local_matrix(&self) -> &CsrMatrix {
        &self.local_global
    }

    /// Number of ghost entries this rank pulls per matvec (test/diagnostic
    /// hook; also a good measure of partition quality).
    pub fn ghost_count(&self) -> usize {
        self.plan.n_ghosts
    }

    /// This rank's square diagonal block (rows × owned columns, local
    /// numbering) — what block-Jacobi-style preconditioners factor.
    pub fn diagonal_block(&self) -> CsrMatrix {
        let range = self.partition.range(self.rank);
        let start = range.start;
        let n = range.len();
        let mut coo = crate::coo::CooMatrix::new(n, n);
        for (lr, gc, v) in self.local_global.iter() {
            if range.contains(&gc) {
                coo.push(lr, gc - start, v).expect("bounds by construction");
            }
        }
        coo.to_csr()
    }

    /// The local slice of the global main diagonal (zeros where missing).
    pub fn diagonal_local(&self) -> Vec<f64> {
        let start = self.partition.start_row(self.rank);
        (0..self.local_rows())
            .map(|lr| self.local_global.get(lr, start + lr))
            .collect()
    }

    /// Parallel y = A·x with halo exchange. Collective.
    pub fn matvec(&self, comm: &Communicator, x: &DistVector) -> SparseResult<DistVector> {
        let mut y = DistVector::zeros(self.partition.clone(), self.rank);
        self.matvec_into(comm, x, &mut y)?;
        Ok(y)
    }

    /// Parallel matvec into an existing conforming vector (no allocation of
    /// the result; the ghost buffer is still built per call).
    pub fn matvec_into(
        &self,
        comm: &Communicator,
        x: &DistVector,
        y: &mut DistVector,
    ) -> SparseResult<()> {
        if x.partition != self.partition {
            return Err(SparseError::BadBlockPartition(
                "matvec vector partition differs from matrix partition".into(),
            ));
        }
        // Post all sends first (eager, non-blocking), then receive.
        for (dest, idxs) in &self.plan.sends {
            let payload: Vec<f64> = idxs.iter().map(|&i| x.local[i]).collect();
            comm.send(*dest, TAG_HALO, payload)?;
        }
        let n_local = self.local_rows();
        let mut ext = vec![0.0f64; n_local + self.plan.n_ghosts];
        ext[..n_local].copy_from_slice(&x.local);
        for &(src, offset, count) in &self.plan.recvs {
            let vals: Vec<f64> = comm.recv(src, TAG_HALO)?;
            if vals.len() != count {
                return Err(SparseError::LengthMismatch {
                    what: "halo payload",
                    expected: count,
                    got: vals.len(),
                });
            }
            ext[n_local + offset..n_local + offset + count].copy_from_slice(&vals);
        }
        self.compiled.matvec_into(&ext, y.local_mut());
        Ok(())
    }

    /// Gather the full matrix onto `root` as a replicated CSR (the
    /// direct-solver path; `None` elsewhere). Collective.
    pub fn gather_to_root(
        &self,
        comm: &Communicator,
        root: usize,
    ) -> SparseResult<Option<CsrMatrix>> {
        // Ship triplets; root reassembles.
        let (rows_l, cols_l, vals_l) = {
            let mut r = Vec::with_capacity(self.local_nnz());
            let mut c = Vec::with_capacity(self.local_nnz());
            let mut v = Vec::with_capacity(self.local_nnz());
            let start = self.partition.start_row(self.rank);
            for (lr, gc, val) in self.local_global.iter() {
                r.push(start + lr);
                c.push(gc);
                v.push(val);
            }
            (r, c, v)
        };
        let rows = comm.gatherv(root, &rows_l)?;
        let cols = comm.gatherv(root, &cols_l)?;
        let vals = comm.gatherv(root, &vals_l)?;
        match (rows, cols, vals) {
            (Some(r), Some(c), Some(v)) => {
                let n = self.global_order();
                let coo = crate::coo::CooMatrix::from_triplets(n, n, &r, &c, &v)?;
                Ok(Some(coo.to_csr()))
            }
            _ => Ok(None),
        }
    }

    /// Replace the numerical values of the local rows, keeping the pattern
    /// (paper §5.2d: repeated solves with a new matrix of identical
    /// sparsity).
    pub fn update_values(&mut self, values: &[f64]) -> SparseResult<()> {
        if values.len() != self.local_nnz() {
            return Err(SparseError::LengthMismatch {
                what: "values",
                expected: self.local_nnz(),
                got: values.len(),
            });
        }
        self.local_global.values_mut().copy_from_slice(values);
        // compiled holds the same entries but re-sorted per row by the
        // renumbered columns; rebuild its values by replaying the same
        // renumber-and-sort path. Cheap relative to a solve.
        let order: Vec<f64> = values.to_vec();
        let _ = order;
        // Positions differ only by the per-row stable sort done at
        // construction; recompute by matching (row, renumbered col).
        let mut per_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.local_rows()];
        let n_local = self.local_rows();
        let start = self.partition.start_row(self.rank);
        let my_range = self.partition.range(self.rank);
        // Reconstruct ghost numbering from the compiled matrix: build
        // global-col -> compiled-col map from local_global vs compiled.
        for (i, row) in per_row.iter_mut().enumerate() {
            let (gcols, gvals) = self.local_global.row(i);
            for (&gc, &gv) in gcols.iter().zip(gvals) {
                let cc = if my_range.contains(&gc) {
                    gc - start
                } else {
                    // Ghost: find in compiled row by elimination below.
                    usize::MAX
                };
                row.push((if cc == usize::MAX { gc + n_local } else { cc }, gv));
            }
        }
        // Ghost columns sort in the same relative (global) order as their
        // slot order within each owner group, and owner groups are ordered
        // by rank which is ordered by global column ranges — so sorting by
        // (is_ghost, global col) equals sorting by compiled index.
        let mut vbuf: Vec<f64> = Vec::with_capacity(self.local_nnz());
        for row in &mut per_row {
            row.sort_unstable_by_key(|&(k, _)| k);
            vbuf.extend(row.iter().map(|&(_, v)| v));
        }
        self.compiled.values_mut().copy_from_slice(&vbuf);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use rcomm::Universe;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut coo = crate::coo::CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn dist_vector_basics() {
        let out = Universe::run(3, |comm| {
            let part = BlockRowPartition::even(7, 3);
            let global: Vec<f64> = (0..7).map(|i| i as f64).collect();
            let v = DistVector::from_global(part.clone(), comm.rank(), &global).unwrap();
            let d = v.dot(&v, comm).unwrap();
            let n2 = v.norm2(comm).unwrap();
            let ni = v.norm_inf(comm).unwrap();
            let full = v.allgather_full(comm).unwrap();
            (d, n2, ni, full == global)
        });
        let expect_d: f64 = (0..7).map(|i| (i * i) as f64).sum();
        for (d, n2, ni, same) in out {
            assert!((d - expect_d).abs() < 1e-12);
            assert!((n2 - expect_d.sqrt()).abs() < 1e-12);
            assert_eq!(ni, 6.0);
            assert!(same);
        }
    }

    #[test]
    fn dist_matvec_matches_serial_laplacian() {
        for p in [1usize, 2, 3, 4] {
            let n = 13;
            let a = laplacian_1d(n);
            let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let expect = a.matvec(&x).unwrap();
            let out = Universe::run(p, |comm| {
                let part = BlockRowPartition::even(n, comm.size());
                let da =
                    DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
                let dx = DistVector::from_global(part, comm.rank(), &x).unwrap();
                let dy = da.matvec(comm, &dx).unwrap();
                dy.allgather_full(comm).unwrap()
            });
            for got in out {
                for (g, e) in got.iter().zip(&expect) {
                    assert!((g - e).abs() < 1e-13, "p = {p}");
                }
            }
        }
    }

    #[test]
    fn dist_matvec_matches_serial_random() {
        let n = 40;
        let a = generate::random_csr(n, n, 0.15, 42);
        let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let expect = a.matvec(&x).unwrap();
        for p in [1usize, 3, 5] {
            let out = Universe::run(p, |comm| {
                let part = BlockRowPartition::even(n, comm.size());
                let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
                let dx = DistVector::from_global(part, comm.rank(), &x).unwrap();
                da.matvec(comm, &dx).unwrap().allgather_full(comm).unwrap()
            });
            for got in out {
                for (g, e) in got.iter().zip(&expect) {
                    assert!((g - e).abs() < 1e-11, "p = {p}");
                }
            }
        }
    }

    #[test]
    fn ghost_counts_reflect_stencil_boundaries() {
        let out = Universe::run(4, |comm| {
            let n = 16;
            let a = laplacian_1d(n);
            let part = BlockRowPartition::even(n, comm.size());
            let da = DistCsrMatrix::from_global(comm, part, &a).unwrap();
            da.ghost_count()
        });
        // 1-D Laplacian: interior ranks touch 2 neighbours, end ranks 1.
        assert_eq!(out, vec![1, 2, 2, 1]);
    }

    #[test]
    fn gather_to_root_reassembles() {
        let n = 11;
        let a = generate::random_csr(n, n, 0.2, 7);
        let out = Universe::run(3, |comm| {
            let part = BlockRowPartition::even(n, comm.size());
            let da = DistCsrMatrix::from_global(comm, part, &a).unwrap();
            da.gather_to_root(comm, 0).unwrap()
        });
        assert_eq!(out[0].as_ref(), Some(&a));
        assert!(out[1].is_none());
    }

    #[test]
    fn update_values_preserves_matvec_semantics() {
        let n = 12;
        let a = laplacian_1d(n);
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let scaled = crate::ops::scale(3.0, &a);
        let expect = scaled.matvec(&x).unwrap();
        let out = Universe::run(3, |comm| {
            let part = BlockRowPartition::even(n, comm.size());
            let mut da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
            let new_vals: Vec<f64> =
                da.local_matrix().values().iter().map(|v| v * 3.0).collect();
            da.update_values(&new_vals).unwrap();
            let dx = DistVector::from_global(part, comm.rank(), &x).unwrap();
            da.matvec(comm, &dx).unwrap().allgather_full(comm).unwrap()
        });
        for got in out {
            for (g, e) in got.iter().zip(&expect) {
                assert!((g - e).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn partition_mismatches_are_rejected() {
        let out = Universe::run(2, |comm| {
            let a = laplacian_1d(6);
            let bad = BlockRowPartition::even(6, 3); // 3 parts for 2 ranks
            DistCsrMatrix::from_global(comm, bad, &a).is_err()
        });
        assert_eq!(out, vec![true, true]);
    }
}
