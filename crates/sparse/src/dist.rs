//! Distributed block-row matrices and vectors over an [`rcomm`]
//! communicator.
//!
//! This is the parallel layout the paper's LISI assumes (§5.4): the
//! coefficient matrix, right-hand side and solution are divided conformally
//! into block rows, one block per processor. A [`DistCsrMatrix`] stores its
//! local rows (with *global* column indices) and, at construction, builds a
//! **halo-exchange plan**: which remote vector entries its rows touch, who
//! owns them, and which of its own entries other ranks need.
//!
//! The matvec hot path is communication-overlapped and allocation-free in
//! steady state. At plan-build time the local rows are split into an
//! **interior** part (rows touching only owned columns) and a **boundary**
//! part (rows touching at least one ghost column). A matvec then
//!
//! 1. posts halo sends from persistent staging buffers,
//! 2. computes every interior row while the halos are in flight,
//! 3. drains receives **out of order** as they arrive (via `iprobe`),
//! 4. finishes with the boundary rows against `[x_local, ghosts]`.
//!
//! The ghost-extended vector and the send staging buffers live in a
//! `MatvecWorkspace` owned by the matrix (interior mutability), so
//! repeated matvecs — the inner loop of every Krylov solve — perform no
//! heap allocation. Dot products and norms reduce over the communicator.
//!
//! Setting `RSPARSE_DISABLE_OVERLAP=1` falls back to the in-order blocking
//! drain with no interleaved compute (a debugging / comparison knob).

use std::sync::{Arc, Mutex};

use rcomm::Communicator;

use crate::autotune::{self, Format, FormatMatrix, FormatPolicy};
use crate::csr::CsrMatrix;
use crate::dense;
use crate::error::{SparseError, SparseResult};
use crate::partition::BlockRowPartition;
use crate::threads::{self, SharedMutSlice};

/// Reserved user-level tag for halo traffic.
const TAG_HALO: rcomm::Tag = 7001;

/// Reserved user-level tag for batched (multi-RHS) halo traffic — kept
/// distinct from [`TAG_HALO`] so interleaved single and multi matvecs
/// can never consume each other's payloads.
const TAG_HALO_MULTI: rcomm::Tag = 7002;

/// Whether to overlap interior compute with the halo drain (default yes).
fn overlap_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("RSPARSE_DISABLE_OVERLAP").map(|v| v != "1").unwrap_or(true)
    })
}

/// A block-row-distributed dense vector: each rank owns one contiguous
/// chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct DistVector {
    partition: BlockRowPartition,
    rank: usize,
    local: Vec<f64>,
}

impl DistVector {
    /// Wrap a local chunk. The chunk length must match the partition.
    pub fn from_local(
        partition: BlockRowPartition,
        rank: usize,
        local: Vec<f64>,
    ) -> SparseResult<Self> {
        let expect = partition.local_rows(rank);
        if local.len() != expect {
            return Err(SparseError::LengthMismatch {
                what: "local vector chunk",
                expected: expect,
                got: local.len(),
            });
        }
        Ok(DistVector { partition, rank, local })
    }

    /// Zero vector conforming to `partition`.
    pub fn zeros(partition: BlockRowPartition, rank: usize) -> Self {
        let n = partition.local_rows(rank);
        DistVector { partition, rank, local: vec![0.0; n] }
    }

    /// Take this rank's chunk of a replicated global vector.
    pub fn from_global(
        partition: BlockRowPartition,
        rank: usize,
        global: &[f64],
    ) -> SparseResult<Self> {
        if global.len() != partition.global_rows() {
            return Err(SparseError::LengthMismatch {
                what: "global vector",
                expected: partition.global_rows(),
                got: global.len(),
            });
        }
        let r = partition.range(rank);
        Ok(DistVector { partition, rank, local: global[r].to_vec() })
    }

    /// The owning partition.
    pub fn partition(&self) -> &BlockRowPartition {
        &self.partition
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Borrow the local chunk.
    pub fn local(&self) -> &[f64] {
        &self.local
    }

    /// Mutably borrow the local chunk.
    pub fn local_mut(&mut self) -> &mut [f64] {
        &mut self.local
    }

    /// Global length.
    pub fn global_len(&self) -> usize {
        self.partition.global_rows()
    }

    /// Parallel dot product (local dot + allreduce).
    pub fn dot(&self, other: &DistVector, comm: &Communicator) -> SparseResult<f64> {
        if self.partition != other.partition {
            return Err(SparseError::BadBlockPartition(
                "dot operands have different partitions".into(),
            ));
        }
        let local = dense::pdot(&self.local, &other.local);
        Ok(comm.allreduce(local, rcomm::sum)?)
    }

    /// Parallel 2-norm.
    pub fn norm2(&self, comm: &Communicator) -> SparseResult<f64> {
        Ok(self.dot(self, comm)?.sqrt())
    }

    /// Parallel ∞-norm.
    pub fn norm_inf(&self, comm: &Communicator) -> SparseResult<f64> {
        let local = dense::norm_inf(&self.local);
        Ok(comm.allreduce(local, rcomm::max)?)
    }

    /// self ← self + a·x (purely local).
    pub fn axpy(&mut self, a: f64, x: &DistVector) -> SparseResult<()> {
        if self.partition != x.partition {
            return Err(SparseError::BadBlockPartition(
                "axpy operands have different partitions".into(),
            ));
        }
        dense::axpy(a, &x.local, &mut self.local);
        Ok(())
    }

    /// Gather the full vector onto `root` (None elsewhere).
    pub fn gather_to_root(
        &self,
        comm: &Communicator,
        root: usize,
    ) -> SparseResult<Option<Vec<f64>>> {
        Ok(comm.gatherv(root, &self.local)?)
    }

    /// Replicate the full vector on every rank.
    pub fn allgather_full(&self, comm: &Communicator) -> SparseResult<Vec<f64>> {
        Ok(comm.allgatherv(&self.local)?)
    }
}

/// The halo-exchange plan compiled at matrix construction.
#[derive(Debug, Clone, PartialEq)]
struct HaloPlan {
    /// `(destination rank, local indices to ship)`, ascending by rank.
    sends: Vec<(usize, Vec<usize>)>,
    /// `(source rank, ghost-slot offset, count)`, ascending by rank; the
    /// ghost region is grouped by owner and sorted by global column inside
    /// each group — both sides derive this order independently.
    recvs: Vec<(usize, usize, usize)>,
    /// Total number of ghost slots.
    n_ghosts: usize,
}

/// The local rows compiled into two CSR pieces by halo dependence.
///
/// Columns are renumbered: `0..n_local` are owned columns (global start
/// row subtracted), `n_local..` are ghost slots in plan order. Because
/// block-row ownership is contiguous and ascending in rank, and ghost
/// slots are grouped by owner rank and sorted by global column inside each
/// group, the renumbering is monotone on owned columns and monotone on
/// ghost columns, with every ghost above every owned column — so each
/// renumbered row is "owned entries then ghost entries", both already
/// sorted, and no per-row re-sort is needed to restore CSR invariants.
#[derive(Debug, Clone, PartialEq)]
struct SplitLocal {
    /// Rows touching only owned columns; width `n_local`.
    interior: CsrMatrix,
    /// Local row index of each interior row, ascending.
    interior_rows: Vec<usize>,
    /// Rows touching at least one ghost column; width `n_local + n_ghosts`.
    boundary: CsrMatrix,
    /// Local row index of each boundary row, ascending.
    boundary_rows: Vec<usize>,
}

/// Persistent per-matrix scratch for [`DistCsrMatrix::matvec_into`]: the
/// ghost-extended input vector, one pool of reference-counted send staging
/// buffers per destination, and the out-of-order receive bookkeeping.
///
/// Send payloads travel as `Arc<Vec<f64>>`: the sender keeps one clone in
/// its pool and the receiver drops its clone after copying the values out,
/// at which point `Arc::get_mut` succeeds again and the buffer is reused.
/// A pool only grows when a matvec is staged while the receiver still
/// holds the previous buffer (bounded by receiver lag); `steady_allocs`
/// counts such growth after the first matvec so tests can assert the
/// steady state allocates nothing.
#[derive(Debug)]
struct MatvecWorkspace {
    /// `[x_local, ghosts]` staging for the boundary kernel.
    ext: Vec<f64>,
    /// Per-send-slot buffer pools, parallel to `HaloPlan::sends`.
    send_pools: Vec<Vec<Arc<Vec<f64>>>>,
    /// Per-recv "not yet drained this matvec" flags, parallel to
    /// `HaloPlan::recvs`.
    recv_pending: Vec<bool>,
    /// Heap allocations made after the first matvec completed.
    steady_allocs: u64,
    /// Whether at least one matvec has completed.
    primed: bool,
}

impl MatvecWorkspace {
    fn new(n_local: usize, plan: &HaloPlan) -> Self {
        MatvecWorkspace {
            ext: vec![0.0; n_local + plan.n_ghosts],
            // Two buffers per destination: a receiver may lag one full
            // matvec behind its sender (it posts its own sends before
            // draining ours), so the k-th buffer can still be in flight
            // while the sender stages k+1. With a mutual (symmetric-
            // pattern) halo dependency the skew cannot exceed that one
            // iteration, so two buffers make the steady state
            // allocation-free; one-way couplings may queue deeper and
            // grow the pool (counted by `steady_allocs`).
            send_pools: plan
                .sends
                .iter()
                .map(|(_, idxs)| {
                    (0..2).map(|_| Arc::new(vec![0.0; idxs.len()])).collect()
                })
                .collect(),
            recv_pending: vec![false; plan.recvs.len()],
            steady_allocs: 0,
            primed: false,
        }
    }

    /// Fill a free staging buffer for send slot `slot` with the gathered
    /// entries of `x` and return a clone to ship.
    fn stage_send(&mut self, slot: usize, idxs: &[usize], x: &[f64]) -> Arc<Vec<f64>> {
        let pool = &mut self.send_pools[slot];
        let pos = match pool.iter().position(|b| Arc::strong_count(b) == 1) {
            Some(p) => p,
            None => {
                // Every buffer is still in flight (receiver lagging);
                // grow the pool.
                if self.primed {
                    self.steady_allocs += 1;
                    probe::incr(probe::Counter::SteadyStateAllocs);
                }
                pool.push(Arc::new(vec![0.0; idxs.len()]));
                pool.len() - 1
            }
        };
        let buf = Arc::get_mut(&mut pool[pos])
            .expect("buffer uniqueness was just checked; only this rank clones it");
        for (dst, &i) in buf.iter_mut().zip(idxs) {
            *dst = x[i];
        }
        Arc::clone(&pool[pos])
    }
}

/// Persistent scratch for [`DistCsrMatrix::matvec_multi_into`]: the
/// ghost-extended staging for `k` interleaved vectors plus the batched
/// halo bookkeeping. Rebuilt (lazily) whenever a batch arrives with a
/// different `k`; single-RHS matvecs never touch it.
#[derive(Debug)]
struct MultiWorkspace {
    /// Batch width this workspace was built for.
    k: usize,
    /// `k` ghost-extended columns, column `q` at `q·(n_local+n_ghosts)`.
    ext: Vec<f64>,
    /// Per-send-slot buffer pools (payload = `k` interleaved column
    /// segments), parallel to `HaloPlan::sends`.
    send_pools: Vec<Vec<Arc<Vec<f64>>>>,
    /// Per-recv "not yet drained this matvec" flags.
    recv_pending: Vec<bool>,
}

impl MultiWorkspace {
    fn new(n_local: usize, plan: &HaloPlan, k: usize) -> Self {
        MultiWorkspace {
            k,
            ext: vec![0.0; k * (n_local + plan.n_ghosts)],
            // Two buffers per destination, as in `MatvecWorkspace`.
            send_pools: plan
                .sends
                .iter()
                .map(|(_, idxs)| {
                    (0..2).map(|_| Arc::new(vec![0.0; k * idxs.len()])).collect()
                })
                .collect(),
            recv_pending: vec![false; plan.recvs.len()],
        }
    }

    /// Stage the batched payload for send slot `slot`: column `q` of the
    /// gathered entries lands at `payload[q·idxs.len()..]`.
    fn stage_send(
        &mut self,
        slot: usize,
        idxs: &[usize],
        xs: &[f64],
        x_stride: usize,
    ) -> Arc<Vec<f64>> {
        let k = self.k;
        let pool = &mut self.send_pools[slot];
        let pos = match pool.iter().position(|b| Arc::strong_count(b) == 1) {
            Some(p) => p,
            None => {
                pool.push(Arc::new(vec![0.0; k * idxs.len()]));
                pool.len() - 1
            }
        };
        let buf = Arc::get_mut(&mut pool[pos])
            .expect("buffer uniqueness was just checked; only this rank clones it");
        for q in 0..k {
            for (j, &i) in idxs.iter().enumerate() {
                buf[q * idxs.len() + j] = xs[q * x_stride + i];
            }
        }
        Arc::clone(&pool[pos])
    }
}

/// Minimum scatter-row count before `spmv_rows` dispatches to the thread
/// pool; below this the synchronization outweighs the row work.
const PAR_SCATTER_MIN_ROWS: usize = 2048;

/// y[rows[i]] = mat.row(i) · x — the CSR scatter kernel both halves of
/// the split matvec share. Threaded over contiguous chunks of the row
/// list when `threads` and the row count warrant it; each target index
/// appears at most once in `rows`, so chunks write disjoint elements of
/// `y` and the result is bit-identical at any thread count. Also the
/// CSR arm of [`FormatMatrix::spmv_scatter`].
pub(crate) fn spmv_rows_threaded(
    mat: &CsrMatrix,
    rows: &[usize],
    x: &[f64],
    ys: &SharedMutSlice<'_>,
    threads: usize,
) {
    let scatter = |lo: usize, hi: usize| {
        for (i, &r) in rows[lo..hi].iter().enumerate() {
            let (cols, vals) = mat.row(lo + i);
            // SAFETY: `rows` holds unique local indices, and chunks of it
            // are disjoint, so y[r] has exactly one writer.
            unsafe { ys.set(r, crate::csr::row_dot(cols, vals, x)) };
        }
    };
    if threads > 1 && rows.len() >= PAR_SCATTER_MIN_ROWS {
        threads::for_each_chunk(rows.len(), threads, scatter);
    } else {
        scatter(0, rows.len());
    }
}

#[inline]
fn spmv_rows(mat: &CsrMatrix, rows: &[usize], x: &[f64], y: &mut [f64]) {
    let ys = SharedMutSlice::new(y);
    spmv_rows_threaded(mat, rows, x, &ys, threads::active());
}

/// Multi-vector CSR scatter: `y[q·y_stride + rows[i]] = mat.row(i) ·
/// xs_q` for each of the `k` input columns (column `q` at
/// `xs[q·x_stride..]`). One sweep over the matrix per
/// [`crate::csr::MULTI_CHUNK`]-column group; per-column accumulation
/// order matches [`spmv_rows_threaded`] exactly, so each column is
/// bit-identical to the single-vector kernel at any thread count. Also
/// the CSR arm of [`FormatMatrix::spmv_scatter_multi`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn spmv_rows_multi_threaded(
    mat: &CsrMatrix,
    rows: &[usize],
    xs: &[f64],
    x_stride: usize,
    ys: &SharedMutSlice<'_>,
    y_stride: usize,
    k: usize,
    threads: usize,
) {
    let scatter = |lo: usize, hi: usize| {
        let mut acc = [0.0f64; crate::csr::MULTI_CHUNK];
        let mut big;
        let accs: &mut [f64] = if k <= crate::csr::MULTI_CHUNK {
            &mut acc[..k]
        } else {
            big = vec![0.0f64; k];
            &mut big
        };
        for (i, &r) in rows[lo..hi].iter().enumerate() {
            let (cols, vals) = mat.row(lo + i);
            crate::csr::row_dot_multi(cols, vals, xs, x_stride, accs);
            for (q, &a) in accs.iter().enumerate() {
                // SAFETY: `rows` holds unique local indices and chunks
                // are disjoint, so each (column, row) output has exactly
                // one writer.
                unsafe { ys.set(q * y_stride + r, a) };
            }
        }
    };
    if threads > 1 && rows.len() >= PAR_SCATTER_MIN_ROWS {
        threads::for_each_chunk(rows.len(), threads, scatter);
    } else {
        scatter(0, rows.len());
    }
}

/// The interior/boundary pieces converted into the plan's chosen SpMV
/// format. Absent when the plan chose CSR: the split pieces already are
/// CSR, so the legacy path runs unchanged with zero conversion cost.
#[derive(Debug, Clone, PartialEq)]
struct FormatKernel {
    interior: FormatMatrix,
    boundary: FormatMatrix,
}

/// A block-row-distributed square sparse matrix in CSR form.
#[derive(Debug)]
pub struct DistCsrMatrix {
    partition: BlockRowPartition,
    rank: usize,
    /// Local rows compiled into interior/boundary pieces with renumbered
    /// columns (see [`SplitLocal`]).
    split: SplitLocal,
    /// Local rows with original global column indices (kept for gather,
    /// value updates and diagnostics).
    local_global: CsrMatrix,
    plan: HaloPlan,
    /// The SpMV format this matrix's plan settled on (see
    /// [`crate::autotune`]); the split CSR pieces stay the source of
    /// truth either way.
    chosen: Format,
    /// Format-converted kernel pieces; `None` ⇒ CSR path.
    kernel: Option<FormatKernel>,
    /// Reusable matvec scratch; interior mutability so the hot path takes
    /// `&self` (each rank owns its matrix, so the lock is uncontended).
    workspace: Mutex<MatvecWorkspace>,
    /// Reusable batched-matvec scratch, built lazily on the first
    /// [`Self::matvec_multi_into`] call and rebuilt when the batch width
    /// changes.
    multi_workspace: Mutex<Option<MultiWorkspace>>,
}

impl Clone for DistCsrMatrix {
    fn clone(&self) -> Self {
        DistCsrMatrix {
            partition: self.partition.clone(),
            rank: self.rank,
            split: self.split.clone(),
            local_global: self.local_global.clone(),
            plan: self.plan.clone(),
            chosen: self.chosen,
            kernel: self.kernel.clone(),
            workspace: Mutex::new(MatvecWorkspace::new(self.local_rows(), &self.plan)),
            multi_workspace: Mutex::new(None),
        }
    }
}

impl PartialEq for DistCsrMatrix {
    /// Structural equality; the matvec workspace is scratch and ignored
    /// (the format kernel derives from `split` + `chosen`, so comparing
    /// `chosen` covers it).
    fn eq(&self, other: &Self) -> bool {
        self.partition == other.partition
            && self.rank == other.rank
            && self.split == other.split
            && self.local_global == other.local_global
            && self.plan == other.plan
            && self.chosen == other.chosen
    }
}

impl DistCsrMatrix {
    /// Distribute a replicated global matrix: every rank takes its block
    /// row. Collective.
    pub fn from_global(
        comm: &Communicator,
        partition: BlockRowPartition,
        global: &CsrMatrix,
    ) -> SparseResult<Self> {
        let (rows, cols) = global.shape();
        if rows != cols {
            return Err(SparseError::NotSquare { rows, cols });
        }
        if rows != partition.global_rows() {
            return Err(SparseError::LengthMismatch {
                what: "partition",
                expected: rows,
                got: partition.global_rows(),
            });
        }
        let r = partition.range(comm.rank());
        let local = global.row_block(r.start, r.end)?;
        Self::from_local_rows(comm, partition, local)
    }

    /// Build from this rank's local rows (columns global) under the
    /// process-global format policy ([`autotune::active_policy`], i.e.
    /// `RSPARSE_FORMAT` / `port.set("format", ...)`). Collective: the
    /// halo plan construction performs an all-to-all.
    pub fn from_local_rows(
        comm: &Communicator,
        partition: BlockRowPartition,
        local: CsrMatrix,
    ) -> SparseResult<Self> {
        Self::from_local_rows_with_format(comm, partition, local, autotune::active_policy())
    }

    /// [`Self::from_local_rows`] with an explicit format policy — the
    /// plan ("setupMatrix") step where the autotuner runs, the chosen
    /// format is converted, and both are cached in the operator so
    /// steady-state matvecs pay zero conversion cost. Each rank decides
    /// from its own local rows; results are bit-identical regardless, so
    /// ranks are free to disagree.
    pub fn from_local_rows_with_format(
        comm: &Communicator,
        partition: BlockRowPartition,
        local: CsrMatrix,
        policy: FormatPolicy,
    ) -> SparseResult<Self> {
        let rank = comm.rank();
        if partition.parts() != comm.size() {
            return Err(SparseError::BadBlockPartition(format!(
                "partition has {} parts for {} ranks",
                partition.parts(),
                comm.size()
            )));
        }
        let n_local = partition.local_rows(rank);
        if local.rows() != n_local {
            return Err(SparseError::LengthMismatch {
                what: "local rows",
                expected: n_local,
                got: local.rows(),
            });
        }
        if local.cols() != partition.global_rows() {
            return Err(SparseError::LengthMismatch {
                what: "local row width",
                expected: partition.global_rows(),
                got: local.cols(),
            });
        }
        let start = partition.start_row(rank);

        // 1. Find needed remote columns, grouped by owner.
        let p = comm.size();
        let mut needed: Vec<Vec<usize>> = vec![Vec::new(); p];
        for &c in local.col_idx() {
            let owner = partition.owner(c)?;
            if owner != rank {
                needed[owner].push(c);
            }
        }
        for lst in &mut needed {
            lst.sort_unstable();
            lst.dedup();
        }

        // 2. Tell every owner which of its entries we need.
        let requests = comm.alltoall(needed.clone())?;

        // 3. Build send specs (convert requested global cols to local
        //    indices) and recv specs (ghost-slot layout).
        let mut sends = Vec::new();
        for (dest, req) in requests.into_iter().enumerate() {
            if dest == rank || req.is_empty() {
                continue;
            }
            let local_idx: Vec<usize> = req
                .iter()
                .map(|&c| {
                    debug_assert!(partition.range(rank).contains(&c));
                    c - start
                })
                .collect();
            sends.push((dest, local_idx));
        }
        let mut recvs = Vec::new();
        let mut ghost_of: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let mut offset = 0usize;
        for (src, lst) in needed.iter().enumerate() {
            if src == rank || lst.is_empty() {
                continue;
            }
            recvs.push((src, offset, lst.len()));
            for (k, &c) in lst.iter().enumerate() {
                ghost_of.insert(c, offset + k);
            }
            offset += lst.len();
        }
        let n_ghosts = offset;
        let plan = HaloPlan { sends, recvs, n_ghosts };

        // 4. Split-compile the local matrix with renumbered columns,
        //    straight into two CSR pieces. The renumbering keeps owned
        //    columns sorted below all ghost columns and both groups in
        //    order (see [`SplitLocal`]), so each output row is "owned
        //    entries then ghost entries" in one linear pass — no COO
        //    round-trip, no per-row sort.
        let my_range = partition.range(rank);
        let mut interior_rows = Vec::new();
        let mut boundary_rows = Vec::new();
        let mut int_ptr = Vec::with_capacity(n_local + 1);
        let mut bnd_ptr = Vec::with_capacity(n_local + 1);
        int_ptr.push(0);
        bnd_ptr.push(0);
        let mut int_cols = Vec::new();
        let mut int_vals = Vec::new();
        let mut bnd_cols = Vec::new();
        let mut bnd_vals = Vec::new();
        let mut ghost_cols_scratch: Vec<usize> = Vec::new();
        let mut ghost_vals_scratch: Vec<f64> = Vec::new();
        for i in 0..n_local {
            let (gcols, gvals) = local.row(i);
            ghost_cols_scratch.clear();
            ghost_vals_scratch.clear();
            if gcols.iter().all(|c| my_range.contains(c)) {
                interior_rows.push(i);
                int_cols.extend(gcols.iter().map(|&c| c - start));
                int_vals.extend_from_slice(gvals);
                int_ptr.push(int_cols.len());
            } else {
                boundary_rows.push(i);
                for (&c, &v) in gcols.iter().zip(gvals) {
                    if my_range.contains(&c) {
                        bnd_cols.push(c - start);
                        bnd_vals.push(v);
                    } else {
                        ghost_cols_scratch.push(n_local + ghost_of[&c]);
                        ghost_vals_scratch.push(v);
                    }
                }
                bnd_cols.extend_from_slice(&ghost_cols_scratch);
                bnd_vals.extend_from_slice(&ghost_vals_scratch);
                bnd_ptr.push(bnd_cols.len());
            }
        }
        let interior = CsrMatrix::from_parts_unchecked(
            interior_rows.len(),
            n_local,
            int_ptr,
            int_cols,
            int_vals,
        );
        let boundary = CsrMatrix::from_parts_unchecked(
            boundary_rows.len(),
            n_local + n_ghosts,
            bnd_ptr,
            bnd_cols,
            bnd_vals,
        );
        let split = SplitLocal { interior, interior_rows, boundary, boundary_rows };

        // 5. Resolve the format policy against the local pattern and
        //    convert the kernel pieces once, here at plan-build time.
        let chosen = autotune::plan(&local, policy);
        autotune::record_choice(chosen);

        // Static work/traffic models, computed once here at plan build and
        // joined with the measured spans at report time. All SpMV models
        // derive from the *logical* CSR pattern, so SELL-C-σ and BCSR
        // plans of the same matrix carry bit-identical flops/bytes —
        // format efficiency comparisons share one denominator.
        {
            use probe::model::{csr_traffic, register, KernelModel, TimeBase, WorkUnit};
            let spmv = |span, rows, nnz| {
                let (flops, bytes) = csr_traffic(rows, nnz);
                KernelModel {
                    span,
                    flops,
                    bytes,
                    unit: WorkUnit::SpanCalls,
                    time: TimeBase::Total,
                    nrhs: 1,
                }
            };
            register("spmv", spmv("matvec", n_local, local.nnz()));
            register(
                "spmv_interior",
                spmv("spmv_interior", split.interior.rows(), split.interior.nnz()),
            );
            register(
                "spmv_boundary",
                spmv("spmv_boundary", split.boundary.rows(), split.boundary.nnz()),
            );
            let send_bytes: u64 =
                plan.sends.iter().map(|(_, idxs)| 8 * idxs.len() as u64).sum();
            register(
                "halo_send",
                KernelModel {
                    span: "halo_post",
                    flops: 0,
                    bytes: send_bytes,
                    unit: WorkUnit::SpanCalls,
                    time: TimeBase::Total,
                    nrhs: 1,
                },
            );
            register(
                "halo_recv",
                KernelModel {
                    span: "halo_drain",
                    flops: 0,
                    bytes: 8 * plan.n_ghosts as u64,
                    unit: WorkUnit::SpanCalls,
                    time: TimeBase::Total,
                    nrhs: 1,
                },
            );
        }
        let kernel = if chosen == Format::Csr {
            None
        } else {
            Some(FormatKernel {
                interior: FormatMatrix::build(&split.interior, chosen),
                boundary: FormatMatrix::build(&split.boundary, chosen),
            })
        };

        let workspace = Mutex::new(MatvecWorkspace::new(n_local, &plan));
        Ok(DistCsrMatrix {
            partition,
            rank,
            split,
            local_global: local,
            plan,
            chosen,
            kernel,
            workspace,
            multi_workspace: Mutex::new(None),
        })
    }

    /// The row partition.
    pub fn partition(&self) -> &BlockRowPartition {
        &self.partition
    }

    /// Local row count.
    pub fn local_rows(&self) -> usize {
        self.local_global.rows()
    }

    /// Local stored nonzeros.
    pub fn local_nnz(&self) -> usize {
        self.local_global.nnz()
    }

    /// Global order of the (square) matrix.
    pub fn global_order(&self) -> usize {
        self.partition.global_rows()
    }

    /// Borrow the local rows with global column indices.
    pub fn local_matrix(&self) -> &CsrMatrix {
        &self.local_global
    }

    /// Number of ghost entries this rank pulls per matvec (test/diagnostic
    /// hook; also a good measure of partition quality).
    pub fn ghost_count(&self) -> usize {
        self.plan.n_ghosts
    }

    /// The SpMV storage format this rank's plan settled on.
    pub fn chosen_format(&self) -> Format {
        self.chosen
    }

    /// Interior scatter kernel in the chosen format (CSR when no
    /// conversion was planned). Bit-identical across formats and thread
    /// counts.
    fn spmv_interior(&self, x: &[f64], yl: &mut [f64]) {
        match &self.kernel {
            Some(k) => {
                let ys = SharedMutSlice::new(yl);
                k.interior.spmv_scatter(&self.split.interior_rows, x, &ys, threads::active());
            }
            None => spmv_rows(&self.split.interior, &self.split.interior_rows, x, yl),
        }
    }

    /// Boundary scatter kernel against the ghost-extended vector, in the
    /// chosen format.
    fn spmv_boundary(&self, ext: &[f64], yl: &mut [f64]) {
        match &self.kernel {
            Some(k) => {
                let ys = SharedMutSlice::new(yl);
                k.boundary.spmv_scatter(&self.split.boundary_rows, ext, &ys, threads::active());
            }
            None => spmv_rows(&self.split.boundary, &self.split.boundary_rows, ext, yl),
        }
    }

    /// Interior multi-vector scatter kernel in the chosen format.
    fn spmv_interior_multi(&self, xs: &[f64], x_stride: usize, ys: &SharedMutSlice<'_>, k: usize) {
        let n_local = self.local_rows();
        match &self.kernel {
            Some(fk) => fk.interior.spmv_scatter_multi(
                &self.split.interior_rows,
                xs,
                x_stride,
                ys,
                n_local,
                k,
                threads::active(),
            ),
            None => spmv_rows_multi_threaded(
                &self.split.interior,
                &self.split.interior_rows,
                xs,
                x_stride,
                ys,
                n_local,
                k,
                threads::active(),
            ),
        }
    }

    /// Boundary multi-vector scatter kernel against the ghost-extended
    /// columns, in the chosen format.
    fn spmv_boundary_multi(&self, ext: &[f64], ext_stride: usize, ys: &SharedMutSlice<'_>, k: usize) {
        let n_local = self.local_rows();
        match &self.kernel {
            Some(fk) => fk.boundary.spmv_scatter_multi(
                &self.split.boundary_rows,
                ext,
                ext_stride,
                ys,
                n_local,
                k,
                threads::active(),
            ),
            None => spmv_rows_multi_threaded(
                &self.split.boundary,
                &self.split.boundary_rows,
                ext,
                ext_stride,
                ys,
                n_local,
                k,
                threads::active(),
            ),
        }
    }

    /// Batched parallel matvec: `ys` column `q` ← A · `xs` column `q`
    /// for `k` right-hand sides laid out as contiguous local columns
    /// (column `q` at `[q·local_rows .. (q+1)·local_rows]`). Collective.
    ///
    /// One halo exchange ships all `k` boundary columns in a single
    /// message per neighbour, and the interior/boundary kernels sweep
    /// the matrix once per [`crate::csr::MULTI_CHUNK`]-column group
    /// instead of once per column — the amortization the §17 work model
    /// [`probe::model::csr_traffic_multi`] describes. Each column's
    /// result is bit-identical to a [`Self::matvec_into`] call on that
    /// column alone (same kernels' per-column accumulation order, same
    /// halo values).
    pub fn matvec_multi_into(
        &self,
        comm: &Communicator,
        xs: &[f64],
        ys: &mut [f64],
        k: usize,
    ) -> SparseResult<()> {
        let n_local = self.local_rows();
        if k == 0 || xs.len() != k * n_local {
            return Err(SparseError::LengthMismatch {
                what: "batched matvec input",
                expected: k.max(1) * n_local,
                got: xs.len(),
            });
        }
        if ys.len() != k * n_local {
            return Err(SparseError::LengthMismatch {
                what: "batched matvec output",
                expected: k * n_local,
                got: ys.len(),
            });
        }
        let mut guard = self.multi_workspace.lock().unwrap_or_else(|e| e.into_inner());
        if guard.as_ref().map(|w| w.k) != Some(k) {
            *guard = Some(MultiWorkspace::new(n_local, &self.plan, k));
            self.register_multi_models(k);
        }
        let ws = guard.as_mut().expect("workspace was just installed");
        let overlap = overlap_enabled();
        probe::add(probe::Counter::MatvecCalls, k as u64);
        let _matvec_span = probe::span!("matvec_multi");

        // 1. Post batched halo sends (k column segments per payload).
        {
            let _s = probe::span!("halo_post_multi");
            for (slot, (dest, idxs)) in self.plan.sends.iter().enumerate() {
                let payload = ws.stage_send(slot, idxs, xs, n_local);
                probe::incr(probe::Counter::HaloMessages);
                probe::add(
                    probe::Counter::HaloBytes,
                    (k * idxs.len() * std::mem::size_of::<f64>()) as u64,
                );
                comm.send(*dest, TAG_HALO_MULTI, payload)?;
            }
        }

        // 2. Interior rows while the halos are in flight.
        let ys_shared = SharedMutSlice::new(ys);
        if overlap {
            let _s = probe::span!("spmv_multi_interior");
            self.spmv_interior_multi(xs, n_local, &ys_shared, k);
        }

        // 3. Drain the batched receives into the ghost-extended columns.
        let ext_stride = n_local + self.plan.n_ghosts;
        for q in 0..k {
            ws.ext[q * ext_stride..q * ext_stride + n_local]
                .copy_from_slice(&xs[q * n_local..(q + 1) * n_local]);
        }
        {
            let _lat = probe::hist::HistTimer::start(probe::hist::Hist::HaloDrain);
            let _s = probe::span!("halo_drain_multi");
            self.drain_halos_multi(comm, ws)?;
        }
        if !overlap {
            let _s = probe::span!("spmv_multi_interior");
            self.spmv_interior_multi(xs, n_local, &ys_shared, k);
        }

        // 4. Boundary rows against the ghost-extended columns.
        {
            let _s = probe::span!("spmv_multi_boundary");
            self.spmv_boundary_multi(&ws.ext, ext_stride, &ys_shared, k);
        }
        Ok(())
    }

    /// Register the §17 work models for the batched kernels at width
    /// `k` — one matrix read amortized over `k` vector streams, not `k`
    /// matrix reads (see [`probe::model::csr_traffic_multi`]).
    fn register_multi_models(&self, k: usize) {
        use probe::model::{csr_traffic_multi, register, KernelModel, TimeBase, WorkUnit};
        let spmv = |span, rows, nnz| {
            let (flops, bytes) = csr_traffic_multi(rows, nnz, k);
            KernelModel {
                span,
                flops,
                bytes,
                unit: WorkUnit::SpanCalls,
                time: TimeBase::Total,
                nrhs: k as u64,
            }
        };
        register("spmv_multi", spmv("matvec_multi", self.local_rows(), self.local_nnz()));
        register(
            "spmv_multi_interior",
            spmv(
                "spmv_multi_interior",
                self.split.interior.rows(),
                self.split.interior.nnz(),
            ),
        );
        register(
            "spmv_multi_boundary",
            spmv(
                "spmv_multi_boundary",
                self.split.boundary.rows(),
                self.split.boundary.nnz(),
            ),
        );
        let send_bytes: u64 =
            self.plan.sends.iter().map(|(_, idxs)| 8 * (k * idxs.len()) as u64).sum();
        register(
            "halo_send_multi",
            KernelModel {
                span: "halo_post_multi",
                flops: 0,
                bytes: send_bytes,
                unit: WorkUnit::SpanCalls,
                time: TimeBase::Total,
                nrhs: k as u64,
            },
        );
        register(
            "halo_recv_multi",
            KernelModel {
                span: "halo_drain_multi",
                flops: 0,
                bytes: 8 * (k * self.plan.n_ghosts) as u64,
                unit: WorkUnit::SpanCalls,
                time: TimeBase::Total,
                nrhs: k as u64,
            },
        );
    }

    /// Receive every batched halo payload for one multi matvec into
    /// `ws.ext` (k column segments per payload; same out-of-order drain
    /// discipline as [`Self::drain_halos`]).
    fn drain_halos_multi(
        &self,
        comm: &Communicator,
        ws: &mut MultiWorkspace,
    ) -> SparseResult<()> {
        let n_local = self.local_rows();
        let ext_stride = n_local + self.plan.n_ghosts;
        let k = ws.k;
        let overlap = overlap_enabled();
        for pending in ws.recv_pending.iter_mut() {
            *pending = true;
        }
        let mut remaining = self.plan.recvs.len();
        while remaining > 0 {
            let mut received = None;
            if overlap {
                for (slot, &(src, ..)) in self.plan.recvs.iter().enumerate() {
                    if ws.recv_pending[slot]
                        && comm.iprobe(src as i32, TAG_HALO_MULTI)?.is_some()
                    {
                        received = Some(slot);
                        break;
                    }
                }
            }
            let slot = received.unwrap_or_else(|| {
                ws.recv_pending.iter().position(|&p| p).expect("remaining > 0")
            });
            let (src, offset, count) = self.plan.recvs[slot];
            let vals: Arc<Vec<f64>> = comm.recv(src, TAG_HALO_MULTI)?;
            if vals.len() != k * count {
                return Err(SparseError::LengthMismatch {
                    what: "batched halo payload",
                    expected: k * count,
                    got: vals.len(),
                });
            }
            if vals.iter().any(|v| !v.is_finite()) {
                probe::incr(probe::Counter::HaloNonFinite);
            }
            for q in 0..k {
                let dst = q * ext_stride + n_local + offset;
                ws.ext[dst..dst + count]
                    .copy_from_slice(&vals[q * count..(q + 1) * count]);
            }
            drop(vals);
            ws.recv_pending[slot] = false;
            remaining -= 1;
        }
        Ok(())
    }

    /// This rank's square diagonal block (rows × owned columns, local
    /// numbering) — what block-Jacobi-style preconditioners factor.
    pub fn diagonal_block(&self) -> CsrMatrix {
        let range = self.partition.range(self.rank);
        let start = range.start;
        let n = range.len();
        let mut coo = crate::coo::CooMatrix::new(n, n);
        for (lr, gc, v) in self.local_global.iter() {
            if range.contains(&gc) {
                coo.push(lr, gc - start, v).expect("bounds by construction");
            }
        }
        coo.to_csr()
    }

    /// The local slice of the global main diagonal (zeros where missing).
    pub fn diagonal_local(&self) -> Vec<f64> {
        let start = self.partition.start_row(self.rank);
        (0..self.local_rows())
            .map(|lr| self.local_global.get(lr, start + lr))
            .collect()
    }

    /// Parallel y = A·x with halo exchange. Collective.
    pub fn matvec(&self, comm: &Communicator, x: &DistVector) -> SparseResult<DistVector> {
        let mut y = DistVector::zeros(self.partition.clone(), self.rank);
        self.matvec_into(comm, x, &mut y)?;
        Ok(y)
    }

    /// Parallel matvec into an existing conforming vector — the solver hot
    /// path. Collective.
    ///
    /// Communication-overlapped: halo sends are posted from persistent
    /// staging buffers, interior rows are computed while the halos are in
    /// flight, receives are drained out-of-order as they arrive, and the
    /// boundary rows finish against `[x_local, ghosts]`. All scratch comes
    /// from the matrix's `MatvecWorkspace`, so repeated calls allocate
    /// nothing in steady state (see
    /// [`steady_state_allocs`](Self::steady_state_allocs)).
    pub fn matvec_into(
        &self,
        comm: &Communicator,
        x: &DistVector,
        y: &mut DistVector,
    ) -> SparseResult<()> {
        if x.partition != self.partition {
            return Err(SparseError::BadBlockPartition(
                "matvec vector partition differs from matrix partition".into(),
            ));
        }
        let n_local = self.local_rows();
        let mut guard = self.workspace.lock().unwrap_or_else(|e| e.into_inner());
        let ws = &mut *guard;
        let overlap = overlap_enabled();
        probe::incr(probe::Counter::MatvecCalls);
        let _matvec_span = probe::span!("matvec");

        // 1. Post all halo sends (eager, non-blocking) from staged buffers.
        {
            let _s = probe::span!("halo_post");
            for (slot, (dest, idxs)) in self.plan.sends.iter().enumerate() {
                let payload = ws.stage_send(slot, idxs, &x.local);
                probe::incr(probe::Counter::HaloMessages);
                probe::add(
                    probe::Counter::HaloBytes,
                    (idxs.len() * std::mem::size_of::<f64>()) as u64,
                );
                comm.send(*dest, TAG_HALO, payload)?;
            }
        }

        // 2. Interior rows depend only on owned entries: compute them now,
        //    while the halos are in flight.
        let yl = y.local_mut();
        if overlap {
            let _s = probe::span!("spmv_interior");
            self.spmv_interior(&x.local, yl);
        }

        // 3. Drain the halo receives (out of order when overlapping).
        ws.ext[..n_local].copy_from_slice(&x.local);
        {
            let _lat = probe::hist::HistTimer::start(probe::hist::Hist::HaloDrain);
            let _s = probe::span!("halo_drain");
            self.drain_halos(comm, ws, overlap)?;
        }
        if !overlap {
            let _s = probe::span!("spmv_interior");
            self.spmv_interior(&x.local, yl);
        }

        // 4. Boundary rows against the ghost-extended vector.
        {
            let _s = probe::span!("spmv_boundary");
            self.spmv_boundary(&ws.ext, yl);
        }
        ws.primed = true;
        Ok(())
    }

    /// Receive every halo payload for one matvec into `ws.ext`.
    ///
    /// With overlap enabled, polls all still-pending sources via `iprobe`
    /// and consumes whichever arrived first; when a poll sweep finds
    /// nothing, blocks on the first pending source instead of spinning.
    /// Each source is received from exactly once, so a fast neighbour's
    /// *next*-iteration payload (queued behind this iteration's, FIFO per
    /// source) can never be consumed early.
    fn drain_halos(
        &self,
        comm: &Communicator,
        ws: &mut MatvecWorkspace,
        overlap: bool,
    ) -> SparseResult<()> {
        let n_local = self.local_rows();
        for pending in ws.recv_pending.iter_mut() {
            *pending = true;
        }
        let mut remaining = self.plan.recvs.len();
        while remaining > 0 {
            let mut received = None;
            if overlap {
                for (k, &(src, ..)) in self.plan.recvs.iter().enumerate() {
                    if ws.recv_pending[k] && comm.iprobe(src as i32, TAG_HALO)?.is_some() {
                        received = Some(k);
                        break;
                    }
                }
            }
            // Nothing ready (or overlap disabled): block on the first
            // pending source in plan order.
            let k = received.unwrap_or_else(|| {
                ws.recv_pending.iter().position(|&p| p).expect("remaining > 0")
            });
            let (src, offset, count) = self.plan.recvs[k];
            let vals: Arc<Vec<f64>> = comm.recv(src, TAG_HALO)?;
            if vals.len() != count {
                return Err(SparseError::LengthMismatch {
                    what: "halo payload",
                    expected: count,
                    got: vals.len(),
                });
            }
            // Numerical-failure screen: a non-finite halo value is counted
            // here (cheap scan of a small boundary payload) and then
            // *allowed to propagate* — the NaN reaches every rank through
            // the next residual reduction, so the solve stops with a
            // rank-agreed verdict instead of a local unilateral abort.
            if vals.iter().any(|v| !v.is_finite()) {
                probe::incr(probe::Counter::HaloNonFinite);
            }
            ws.ext[n_local + offset..n_local + offset + count].copy_from_slice(&vals);
            // Drop our clone promptly so the sender's staging buffer frees
            // up for its next matvec.
            drop(vals);
            ws.recv_pending[k] = false;
            remaining -= 1;
        }
        Ok(())
    }

    /// Number of local rows that touch no ghost column (computed before
    /// the halo arrives).
    pub fn interior_row_count(&self) -> usize {
        self.split.interior_rows.len()
    }

    /// Number of local rows that touch at least one ghost column.
    pub fn boundary_row_count(&self) -> usize {
        self.split.boundary_rows.len()
    }

    /// Workspace heap allocations made after the first matvec completed.
    /// Zero in steady state; grows only if a receiver lags far enough
    /// behind that every staged send buffer is still in flight.
    pub fn steady_state_allocs(&self) -> u64 {
        self.workspace.lock().unwrap_or_else(|e| e.into_inner()).steady_allocs
    }

    /// Deterministic rendering of this rank's halo-exchange plan and
    /// chosen SpMV format — the elastic-recovery invariant check. A
    /// matrix rebuilt on a shrunken cohort must produce, on every
    /// survivor, exactly the digest a fresh setup at that size produces:
    /// both go through the same cached plan-build path
    /// ([`Self::from_local_rows_with_format`]), so any divergence means
    /// the repartition handed a rank the wrong rows.
    pub fn halo_plan_digest(&self) -> String {
        format!(
            "rank={}/{} rows={} format={:?} plan={:?}",
            self.rank,
            self.partition.parts(),
            self.local_rows(),
            self.chosen,
            self.plan,
        )
    }

    /// Redistribute block rows after a cohort shrink. Collective on the
    /// **shrunken** communicator.
    ///
    /// Every survivor contributes the block it already owns (`start_row`,
    /// `local` with global column indices, conforming `rhs` chunk); the
    /// survivor holding a mirror of the lost rank's block additionally
    /// contributes it via `extra`. The contributed blocks must tile
    /// `0..global_rows` exactly. Returns this rank's block under the
    /// fresh even partition over the survivors — feed it straight back
    /// into [`Self::from_local_rows`] to rebuild halo plans, level
    /// schedules and format plans through the ordinary cached setup path.
    pub fn repartition_block_rows(
        comm: &Communicator,
        start_row: usize,
        local: &CsrMatrix,
        rhs: &[f64],
        extra: Option<(usize, CsrMatrix, Vec<f64>)>,
        global_rows: usize,
    ) -> SparseResult<(usize, CsrMatrix, Vec<f64>)> {
        if rhs.len() != local.rows() {
            return Err(SparseError::LengthMismatch {
                what: "repartition rhs chunk",
                expected: local.rows(),
                got: rhs.len(),
            });
        }
        // Flatten every contributed block into global triplets plus
        // (global row, rhs value) pairs.
        let mut spans: Vec<(usize, usize)> = vec![(start_row, local.rows())];
        let mut rows_l = Vec::with_capacity(local.nnz());
        let mut cols_l = Vec::with_capacity(local.nnz());
        let mut vals_l = Vec::with_capacity(local.nnz());
        let mut rhs_idx = Vec::with_capacity(rhs.len());
        let mut rhs_val = Vec::with_capacity(rhs.len());
        let mut contribute = |start: usize, m: &CsrMatrix, b: &[f64]| {
            for (lr, gc, v) in m.iter() {
                rows_l.push(start + lr);
                cols_l.push(gc);
                vals_l.push(v);
            }
            for (lr, &v) in b.iter().enumerate() {
                rhs_idx.push(start + lr);
                rhs_val.push(v);
            }
        };
        contribute(start_row, local, rhs);
        if let Some((xstart, xmat, xrhs)) = &extra {
            if xrhs.len() != xmat.rows() {
                return Err(SparseError::LengthMismatch {
                    what: "repartition mirrored rhs chunk",
                    expected: xmat.rows(),
                    got: xrhs.len(),
                });
            }
            spans.push((*xstart, xmat.rows()));
            contribute(*xstart, xmat, xrhs);
        }

        // Everyone learns everything: the matrices this interface targets
        // are modest, and a full replication keeps the recovery path a
        // single collective per array on the shrunken communicator.
        let mut all_spans = comm.allgatherv(&spans)?;
        let rows = comm.allgatherv(&rows_l)?;
        let cols = comm.allgatherv(&cols_l)?;
        let vals = comm.allgatherv(&vals_l)?;
        let rhs_idx = comm.allgatherv(&rhs_idx)?;
        let rhs_val = comm.allgatherv(&rhs_val)?;

        // The blocks must tile 0..global_rows exactly — a gap means the
        // lost rank's block was mirrored nowhere, an overlap that two
        // ranks both claim it.
        all_spans.sort_unstable();
        let mut next = 0usize;
        for &(s, n) in &all_spans {
            if s != next {
                return Err(SparseError::BadBlockPartition(format!(
                    "repartition blocks do not tile the row space: expected \
                     a block starting at row {next}, got {s}"
                )));
            }
            next = s + n;
        }
        if next != global_rows {
            return Err(SparseError::BadBlockPartition(format!(
                "repartition blocks cover {next} of {global_rows} rows"
            )));
        }

        // Rebuild the global matrix and rhs, then slice this rank's block
        // under the fresh even partition over the survivors.
        let coo = crate::coo::CooMatrix::from_triplets(
            global_rows,
            global_rows,
            &rows,
            &cols,
            &vals,
        )?;
        let global = coo.to_csr();
        let mut full_rhs = vec![0.0; global_rows];
        for (&i, &v) in rhs_idx.iter().zip(&rhs_val) {
            full_rhs[i] = v;
        }
        let part = BlockRowPartition::even(global_rows, comm.size());
        let r = part.range(comm.rank());
        let new_local = global.row_block(r.start, r.end)?;
        let new_rhs = full_rhs[r.clone()].to_vec();
        Ok((r.start, new_local, new_rhs))
    }

    /// Gather the full matrix onto `root` as a replicated CSR (the
    /// direct-solver path; `None` elsewhere). Collective.
    pub fn gather_to_root(
        &self,
        comm: &Communicator,
        root: usize,
    ) -> SparseResult<Option<CsrMatrix>> {
        // Ship triplets; root reassembles.
        let (rows_l, cols_l, vals_l) = {
            let mut r = Vec::with_capacity(self.local_nnz());
            let mut c = Vec::with_capacity(self.local_nnz());
            let mut v = Vec::with_capacity(self.local_nnz());
            let start = self.partition.start_row(self.rank);
            for (lr, gc, val) in self.local_global.iter() {
                r.push(start + lr);
                c.push(gc);
                v.push(val);
            }
            (r, c, v)
        };
        let rows = comm.gatherv(root, &rows_l)?;
        let cols = comm.gatherv(root, &cols_l)?;
        let vals = comm.gatherv(root, &vals_l)?;
        match (rows, cols, vals) {
            (Some(r), Some(c), Some(v)) => {
                let n = self.global_order();
                let coo = crate::coo::CooMatrix::from_triplets(n, n, &r, &c, &v)?;
                Ok(Some(coo.to_csr()))
            }
            _ => Ok(None),
        }
    }

    /// Replace the numerical values of the local rows, keeping the pattern
    /// (paper §5.2d: repeated solves with a new matrix of identical
    /// sparsity).
    pub fn update_values(&mut self, values: &[f64]) -> SparseResult<()> {
        if values.len() != self.local_nnz() {
            return Err(SparseError::LengthMismatch {
                what: "values",
                expected: self.local_nnz(),
                got: values.len(),
            });
        }
        self.local_global.values_mut().copy_from_slice(values);
        // The split pieces hold the same entries per row, permuted to
        // "owned entries then ghost entries" (each group in original scan
        // order — the renumbering is monotone within a group). Replay that
        // permutation directly: one linear pass, no sorting.
        let my_range = self.partition.range(self.rank);
        let n_local = self.local_global.rows();
        let mut int_cursor = 0usize;
        let mut bnd_cursor = 0usize;
        let int_vals = self.split.interior.values_mut();
        for i in 0..n_local {
            let (gcols, gvals) = self.local_global.row(i);
            let n_owned = gcols.iter().filter(|&&c| my_range.contains(&c)).count();
            if n_owned == gcols.len() {
                int_vals[int_cursor..int_cursor + gvals.len()].copy_from_slice(gvals);
                int_cursor += gvals.len();
            } else {
                let dst = &mut self.split.boundary.values_mut()
                    [bnd_cursor..bnd_cursor + gcols.len()];
                let (mut o, mut g) = (0, n_owned);
                for (&c, &v) in gcols.iter().zip(gvals) {
                    if my_range.contains(&c) {
                        dst[o] = v;
                        o += 1;
                    } else {
                        dst[g] = v;
                        g += 1;
                    }
                }
                bnd_cursor += gcols.len();
            }
        }
        // Replay the new values into the format-converted kernel pieces
        // (their source-index maps point into the split CSR pieces).
        if let Some(k) = &mut self.kernel {
            k.interior.refresh_values(&self.split.interior)?;
            k.boundary.refresh_values(&self.split.boundary)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use rcomm::Universe;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut coo = crate::coo::CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn dist_vector_basics() {
        let out = Universe::run(3, |comm| {
            let part = BlockRowPartition::even(7, 3);
            let global: Vec<f64> = (0..7).map(|i| i as f64).collect();
            let v = DistVector::from_global(part.clone(), comm.rank(), &global).unwrap();
            let d = v.dot(&v, comm).unwrap();
            let n2 = v.norm2(comm).unwrap();
            let ni = v.norm_inf(comm).unwrap();
            let full = v.allgather_full(comm).unwrap();
            (d, n2, ni, full == global)
        });
        let expect_d: f64 = (0..7).map(|i| (i * i) as f64).sum();
        for (d, n2, ni, same) in out {
            assert!((d - expect_d).abs() < 1e-12);
            assert!((n2 - expect_d.sqrt()).abs() < 1e-12);
            assert_eq!(ni, 6.0);
            assert!(same);
        }
    }

    #[test]
    fn dist_matvec_matches_serial_laplacian() {
        for p in [1usize, 2, 3, 4] {
            let n = 13;
            let a = laplacian_1d(n);
            let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let expect = a.matvec(&x).unwrap();
            let out = Universe::run(p, |comm| {
                let part = BlockRowPartition::even(n, comm.size());
                let da =
                    DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
                let dx = DistVector::from_global(part, comm.rank(), &x).unwrap();
                let dy = da.matvec(comm, &dx).unwrap();
                dy.allgather_full(comm).unwrap()
            });
            for got in out {
                for (g, e) in got.iter().zip(&expect) {
                    assert!((g - e).abs() < 1e-13, "p = {p}");
                }
            }
        }
    }

    #[test]
    fn dist_matvec_matches_serial_random() {
        let n = 40;
        let a = generate::random_csr(n, n, 0.15, 42);
        let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let expect = a.matvec(&x).unwrap();
        for p in [1usize, 3, 5] {
            let out = Universe::run(p, |comm| {
                let part = BlockRowPartition::even(n, comm.size());
                let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
                let dx = DistVector::from_global(part, comm.rank(), &x).unwrap();
                da.matvec(comm, &dx).unwrap().allgather_full(comm).unwrap()
            });
            for got in out {
                for (g, e) in got.iter().zip(&expect) {
                    assert!((g - e).abs() < 1e-11, "p = {p}");
                }
            }
        }
    }

    #[test]
    fn ghost_counts_reflect_stencil_boundaries() {
        let out = Universe::run(4, |comm| {
            let n = 16;
            let a = laplacian_1d(n);
            let part = BlockRowPartition::even(n, comm.size());
            let da = DistCsrMatrix::from_global(comm, part, &a).unwrap();
            da.ghost_count()
        });
        // 1-D Laplacian: interior ranks touch 2 neighbours, end ranks 1.
        assert_eq!(out, vec![1, 2, 2, 1]);
    }

    #[test]
    fn gather_to_root_reassembles() {
        let n = 11;
        let a = generate::random_csr(n, n, 0.2, 7);
        let out = Universe::run(3, |comm| {
            let part = BlockRowPartition::even(n, comm.size());
            let da = DistCsrMatrix::from_global(comm, part, &a).unwrap();
            da.gather_to_root(comm, 0).unwrap()
        });
        assert_eq!(out[0].as_ref(), Some(&a));
        assert!(out[1].is_none());
    }

    #[test]
    fn update_values_preserves_matvec_semantics() {
        let n = 12;
        let a = laplacian_1d(n);
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let scaled = crate::ops::scale(3.0, &a);
        let expect = scaled.matvec(&x).unwrap();
        let out = Universe::run(3, |comm| {
            let part = BlockRowPartition::even(n, comm.size());
            let mut da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
            let new_vals: Vec<f64> =
                da.local_matrix().values().iter().map(|v| v * 3.0).collect();
            da.update_values(&new_vals).unwrap();
            let dx = DistVector::from_global(part, comm.rank(), &x).unwrap();
            da.matvec(comm, &dx).unwrap().allgather_full(comm).unwrap()
        });
        for got in out {
            for (g, e) in got.iter().zip(&expect) {
                assert!((g - e).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn forced_formats_are_bitwise_identical_to_csr() {
        // Laplacian (SELL-friendly), FEM blocks (BCSR-friendly): every
        // policy must produce bit-for-bit the CSR result, before and
        // after an update_values refresh.
        for a in [generate::laplacian_2d(12), generate::fem_block(6, 3, 8)] {
            let n = a.rows();
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
            for p in [1usize, 3] {
                let policies = [
                    FormatPolicy::Fixed(Format::Csr),
                    FormatPolicy::Fixed(Format::Sell),
                    FormatPolicy::Fixed(Format::Bcsr),
                    FormatPolicy::Auto,
                ];
                let mut runs = Vec::new();
                for policy in policies {
                    let out = Universe::run(p, |comm| {
                        let part = BlockRowPartition::even(n, comm.size());
                        let r = part.range(comm.rank());
                        let local = a.row_block(r.start, r.end).unwrap();
                        let mut da = DistCsrMatrix::from_local_rows_with_format(
                            comm,
                            part.clone(),
                            local,
                            policy,
                        )
                        .unwrap();
                        if policy == FormatPolicy::Fixed(Format::Sell) {
                            assert_eq!(da.chosen_format(), Format::Sell);
                        }
                        let dx =
                            DistVector::from_global(part, comm.rank(), &x).unwrap();
                        let y1 = da.matvec(comm, &dx).unwrap().allgather_full(comm).unwrap();
                        let scaled: Vec<f64> = da
                            .local_matrix()
                            .values()
                            .iter()
                            .map(|v| v * -1.5)
                            .collect();
                        da.update_values(&scaled).unwrap();
                        let y2 = da.matvec(comm, &dx).unwrap().allgather_full(comm).unwrap();
                        (y1, y2)
                    });
                    let mut y1 = Vec::new();
                    let mut y2 = Vec::new();
                    for (a1, a2) in out {
                        y1 = a1;
                        y2 = a2;
                    }
                    runs.push((y1, y2));
                }
                let (base1, base2) = &runs[0];
                for (y1, y2) in &runs[1..] {
                    for (g, e) in y1.iter().zip(base1) {
                        assert_eq!(g.to_bits(), e.to_bits(), "p = {p}");
                    }
                    for (g, e) in y2.iter().zip(base2) {
                        assert_eq!(g.to_bits(), e.to_bits(), "p = {p} (post-update)");
                    }
                }
            }
        }
    }

    #[test]
    fn batched_matvec_columns_match_single_bitwise() {
        // Every format, several rank counts and batch widths: column q of
        // the batched matvec must equal the single-RHS matvec of that
        // column, bit for bit.
        let a = generate::laplacian_2d(7); // 49 rows
        let n = a.rows();
        for p in [1usize, 3] {
            for policy in [
                FormatPolicy::Fixed(Format::Csr),
                FormatPolicy::Fixed(Format::Sell),
                FormatPolicy::Fixed(Format::Bcsr),
            ] {
                for k in [1usize, 2, 4, 8, 11] {
                    let xs_global: Vec<Vec<f64>> = (0..k)
                        .map(|q| {
                            (0..n)
                                .map(|i| ((i * (q + 3)) as f64 * 0.37).sin() + q as f64)
                                .collect()
                        })
                        .collect();
                    let ok = Universe::run(p, |comm| {
                        let part = BlockRowPartition::even(n, comm.size());
                        let r = part.range(comm.rank());
                        let local = a.row_block(r.start, r.end).unwrap();
                        let da = DistCsrMatrix::from_local_rows_with_format(
                            comm,
                            part.clone(),
                            local,
                            policy,
                        )
                        .unwrap();
                        let n_local = da.local_rows();
                        let mut xs = Vec::with_capacity(k * n_local);
                        for col in &xs_global {
                            xs.extend_from_slice(&col[r.clone()]);
                        }
                        let mut ys = vec![f64::NAN; k * n_local];
                        da.matvec_multi_into(comm, &xs, &mut ys, k).unwrap();
                        // Reference: one single-RHS matvec per column.
                        let mut same = true;
                        for (q, col) in xs_global.iter().enumerate() {
                            let dx = DistVector::from_global(
                                part.clone(),
                                comm.rank(),
                                col,
                            )
                            .unwrap();
                            let dy = da.matvec(comm, &dx).unwrap();
                            for (g, e) in
                                ys[q * n_local..(q + 1) * n_local].iter().zip(dy.local())
                            {
                                same &= g.to_bits() == e.to_bits();
                            }
                        }
                        same
                    });
                    assert!(
                        ok.iter().all(|&s| s),
                        "p={p} policy={policy:?} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn partition_mismatches_are_rejected() {
        let out = Universe::run(2, |comm| {
            let a = laplacian_1d(6);
            let bad = BlockRowPartition::even(6, 3); // 3 parts for 2 ranks
            DistCsrMatrix::from_global(comm, bad, &a).is_err()
        });
        assert_eq!(out, vec![true, true]);
    }
}
