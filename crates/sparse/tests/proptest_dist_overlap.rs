//! Property-based and structural tests for the communication-overlapped
//! distributed matvec: the interior/boundary split must reproduce the
//! serial product for arbitrary matrices at 1–8 ranks (including the
//! degenerate all-interior and all-boundary splits), and the persistent
//! workspace must make repeated matvecs allocation-free.

use proptest::collection::vec;
use proptest::prelude::*;
use rcomm::Universe;
use rsparse::{BlockRowPartition, CooMatrix, CsrMatrix, DistCsrMatrix, DistVector};

fn to_csr(n: usize, t: &[(usize, usize, f64)]) -> CsrMatrix {
    let r: Vec<usize> = t.iter().map(|e| e.0).collect();
    let c: Vec<usize> = t.iter().map(|e| e.1).collect();
    let v: Vec<f64> = t.iter().map(|e| e.2).collect();
    CooMatrix::from_triplets(n, n, &r, &c, &v).unwrap().to_csr()
}

/// Run `reps` overlapped matvecs at `p` ranks and return, per rank, the
/// gathered result plus the workspace/split diagnostics.
fn run_dist_matvec(
    a: &CsrMatrix,
    x: &[f64],
    p: usize,
    reps: usize,
) -> Vec<(Vec<f64>, u64, usize, usize, usize)> {
    let n = a.rows();
    Universe::run(p, |comm| {
        let part = BlockRowPartition::even(n, comm.size());
        let da = DistCsrMatrix::from_global(comm, part.clone(), a).unwrap();
        let dx = DistVector::from_global(part.clone(), comm.rank(), x).unwrap();
        let mut dy = DistVector::zeros(part, comm.rank());
        for _ in 0..reps {
            da.matvec_into(comm, &dx, &mut dy).unwrap();
        }
        (
            dy.allgather_full(comm).unwrap(),
            da.steady_state_allocs(),
            da.interior_row_count(),
            da.boundary_row_count(),
            da.local_rows(),
        )
    })
}

proptest! {
    // Distributed cases spawn threads; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn overlapped_matvec_matches_serial_at_1_to_8_ranks(
        (n, t) in (2usize..20).prop_flat_map(|n| {
            (Just(n), vec((0..n, 0..n, -10.0f64..10.0), 1..70))
        }),
        p in 1usize..=8,
        xseed in any::<u64>(),
    ) {
        let a = to_csr(n, &t);
        let x = rsparse::generate::random_vector(n, xseed);
        let expect = a.matvec(&x).unwrap();
        for (got, _allocs, interior, boundary, local) in run_dist_matvec(&a, &x, p, 4) {
            // Every local row lands in exactly one half of the split.
            // (Zero-allocation steady state is asserted in the dedicated
            // tests below: arbitrary asymmetric patterns allow a one-way
            // sender to run unboundedly ahead, which legitimately grows
            // the staging pool.)
            prop_assert_eq!(interior + boundary, local);
            for (g, e) in got.iter().zip(&expect) {
                prop_assert!((g - e).abs() < 1e-9 * (1.0 + e.abs()));
            }
        }
    }
}

/// Block-diagonal w.r.t. an even partition: no row references a remote
/// column, so the boundary part must be empty and no halo is exchanged.
#[test]
fn empty_boundary_split_is_all_interior() {
    let n = 12;
    for p in [2usize, 3, 4] {
        let b = n / p;
        let t: Vec<(usize, usize, f64)> = (0..n)
            .flat_map(|i| {
                let block = (i / b) * b;
                let next = block + (i - block + 1) % b;
                [(i, i, 2.0 + i as f64), (i, next, -1.0)]
            })
            .collect();
        let a = to_csr(n, &t);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let expect = a.matvec(&x).unwrap();
        for (got, allocs, interior, boundary, local) in run_dist_matvec(&a, &x, p, 3) {
            assert_eq!(boundary, 0, "p = {p}");
            assert_eq!(interior, local);
            assert_eq!(allocs, 0);
            for (g, e) in got.iter().zip(&expect) {
                assert!((g - e).abs() < 1e-12, "p = {p}");
            }
        }
    }
}

/// Symmetric circulant coupling at block-size stride: with p ≥ 2 every row
/// references columns owned by both neighbouring ranks, so the interior
/// part must be empty and the overlap path degenerates to pure
/// halo-then-compute.
#[test]
fn all_boundary_split_has_no_interior_rows() {
    let n = 12;
    for p in [2usize, 3, 4] {
        let b = n / p;
        let t: Vec<(usize, usize, f64)> = (0..n)
            .flat_map(|i| {
                [(i, i, 3.0), (i, (i + b) % n, 1.5), (i, (i + n - b) % n, 0.5)]
            })
            .collect();
        let a = to_csr(n, &t);
        let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        let expect = a.matvec(&x).unwrap();
        for (got, allocs, interior, boundary, local) in run_dist_matvec(&a, &x, p, 3) {
            assert_eq!(interior, 0, "p = {p}");
            assert_eq!(boundary, local);
            assert_eq!(allocs, 0);
            for (g, e) in got.iter().zip(&expect) {
                assert!((g - e).abs() < 1e-12, "p = {p}");
            }
        }
    }
}

/// A long matvec sequence (a solver's worth) stays allocation-free and
/// keeps producing the right answer — the workspace is not consumed or
/// corrupted by reuse, and send-buffer recycling keeps up.
#[test]
fn steady_state_stays_allocation_free_over_many_matvecs() {
    let a = rsparse::generate::laplacian_2d(8);
    let n = a.rows();
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
    let expect = a.matvec(&x).unwrap();
    for (got, allocs, ..) in run_dist_matvec(&a, &x, 4, 50) {
        assert_eq!(allocs, 0, "50 matvecs must reuse the workspace");
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-12);
        }
    }
}
