//! Property tests for level-scheduled triangular solves: on arbitrary
//! random lower/upper patterns the scheduled kernel must produce results
//! **bit-identical** to the serial sweep at every thread count — the
//! determinism contract that lets `RSPARSE_THREADS` vary without changing
//! a single residual.

use proptest::collection::vec;
use proptest::prelude::*;
use rsparse::schedule::{sptrsv_lower_scheduled, sptrsv_upper_scheduled};
use rsparse::{CooMatrix, CsrMatrix, LevelSchedule};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Strategy: a random lower-triangular matrix with a full nonzero
/// diagonal, as (n, strict-lower triplets, diagonal values).
fn arb_lower(
    max_dim: usize,
    max_nnz: usize,
) -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>, Vec<f64>)> {
    (2..=max_dim).prop_flat_map(move |n| {
        let entry = (1..n, 0..n, -4.0f64..4.0).prop_map(|(r, c, v)| (r, c.min(r - 1), v));
        (
            Just(n),
            vec(entry, 0..=max_nnz),
            vec(1.0f64..8.0, n..=n),
        )
    })
}

fn build(n: usize, strict: &[(usize, usize, f64)], diag: &[f64], lower: bool) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for &(r, c, v) in strict {
        // Mirror the triplet for the upper-triangular variant.
        let (r, c) = if lower { (r, c) } else { (c, r) };
        coo.push(r, c, v).unwrap();
    }
    for (i, &d) in diag.iter().enumerate() {
        coo.push(i, i, d).unwrap();
    }
    coo.to_csr()
}

/// Serial forward sweep with the same entry order as the scheduled kernel.
fn serial_lower(mat: &CsrMatrix, unit_diag: bool, b: &[f64], x: &mut [f64]) {
    for i in 0..mat.rows() {
        let (cols, vals) = mat.row(i);
        let mut acc = b[i];
        let mut diag = 1.0;
        for (&c, &v) in cols.iter().zip(vals) {
            if c < i {
                acc -= v * x[c];
            } else if c == i {
                diag = v;
            }
        }
        x[i] = if unit_diag { acc } else { acc / diag };
    }
}

/// Serial backward sweep with the same entry order as the scheduled kernel.
fn serial_upper(mat: &CsrMatrix, unit_diag: bool, b: &[f64], x: &mut [f64]) {
    for i in (0..mat.rows()).rev() {
        let (cols, vals) = mat.row(i);
        let mut acc = b[i];
        let mut diag = 1.0;
        for (&c, &v) in cols.iter().zip(vals) {
            if c > i {
                acc -= v * x[c];
            } else if c == i {
                diag = v;
            }
        }
        x[i] = if unit_diag { acc } else { acc / diag };
    }
}

fn assert_bits_equal(label: &str, threads: usize, got: &[f64], want: &[f64]) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{label} diverged at row {i} with {threads} threads: {g} vs {w}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scheduled_lower_matches_serial_bitwise(
        (n, strict, diag) in arb_lower(48, 120),
        bseed in any::<u64>(),
    ) {
        let mat = build(n, &strict, &diag, true);
        let sched = LevelSchedule::lower(&mat);
        let b = rsparse::generate::random_vector(n, bseed);
        for unit_diag in [false, true] {
            let mut want = vec![0.0; n];
            serial_lower(&mat, unit_diag, &b, &mut want);
            for threads in THREAD_COUNTS {
                let mut got = vec![0.0; n];
                sptrsv_lower_scheduled(&mat, &sched, unit_diag, &b, &mut got, threads);
                assert_bits_equal("lower", threads, &got, &want);
            }
        }
    }

    #[test]
    fn scheduled_upper_matches_serial_bitwise(
        (n, strict, diag) in arb_lower(48, 120),
        bseed in any::<u64>(),
    ) {
        let mat = build(n, &strict, &diag, false);
        let sched = LevelSchedule::upper(&mat);
        let b = rsparse::generate::random_vector(n, bseed);
        for unit_diag in [false, true] {
            let mut want = vec![0.0; n];
            serial_upper(&mat, unit_diag, &b, &mut want);
            for threads in THREAD_COUNTS {
                let mut got = vec![0.0; n];
                sptrsv_upper_scheduled(&mat, &sched, unit_diag, &b, &mut got, threads);
                assert_bits_equal("upper", threads, &got, &want);
            }
        }
    }

    /// The solves really do solve: L·x = b within roundoff.
    #[test]
    fn scheduled_lower_solves_the_system(
        (n, strict, diag) in arb_lower(32, 80),
        bseed in any::<u64>(),
    ) {
        let mat = build(n, &strict, &diag, true);
        let sched = LevelSchedule::lower(&mat);
        let b = rsparse::generate::random_vector(n, bseed);
        let mut x = vec![0.0; n];
        sptrsv_lower_scheduled(&mat, &sched, false, &b, &mut x, 4);
        let r = rsparse::ops::residual(&mat, &x, &b).unwrap();
        let scale = rsparse::dense::norm2(&b)
            + rsparse::dense::norm2(&x) * mat.values().iter().fold(0.0f64, |m, v| m.max(v.abs()));
        prop_assert!(rsparse::dense::norm2(&r) <= 1e-9 * (1.0 + scale));
    }
}
