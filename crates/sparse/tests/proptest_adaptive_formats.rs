//! Property-based tests on the adaptive SpMV formats (SELL-C-σ and
//! block-CSR): conversions must round-trip the CSR matrix *exactly*
//! (pattern and values, explicit zeros included), and every format's
//! matvec must be **bitwise** identical to CSR's at every thread count —
//! the invariant the autotuner relies on to swap formats freely.

use proptest::collection::vec;
use proptest::prelude::*;
use rsparse::{BcsrMatrix, CooMatrix, CsrMatrix, SellMatrix};

/// Strategy: a random sparse matrix given as triplets (duplicates allowed —
/// they are summed by the COO→CSR conversion).
fn arb_triplets(
    max_dim: usize,
    max_nnz: usize,
) -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(r, c)| {
        let entry = (0..r, 0..c, -100.0f64..100.0);
        vec(entry, 0..=max_nnz).prop_map(move |t| (r, c, t))
    })
}

fn to_csr(rows: usize, cols: usize, t: &[(usize, usize, f64)]) -> CsrMatrix {
    let r: Vec<usize> = t.iter().map(|e| e.0).collect();
    let c: Vec<usize> = t.iter().map(|e| e.1).collect();
    let v: Vec<f64> = t.iter().map(|e| e.2).collect();
    CooMatrix::from_triplets(rows, cols, &r, &c, &v).unwrap().to_csr()
}

fn assert_bits_equal(got: &[f64], want: &[f64]) -> Result<(), String> {
    prop_assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        prop_assert_eq!(g.to_bits(), w.to_bits(), "lane {} differs: {} vs {}", i, g, w);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sell_round_trips_for_any_slice_geometry(
        (rows, cols, t) in arb_triplets(20, 90),
        c in 1usize..12,
        sigma in 0usize..40,
    ) {
        let a = to_csr(rows, cols, &t);
        let s = SellMatrix::from_csr_with(&a, c, sigma);
        prop_assert_eq!(s.nnz(), a.nnz());
        prop_assert_eq!(s.to_csr(), a);
    }

    #[test]
    fn bcsr_round_trips_for_any_block_shape(
        (rows, cols, t) in arb_triplets(20, 90),
        br in 1usize..6,
        bc in 1usize..6,
    ) {
        let a = to_csr(rows, cols, &t);
        let b = BcsrMatrix::from_csr_with(&a, br, bc);
        prop_assert_eq!(b.nnz(), a.nnz());
        prop_assert_eq!(b.to_csr(), a);
    }

    #[test]
    fn chained_conversions_preserve_explicit_zeros(
        (rows, cols, t) in arb_triplets(14, 50),
    ) {
        // Force some explicit zeros into the pattern, then chain
        // CSR → SELL → CSR → BCSR → CSR: the stored pattern (zeros
        // included) must survive both hops untouched.
        let mut a = to_csr(rows, cols, &t);
        let n = a.nnz();
        for (k, v) in a.values_mut().iter_mut().enumerate() {
            if k % 3 == 0 {
                *v = 0.0;
            }
        }
        prop_assert_eq!(a.nnz(), n);
        let via_sell = SellMatrix::from_csr(&a).to_csr();
        prop_assert_eq!(&via_sell, &a);
        let via_bcsr = BcsrMatrix::from_csr(&via_sell).to_csr();
        prop_assert_eq!(&via_bcsr, &a);
    }

    #[test]
    fn matvecs_are_bitwise_identical_across_formats_and_threads(
        (rows, cols, t) in arb_triplets(16, 70),
        c in 1usize..10,
        sigma in 0usize..32,
        br in 1usize..5,
        bc in 1usize..5,
        xseed in any::<u64>(),
    ) {
        let a = to_csr(rows, cols, &t);
        let x = rsparse::generate::random_vector(cols, xseed);
        let mut want = vec![0.0f64; rows];
        a.matvec_into(&x, &mut want);
        let s = SellMatrix::from_csr_with(&a, c, sigma);
        let b = BcsrMatrix::from_csr_with(&a, br, bc);
        let mut y = vec![f64::NAN; rows];
        for threads in [1usize, 2, 4, 8] {
            y.fill(f64::NAN);
            s.matvec_threaded_into(&x, &mut y, threads);
            assert_bits_equal(&y, &want)?;
            y.fill(f64::NAN);
            b.matvec_threaded_into(&x, &mut y, threads);
            assert_bits_equal(&y, &want)?;
        }
    }

    #[test]
    fn refreshed_values_keep_bit_identity(
        (rows, cols, t) in arb_triplets(14, 50),
        scale in -4.0f64..4.0,
        xseed in any::<u64>(),
    ) {
        let mut a = to_csr(rows, cols, &t);
        let mut s = SellMatrix::from_csr(&a);
        let mut b = BcsrMatrix::from_csr(&a);
        for v in a.values_mut() {
            *v *= scale;
        }
        s.refresh_values(&a).unwrap();
        b.refresh_values(&a).unwrap();
        let x = rsparse::generate::random_vector(cols, xseed);
        let mut want = vec![0.0f64; rows];
        a.matvec_into(&x, &mut want);
        let mut y = vec![f64::NAN; rows];
        s.matvec_into(&x, &mut y);
        assert_bits_equal(&y, &want)?;
        y.fill(f64::NAN);
        b.matvec_into(&x, &mut y);
        assert_bits_equal(&y, &want)?;
    }
}

proptest! {
    // FEM-style block matrices are larger; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fem_block_matrices_stay_bitwise_identical(
        m in 3usize..9,
        bsize in 2usize..4,
        seed in any::<u64>(),
        xseed in any::<u64>(),
    ) {
        let a = rsparse::generate::fem_block(m, bsize, seed);
        let x = rsparse::generate::random_vector(a.cols(), xseed);
        let mut want = vec![0.0f64; a.rows()];
        a.matvec_into(&x, &mut want);
        let s = SellMatrix::from_csr(&a);
        let b = BcsrMatrix::from_csr_with(&a, bsize, bsize);
        // FEM assembly expands every pattern entry into a full block, so
        // the matched block size must cover it with zero fill.
        prop_assert!((b.fill_ratio() - 1.0).abs() < 1e-12, "fill {}", b.fill_ratio());
        let mut y = vec![f64::NAN; a.rows()];
        for threads in [1usize, 2, 4, 8] {
            y.fill(f64::NAN);
            s.matvec_threaded_into(&x, &mut y, threads);
            assert_bits_equal(&y, &want)?;
            y.fill(f64::NAN);
            b.matvec_threaded_into(&x, &mut y, threads);
            assert_bits_equal(&y, &want)?;
        }
    }
}
