//! Probe instrumentation tests for the overlapped distributed matvec:
//! the per-phase spans (halo_post / spmv_interior / halo_drain /
//! spmv_boundary) and halo counters must be mutually consistent across
//! 1–8 ranks, and the disabled-probe path must stay allocation-free in
//! steady state.

use std::sync::Mutex;

use proptest::prelude::*;
use rcomm::Universe;
use rsparse::{BlockRowPartition, DistCsrMatrix, DistVector};

/// The probe mode is process-global; tests that flip it must not
/// interleave (proptest may run cases from several #[test]s in parallel).
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Halo messages a rank of a block-row-partitioned 1-D Laplacian sends
/// per matvec: one value to each existing neighbour.
fn expected_halo_msgs(rank: usize, p: usize) -> u64 {
    if p == 1 {
        0
    } else if rank == 0 || rank == p - 1 {
        1
    } else {
        2
    }
}

proptest! {
    // Each case spawns a universe; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn span_times_and_halo_counters_are_consistent(
        p in 1usize..=8,
        iters in 1usize..=6,
    ) {
        let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // 8 rows per rank so every rank has both interior and boundary rows.
        let n = 8 * p;
        let a = rsparse::generate::laplacian_1d(n);
        probe::set_mode(probe::ProbeMode::Summary);
        let per_rank = Universe::run(p, |comm| {
            let part = BlockRowPartition::even(n, comm.size());
            let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
            let dx = DistVector::from_global(part.clone(), comm.rank(), &vec![1.0; n]).unwrap();
            let mut dy = DistVector::zeros(part, comm.rank());
            // Setup traffic (from_global) is excluded by snapshotting first.
            let before = probe::local_report();
            let sends_before = comm.stats().sends;
            for _ in 0..iters {
                da.matvec_into(comm, &dx, &mut dy).unwrap();
            }
            (probe::local_report(), before, comm.stats().sends - sends_before)
        });
        probe::set_mode(probe::ProbeMode::Off);
        probe::reset();

        for (rank, (report, before, comm_sends)) in per_rank.into_iter().enumerate() {
            let iters_u64 = iters as u64;
            let span_calls = |name: &str| -> u64 {
                report.span(name).map(|s| s.calls).unwrap_or(0)
                    - before.span(name).map(|s| s.calls).unwrap_or(0)
            };
            // Every phase runs exactly once per matvec.
            prop_assert_eq!(span_calls("matvec"), iters_u64);
            prop_assert_eq!(span_calls("halo_post"), iters_u64);
            prop_assert_eq!(span_calls("spmv_interior"), iters_u64);
            prop_assert_eq!(span_calls("halo_drain"), iters_u64);
            prop_assert_eq!(span_calls("spmv_boundary"), iters_u64);
            prop_assert_eq!(
                report.counter(probe::Counter::MatvecCalls)
                    - before.counter(probe::Counter::MatvecCalls),
                iters_u64
            );

            // Halo traffic: one message per neighbour per matvec, 8 bytes
            // (one f64) each for the 1-D Laplacian, and the communicator's
            // own send count agrees with the probe's.
            let msgs = report.counter(probe::Counter::HaloMessages)
                - before.counter(probe::Counter::HaloMessages);
            let bytes = report.counter(probe::Counter::HaloBytes)
                - before.counter(probe::Counter::HaloBytes);
            prop_assert_eq!(msgs, iters_u64 * expected_halo_msgs(rank, p));
            prop_assert_eq!(bytes, msgs * 8);
            prop_assert_eq!(comm_sends, msgs);

            // Phase times nest inside the matvec total: the four children
            // cannot exceed their parent (allow scheduler jitter slop).
            let total = |name: &str| report.span(name).map(|s| s.total_s).unwrap_or(0.0);
            let children = total("halo_post")
                + total("spmv_interior")
                + total("halo_drain")
                + total("spmv_boundary");
            prop_assert!(children <= total("matvec") + 1e-4);
            for s in &report.spans {
                prop_assert!(s.self_s >= 0.0);
                prop_assert!(s.self_s <= s.total_s + 1e-9);
            }
        }
    }
}

#[test]
fn disabled_probe_path_is_allocation_free_in_steady_state() {
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    probe::set_mode(probe::ProbeMode::Off);
    let p = 4;
    let n = 64;
    let a = rsparse::generate::laplacian_1d(n);
    let out = Universe::run(p, |comm| {
        let part = BlockRowPartition::even(n, comm.size());
        let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
        let dx = DistVector::from_global(part.clone(), comm.rank(), &vec![1.0; n]).unwrap();
        let mut dy = DistVector::zeros(part, comm.rank());
        // Prime the workspace, then hammer the steady state.
        da.matvec_into(comm, &dx, &mut dy).unwrap();
        for _ in 0..20 {
            da.matvec_into(comm, &dx, &mut dy).unwrap();
        }
        let report = probe::local_report();
        (
            da.steady_state_allocs(),
            report.counter(probe::Counter::SteadyStateAllocs),
            report.span("matvec").is_none(),
            report.counter(probe::Counter::MatvecCalls),
        )
    });
    probe::reset();
    for (allocs, probe_allocs, no_span, matvecs) in out {
        assert_eq!(allocs, 0, "steady-state matvec must not allocate");
        assert_eq!(probe_allocs, 0);
        assert!(no_span, "disabled probe must record no spans");
        // Counters stay live even when spans are off.
        assert_eq!(matvecs, 21);
    }
}
