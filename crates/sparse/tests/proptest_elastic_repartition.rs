//! Elastic-recovery invariant: a matrix rebuilt on a shrunken cohort is
//! indistinguishable from one set up fresh at the survivor count.
//!
//! For random CSR patterns and cohorts of 3–9 ranks losing one rank, the
//! survivors shrink their communicator, repartition the lost rank's block
//! rows (contributed by the mirror-holding neighbour), and rebuild through
//! the ordinary setup path. The rebuilt operator must match a fresh setup
//! at the survivor count **bitwise**: identical halo-plan digests and
//! identical SpMV results, per rank.

use proptest::collection::vec;
use proptest::prelude::*;
use rcomm::Universe;
use rsparse::{BlockRowPartition, CooMatrix, CsrMatrix, DistCsrMatrix, DistVector};

fn to_csr(n: usize, t: &[(usize, usize, f64)]) -> CsrMatrix {
    let r: Vec<usize> = t.iter().map(|e| e.0).collect();
    let c: Vec<usize> = t.iter().map(|e| e.1).collect();
    let v: Vec<f64> = t.iter().map(|e| e.2).collect();
    CooMatrix::from_triplets(n, n, &r, &c, &v).unwrap().to_csr()
}

/// Survivors of losing `dead` out of `p_old` ranks: shrink, repartition
/// (the neighbour `(dead+1) % p_old` holds the lost block's mirror),
/// rebuild, and return each survivor's `(digest, full matvec result)`.
fn run_shrunken(
    a: &CsrMatrix,
    x: &[f64],
    p_old: usize,
    dead: usize,
) -> Vec<Option<(String, Vec<f64>)>> {
    let n = a.rows();
    Universe::run(p_old, |comm| {
        if comm.rank() == dead {
            return None;
        }
        let survivors: Vec<usize> = (0..p_old).filter(|&r| r != dead).collect();
        let sub = comm.shrink(&survivors).unwrap();
        let old_part = BlockRowPartition::even(n, p_old);
        let old_range = old_part.range(comm.rank());
        let local = a.row_block(old_range.start, old_range.end).unwrap();
        let rhs = x[old_range.clone()].to_vec();
        // The ring neighbour keeps the dead rank's block alive.
        let extra = if comm.rank() == (dead + 1) % p_old {
            let r = old_part.range(dead);
            Some((r.start, a.row_block(r.start, r.end).unwrap(), x[r.clone()].to_vec()))
        } else {
            None
        };
        let (new_start, new_local, new_rhs) = DistCsrMatrix::repartition_block_rows(
            &sub,
            old_range.start,
            &local,
            &rhs,
            extra,
            n,
        )
        .unwrap();
        let part = BlockRowPartition::even(n, sub.size());
        assert_eq!(new_start, part.start_row(sub.rank()));
        let da = DistCsrMatrix::from_local_rows(&sub, part.clone(), new_local).unwrap();
        let dx = DistVector::from_local(part, sub.rank(), new_rhs).unwrap();
        let dy = da.matvec(&sub, &dx).unwrap();
        Some((da.halo_plan_digest(), dy.allgather_full(&sub).unwrap()))
    })
}

/// Fresh setup at `p` ranks: each rank's `(digest, full matvec result)`.
fn run_fresh(a: &CsrMatrix, x: &[f64], p: usize) -> Vec<(String, Vec<f64>)> {
    let n = a.rows();
    Universe::run(p, |comm| {
        let part = BlockRowPartition::even(n, comm.size());
        let da = DistCsrMatrix::from_global(comm, part.clone(), a).unwrap();
        let dx = DistVector::from_global(part, comm.rank(), x).unwrap();
        let dy = da.matvec(comm, &dx).unwrap();
        (da.halo_plan_digest(), dy.allgather_full(comm).unwrap())
    })
}

proptest! {
    // Each case spawns two universes; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn shrunken_rebuild_is_bitwise_identical_to_fresh_setup(
        (n, t) in (9usize..24).prop_flat_map(|n| {
            (Just(n), vec((0..n, 0..n, -10.0f64..10.0), 1..80))
        }),
        p_old in 3usize..=9,
        dead_pick in any::<usize>(),
        xseed in any::<u64>(),
    ) {
        let a = to_csr(n, &t);
        let x = rsparse::generate::random_vector(n, xseed);
        let dead = dead_pick % p_old;
        let shrunken = run_shrunken(&a, &x, p_old, dead);
        let fresh = run_fresh(&a, &x, p_old - 1);
        prop_assert!(shrunken[dead].is_none());
        let survivors: Vec<_> =
            shrunken.into_iter().flatten().collect();
        prop_assert_eq!(survivors.len(), p_old - 1);
        for (i, ((sd, sy), (fd, fy))) in
            survivors.iter().zip(&fresh).enumerate()
        {
            prop_assert_eq!(sd, fd, "survivor {} halo-plan digest differs", i);
            prop_assert_eq!(sy.len(), fy.len());
            for (g, e) in sy.iter().zip(fy) {
                prop_assert_eq!(g.to_bits(), e.to_bits(),
                    "survivor {} SpMV differs bitwise", i);
            }
        }
    }
}
