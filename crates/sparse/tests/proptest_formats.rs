//! Property-based tests on the format layer: conversions must round-trip,
//! every format's matvec must agree with the dense reference, and the
//! distributed matvec must agree with the serial one for arbitrary
//! matrices and rank counts.

use proptest::collection::vec;
use proptest::prelude::*;
use rsparse::convert::{coo_arrays_to_csr, csr_to_vbr_uniform};
use rsparse::{
    BlockRowPartition, CooMatrix, DistCsrMatrix, DistVector, MsrMatrix,
};

/// Strategy: a random sparse matrix given as triplets (duplicates allowed —
/// they must be summed).
fn arb_triplets(
    max_dim: usize,
    max_nnz: usize,
) -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(r, c)| {
        let entry = (0..r, 0..c, -100.0f64..100.0);
        vec(entry, 0..=max_nnz).prop_map(move |t| (r, c, t))
    })
}

fn to_coo(rows: usize, cols: usize, t: &[(usize, usize, f64)]) -> CooMatrix {
    let r: Vec<usize> = t.iter().map(|e| e.0).collect();
    let c: Vec<usize> = t.iter().map(|e| e.1).collect();
    let v: Vec<f64> = t.iter().map(|e| e.2).collect();
    CooMatrix::from_triplets(rows, cols, &r, &c, &v).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn coo_to_csr_sums_duplicates_like_dense((rows, cols, t) in arb_triplets(12, 40)) {
        let coo = to_coo(rows, cols, &t);
        let csr = coo.to_csr();
        // Dense reference accumulation.
        let mut dense = vec![0.0f64; rows * cols];
        for &(r, c, v) in &t {
            dense[r * cols + c] += v;
        }
        for i in 0..rows {
            for j in 0..cols {
                prop_assert!((csr.get(i, j) - dense[i * cols + j]).abs() < 1e-9);
            }
        }
        // Invariants: sorted unique columns per row.
        for i in 0..rows {
            let (cs, _) = csr.row(i);
            for w in cs.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn csr_csc_round_trip((rows, cols, t) in arb_triplets(12, 40)) {
        let a = to_coo(rows, cols, &t).to_csr();
        prop_assert_eq!(a.to_csc().to_csr(), a.clone());
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn msr_round_trip_square((n, t) in (1usize..12).prop_flat_map(|n| {
        (Just(n), vec((0..n, 0..n, -10.0f64..10.0), 0..30))
    })) {
        let a = to_coo(n, n, &t).to_csr();
        let m = MsrMatrix::from_csr(&a).unwrap();
        prop_assert_eq!(m.to_csr(), a);
    }

    #[test]
    fn vbr_round_trip_any_block_size(
        (rows, cols, t) in arb_triplets(10, 30),
        bs in 1usize..6,
    ) {
        let a = to_coo(rows, cols, &t).to_csr();
        let v = csr_to_vbr_uniform(&a, bs).unwrap();
        prop_assert_eq!(v.to_csr(), a);
    }

    #[test]
    fn all_format_matvecs_agree(
        (rows, cols, t) in arb_triplets(10, 30),
        xseed in any::<u64>(),
    ) {
        let coo = to_coo(rows, cols, &t);
        let csr = coo.to_csr();
        let x = rsparse::generate::random_vector(cols, xseed);
        let dense_y = csr.to_dense().matvec(&x).unwrap();
        let close = |a: &[f64], b: &[f64]| {
            a.iter().zip(b).all(|(p, q)| (p - q).abs() < 1e-9 * (1.0 + q.abs()))
        };
        prop_assert!(close(&csr.matvec(&x).unwrap(), &dense_y));
        prop_assert!(close(&coo.matvec(&x).unwrap(), &dense_y));
        prop_assert!(close(&csr.matvec_par(&x).unwrap(), &dense_y));
        prop_assert!(close(&csr.to_csc().matvec(&x).unwrap(), &dense_y));
        let v = csr_to_vbr_uniform(&csr, 3).unwrap();
        prop_assert!(close(&v.matvec(&x).unwrap(), &dense_y));
    }

    #[test]
    fn matmul_matches_dense(
        (n, ta, tb) in (1usize..9).prop_flat_map(|n| {
            let e = (0..n, 0..n, -5.0f64..5.0);
            (Just(n), vec(e.clone(), 0..20), vec(e, 0..20))
        })
    ) {
        let a = to_coo(n, n, &ta).to_csr();
        let b = to_coo(n, n, &tb).to_csr();
        let c = rsparse::ops::matmul(&a, &b).unwrap();
        let (ad, bd, cd) = (a.to_dense(), b.to_dense(), c.to_dense());
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += ad[(i, k)] * bd[(k, j)];
                }
                prop_assert!((cd[(i, j)] - s).abs() < 1e-9 * (1.0 + s.abs()));
            }
        }
    }

    #[test]
    fn add_matches_dense(
        (n, ta, tb) in (1usize..9).prop_flat_map(|n| {
            let e = (0..n, 0..n, -5.0f64..5.0);
            (Just(n), vec(e.clone(), 0..20), vec(e, 0..20))
        }),
        alpha in -3.0f64..3.0,
        beta in -3.0f64..3.0,
    ) {
        let a = to_coo(n, n, &ta).to_csr();
        let b = to_coo(n, n, &tb).to_csr();
        let c = rsparse::ops::add(alpha, &a, beta, &b).unwrap();
        let (ad, bd, cd) = (a.to_dense(), b.to_dense(), c.to_dense());
        for i in 0..n {
            for j in 0..n {
                let s = alpha * ad[(i, j)] + beta * bd[(i, j)];
                prop_assert!((cd[(i, j)] - s).abs() < 1e-9 * (1.0 + s.abs()));
            }
        }
    }

    #[test]
    fn one_based_offset_is_exact_shift((rows, cols, t) in arb_triplets(10, 25)) {
        let r0: Vec<usize> = t.iter().map(|e| e.0).collect();
        let c0: Vec<usize> = t.iter().map(|e| e.1).collect();
        let v: Vec<f64> = t.iter().map(|e| e.2).collect();
        let zero_based = coo_arrays_to_csr(rows, cols, &v, &r0, &c0, 0).unwrap();
        let r1: Vec<usize> = r0.iter().map(|x| x + 1).collect();
        let c1: Vec<usize> = c0.iter().map(|x| x + 1).collect();
        let one_based = coo_arrays_to_csr(rows, cols, &v, &r1, &c1, 1).unwrap();
        prop_assert_eq!(zero_based, one_based);
    }

    #[test]
    fn matrix_market_round_trip((rows, cols, t) in arb_triplets(10, 25)) {
        let a = to_coo(rows, cols, &t).to_csr();
        let mut buf = Vec::new();
        rsparse::io::write_matrix(&mut buf, &a).unwrap();
        let back = rsparse::io::read_matrix(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back, a);
    }
}

proptest! {
    // Distributed cases spawn threads; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn dist_update_values_preserves_matvec(
        (n, t) in (2usize..14).prop_flat_map(|n| {
            (Just(n), vec((0..n, 0..n, -10.0f64..10.0), 1..50))
        }),
        p in 1usize..4,
        scale in -3.0f64..3.0,
    ) {
        // After update_values with scaled values, the distributed matvec
        // must match the scaled serial matvec — this exercises the
        // compiled-column reordering logic for arbitrary patterns.
        let a = to_coo(n, n, &t).to_csr();
        let x = rsparse::generate::random_vector(n, 77);
        let expect = rsparse::ops::scale(scale, &a).matvec(&x).unwrap();
        let out = rcomm::Universe::run(p, |comm| {
            let part = BlockRowPartition::even(n, comm.size());
            let mut da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
            let vals: Vec<f64> =
                da.local_matrix().values().iter().map(|v| v * scale).collect();
            da.update_values(&vals).unwrap();
            let dx = DistVector::from_global(part, comm.rank(), &x).unwrap();
            da.matvec(comm, &dx).unwrap().allgather_full(comm).unwrap()
        });
        for got in out {
            for (g, e) in got.iter().zip(&expect) {
                prop_assert!((g - e).abs() < 1e-9 * (1.0 + e.abs()));
            }
        }
    }

    #[test]
    fn dist_matvec_equals_serial(
        (n, t) in (2usize..16).prop_flat_map(|n| {
            (Just(n), vec((0..n, 0..n, -10.0f64..10.0), 1..60))
        }),
        p in 1usize..5,
        xseed in any::<u64>(),
    ) {
        let a = to_coo(n, n, &t).to_csr();
        let x = rsparse::generate::random_vector(n, xseed);
        let expect = a.matvec(&x).unwrap();
        let out = rcomm::Universe::run(p, |comm| {
            let part = BlockRowPartition::even(n, comm.size());
            let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
            let dx = DistVector::from_global(part, comm.rank(), &x).unwrap();
            da.matvec(comm, &dx).unwrap().allgather_full(comm).unwrap()
        });
        for got in out {
            for (g, e) in got.iter().zip(&expect) {
                prop_assert!((g - e).abs() < 1e-9 * (1.0 + e.abs()));
            }
        }
    }
}
