//! Fuzz/property tests on the MatrixMarket reader: hostile input must
//! produce typed errors, never panics, and valid input must round-trip.

use proptest::prelude::*;
use rsparse::io::{read_matrix, read_vector, write_matrix, write_vector};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn reader_never_panics_on_arbitrary_text(input in ".{0,400}") {
        let _ = read_matrix(std::io::Cursor::new(input.clone()));
        let _ = read_vector(std::io::Cursor::new(input));
    }

    #[test]
    fn reader_never_panics_on_mm_flavoured_soup(
        lines in proptest::collection::vec(
            proptest::sample::select(vec![
                "%%MatrixMarket matrix coordinate real general",
                "%%MatrixMarket matrix coordinate real symmetric",
                "%%MatrixMarket matrix array real general",
                "% comment",
                "",
                "3 3 2",
                "3 1",
                "1 1 1.0",
                "2 2",
                "0 0 0.0",
                "9 9 9.9",
                "-1 2 3",
                "a b c",
                "1.5",
            ]),
            0..12,
        )
    ) {
        let input = lines.join("\n");
        let _ = read_matrix(std::io::Cursor::new(input.clone()));
        let _ = read_vector(std::io::Cursor::new(input));
    }

    #[test]
    fn valid_matrices_round_trip(
        n in 1usize..12,
        entries in proptest::collection::vec((0usize..12, 0usize..12, -1e6f64..1e6), 0..30),
    ) {
        let mut coo = rsparse::CooMatrix::new(n, n);
        for (r, c, v) in entries {
            if r < n && c < n {
                coo.push(r, c, v).unwrap();
            }
        }
        let a = coo.to_csr();
        let mut buf = Vec::new();
        write_matrix(&mut buf, &a).unwrap();
        let back = read_matrix(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn valid_vectors_round_trip(v in proptest::collection::vec(-1e9f64..1e9, 0..40)) {
        let mut buf = Vec::new();
        write_vector(&mut buf, &v).unwrap();
        let back = read_vector(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back, v);
    }
}
