//! Substrate kernel benches: SpMV variants (serial, rayon, distributed)
//! and sparse-format conversions — the building blocks whose costs bound
//! the interface overhead the paper measures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rcomm::Universe;
use rsparse::{
    generate, BcsrMatrix, BlockRowPartition, DistCsrMatrix, DistVector, MsrMatrix, SellMatrix,
};

fn spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    for m in [50usize, 100, 200] {
        let a = generate::laplacian_2d(m);
        let x = generate::random_vector(a.cols(), 7);
        group.throughput(Throughput::Elements(a.nnz() as u64));
        group.bench_with_input(BenchmarkId::new("serial", m), &m, |b, _| {
            let mut y = vec![0.0; a.rows()];
            b.iter(|| a.matvec_into(&x, &mut y));
        });
        group.bench_with_input(BenchmarkId::new("threaded", m), &m, |b, _| {
            // Allocation-free threaded SpMV at the host's parallelism
            // (restored afterwards so later benches stay serial).
            let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
            let prev = rsparse::threads::active();
            rsparse::threads::set_threads(cores);
            let mut y = vec![0.0; a.rows()];
            b.iter(|| a.matvec_par_into(&x, &mut y));
            rsparse::threads::set_threads(prev);
        });
        group.bench_with_input(BenchmarkId::new("dist4", m), &m, |b, _| {
            b.iter(|| {
                Universe::run(4, |comm| {
                    let part = BlockRowPartition::even(a.rows(), comm.size());
                    let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
                    let dx = DistVector::from_global(part, comm.rank(), &x).unwrap();
                    // Time several matvecs so the distribution cost
                    // amortizes like a solver's would.
                    let mut dy = da.matvec(comm, &dx).unwrap();
                    for _ in 0..9 {
                        da.matvec_into(comm, &dx, &mut dy).unwrap();
                    }
                    dy.local()[0]
                })
            });
        });
    }
    group.finish();
}

/// Serial SpMV across the adaptive storage formats on format-friendly
/// patterns: SELL-C-σ on the 5-point stencil (uniform rows), block-CSR
/// on a FEM-style 3-dof assembly (full tiles), with the CSR kernel on
/// the same matrix as the baseline in each case. All three are
/// bit-identical; only the time may differ.
fn spmv_formats(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv_formats");
    let stencil = generate::laplacian_2d(200);
    let fem = generate::fem_block(80, 3, 2);
    for (label, a) in [("stencil200", &stencil), ("femb3", &fem)] {
        let x = generate::random_vector(a.cols(), 7);
        group.throughput(Throughput::Elements(a.nnz() as u64));
        group.bench_function(BenchmarkId::new("csr", label), |b| {
            let mut y = vec![0.0; a.rows()];
            b.iter(|| a.matvec_into(&x, &mut y));
        });
        group.bench_function(BenchmarkId::new("sell", label), |b| {
            let s = SellMatrix::from_csr(a);
            let mut y = vec![0.0; a.rows()];
            b.iter(|| s.matvec_into(&x, &mut y));
        });
        group.bench_function(BenchmarkId::new("bcsr", label), |b| {
            let m = BcsrMatrix::from_csr(a);
            let mut y = vec![0.0; a.rows()];
            b.iter(|| m.matvec_into(&x, &mut y));
        });
    }
    group.finish();
}

/// The probe-overhead guard: the dist4 m=200 SpMV workload with the probe
/// off vs. on, back-to-back in one process. "disabled" is the same machine
/// code as the plain `spmv/dist4/200` bench (mode checks are one relaxed
/// atomic load), so the enabled-vs-disabled delta is the runtime-measurable
/// probe cost; scripts/bench_smoke.sh gates it against the <2% target and
/// records the disabled-vs-plain delta as the cross-process noise floor.
fn probe_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe_overhead");
    let m = 200usize;
    let a = generate::laplacian_2d(m);
    let x = generate::random_vector(a.cols(), 7);
    for (label, mode) in [
        ("disabled", probe::ProbeMode::Off),
        ("enabled", probe::ProbeMode::Summary),
    ] {
        group.bench_function(label, |b| {
            probe::set_mode(mode);
            b.iter(|| {
                Universe::run(4, |comm| {
                    let part = BlockRowPartition::even(a.rows(), comm.size());
                    let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
                    let dx = DistVector::from_global(part, comm.rank(), &x).unwrap();
                    let mut dy = da.matvec(comm, &dx).unwrap();
                    for _ in 0..9 {
                        da.matvec_into(comm, &dx, &mut dy).unwrap();
                    }
                    dy.local()[0]
                })
            });
        });
    }
    probe::set_mode(probe::ProbeMode::Off);
    probe::reset();
    group.finish();
}

fn conversions(c: &mut Criterion) {
    let mut group = c.benchmark_group("convert");
    let a = generate::laplacian_2d(100);
    group.throughput(Throughput::Elements(a.nnz() as u64));
    group.bench_function("csr_to_coo", |b| b.iter(|| a.to_coo()));
    let coo = a.to_coo();
    group.bench_function("coo_to_csr", |b| b.iter(|| coo.to_csr()));
    group.bench_function("csr_to_csc", |b| b.iter(|| a.to_csc()));
    group.bench_function("csr_to_msr", |b| b.iter(|| MsrMatrix::from_csr(&a).unwrap()));
    group.bench_function("csr_transpose", |b| b.iter(|| a.transpose()));
    group.finish();
}

fn assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("assembly");
    for m in [100usize, 200] {
        group.bench_with_input(BenchmarkId::new("paper_problem", m), &m, |b, &m| {
            let p = rmesh::paper_problem(m);
            b.iter(|| p.assemble_global());
        });
    }
    group.finish();
}

criterion_group!(benches, spmv, spmv_formats, probe_overhead, conversions, assembly);
criterion_main!(benches);
