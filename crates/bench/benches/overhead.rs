//! Criterion benches behind the paper's two results artifacts:
//!
//! * `tab1/*` — Table 1: the RKSP component through the CCA/LISI path vs
//!   the native path at increasing problem sizes (fixed rank count);
//! * `fig5/*` — Figure 5: all three packages, both paths, across rank
//!   counts at a fixed size.
//!
//! Sizes are scaled down from the paper's (these run inside `cargo
//! bench`); the full-size regeneration is `cargo run --release --bin
//! table1` / `--bin figure5`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lisi_bench::{paper_workload, run_cca, run_native, Package};
use rcomm::Universe;

fn tab1(c: &mut Criterion) {
    let mut group = c.benchmark_group("tab1");
    group.sample_size(10);
    for m in [20usize, 40, 60] {
        let w = paper_workload(m);
        group.bench_with_input(BenchmarkId::new("cca", w.nnz()), &w, |b, w| {
            b.iter(|| Universe::run(4, |comm| run_cca(comm, Package::Rksp, w).seconds));
        });
        group.bench_with_input(BenchmarkId::new("native", w.nnz()), &w, |b, w| {
            b.iter(|| Universe::run(4, |comm| run_native(comm, Package::Rksp, w).seconds));
        });
    }
    group.finish();
}

fn fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    let w = paper_workload(40);
    for package in Package::ALL {
        for p in [1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("{}-cca", package.name()), p),
                &p,
                |b, &p| {
                    b.iter(|| Universe::run(p, |comm| run_cca(comm, package, &w).seconds));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{}-native", package.name()), p),
                &p,
                |b, &p| {
                    b.iter(|| Universe::run(p, |comm| run_native(comm, package, &w).seconds));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, tab1, fig5);
criterion_main!(benches);
