//! Ablation benches for the design decisions the paper argues in §6:
//!
//! * `rarray_vs_object` (§6.1/§6.2) — passing the assembled system as raw
//!   primitive arrays (LISI's choice) vs wrapping it in Matrix/Vector
//!   objects first and letting the solver pull entries back out through a
//!   virtual interface (the rejected object-composition design);
//! * `format_ingest` (§5.3) — what each `SparseStruct` input format costs
//!   the adapter to convert to the package's native structure;
//! * `reuse` (§5.2 b–d) — factorization/preconditioner reuse vs full
//!   re-setup on repeated solves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lisi::{SparseSolverPort, SparseStruct};
use rcomm::Universe;
use rsparse::generate;

/// The rejected design: a virtual "Matrix object" the solver reads
/// entry-by-entry through dynamic dispatch (plus the up-front copy into
/// the object).
trait MatrixObject: Send + Sync {
    fn nnz(&self) -> usize;
    fn entry(&self, k: usize) -> (usize, usize, f64);
}

struct TripletObject {
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl MatrixObject for TripletObject {
    fn nnz(&self) -> usize {
        self.vals.len()
    }
    fn entry(&self, k: usize) -> (usize, usize, f64) {
        (self.rows[k], self.cols[k], self.vals[k])
    }
}

fn rarray_vs_object(c: &mut Criterion) {
    let mut group = c.benchmark_group("rarray_vs_object");
    for m in [40usize, 80] {
        let a = generate::laplacian_2d(m);
        let coo = a.to_coo();
        let (r, cidx, v) = coo.triplets();
        let n = a.rows();

        // LISI's choice: slices in, one conversion.
        group.bench_with_input(BenchmarkId::new("rarray", m), &m, |b, _| {
            b.iter(|| {
                rsparse::convert::coo_arrays_to_csr(n, n, v, r, cidx, 0).unwrap().nnz()
            });
        });
        // Object composition: copy into the object, then pull every entry
        // back through a vtable.
        group.bench_with_input(BenchmarkId::new("object", m), &m, |b, _| {
            b.iter(|| {
                let obj: Box<dyn MatrixObject> = Box::new(TripletObject {
                    rows: r.to_vec(),
                    cols: cidx.to_vec(),
                    vals: v.to_vec(),
                });
                let mut coo = rsparse::CooMatrix::new(n, n);
                for k in 0..obj.nnz() {
                    let (rr, cc, vv) = obj.entry(k);
                    coo.push(rr, cc, vv).unwrap();
                }
                coo.to_csr().nnz()
            });
        });
    }
    group.finish();
}

fn format_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("format_ingest");
    let m = 60usize;
    let a = generate::laplacian_2d(m);
    let n = a.rows();

    let ingest = |structure: SparseStruct,
                  values: Vec<f64>,
                  rows: Vec<usize>,
                  cols: Vec<usize>,
                  bs: usize| {
        move || {
            Universe::run(1, |comm| {
                let s = lisi::RkspAdapter::new();
                s.initialize(comm.dup().unwrap()).unwrap();
                s.set_start_row(0).unwrap();
                s.set_local_rows(n).unwrap();
                s.set_global_cols(n).unwrap();
                s.set_block_size(bs).unwrap();
                s.setup_matrix(&values, &rows, &cols, structure).unwrap();
            })
        }
    };

    let coo = a.to_coo();
    let (r, cidx, v) = coo.triplets();
    group.bench_function("coo", {
        let f = ingest(SparseStruct::Coo, v.to_vec(), r.to_vec(), cidx.to_vec(), 1);
        move |b| b.iter(&f)
    });
    group.bench_function("csr", {
        let f = ingest(
            SparseStruct::Csr,
            a.values().to_vec(),
            a.row_ptr().to_vec(),
            a.col_idx().to_vec(),
            1,
        );
        move |b| b.iter(&f)
    });
    let msr = rsparse::MsrMatrix::from_csr(&a).unwrap();
    let (mval, mja) = msr.parts();
    group.bench_function("msr", {
        let f = ingest(SparseStruct::Msr, mval.to_vec(), vec![], mja.to_vec(), 1);
        move |b| b.iter(&f)
    });
    // Uniform 2×2 VBR arrays (m even ⇒ n divisible by 2).
    let bs = 2usize;
    let nbr = n / bs;
    let mut bptr = vec![0usize];
    let mut bindx = Vec::new();
    let mut bvals = Vec::new();
    for br in 0..nbr {
        let mut present: Vec<usize> = Vec::new();
        for lr in 0..bs {
            for &c in a.row(br * bs + lr).0 {
                let bc = c / bs;
                if !present.contains(&bc) {
                    present.push(bc);
                }
            }
        }
        present.sort_unstable();
        for &bc in &present {
            let base = bvals.len();
            bvals.resize(base + bs * bs, 0.0);
            for lr in 0..bs {
                let (cs, vs) = a.row(br * bs + lr);
                for (&c, &vv) in cs.iter().zip(vs) {
                    if c / bs == bc {
                        bvals[base + (c % bs) * bs + lr] = vv;
                    }
                }
            }
            bindx.push(bc);
        }
        bptr.push(bindx.len());
    }
    group.bench_function("vbr", {
        let f = ingest(SparseStruct::Vbr, bvals, bptr, bindx, bs);
        move |b| b.iter(&f)
    });
    group.finish();
}

fn reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("reuse");
    group.sample_size(10);
    let a = generate::laplacian_2d(30);
    let n = a.rows();
    let rhs: Vec<Vec<f64>> = (0..5).map(|s| generate::random_vector(n, s)).collect();

    // Scenario (b/c): factor once, solve many.
    group.bench_function("direct_factor_once", |b| {
        b.iter(|| {
            let mut s = rdirect::RsluSolver::new(rdirect::RsluOptions::default());
            s.factorize(&a).unwrap();
            for b_k in &rhs {
                let _ = s.solve(b_k).unwrap();
            }
        });
    });
    // The naive pattern LISI's reuse semantics avoid: refactor per solve.
    group.bench_function("direct_refactor_each", |b| {
        b.iter(|| {
            for b_k in &rhs {
                let mut s = rdirect::RsluSolver::new(rdirect::RsluOptions::default());
                s.factorize(&a).unwrap();
                let _ = s.solve(b_k).unwrap();
            }
        });
    });
    // Scenario (d): same pattern, new values — symbolic reuse.
    group.bench_function("direct_refactorize_same_pattern", |b| {
        b.iter(|| {
            let mut s = rdirect::RsluSolver::new(rdirect::RsluOptions::default());
            s.factorize(&a).unwrap();
            for k in 0..4 {
                let vals: Vec<f64> =
                    a.values().iter().map(|v| v * (1.0 + 0.1 * k as f64)).collect();
                s.refactorize(&vals).unwrap();
                let _ = s.solve(&rhs[0]).unwrap();
            }
        });
    });
    group.finish();
}

/// The constant per-call cost the CCA layer adds: the same parameter
/// setter invoked directly on the adapter vs through the type-erased
/// framework port (`Arc<dyn SparseSolverPort>` fetched via `get_port`).
/// This is the "constant number of interface calls ⇒ constant overhead"
/// argument of the paper's Table 1 discussion, isolated.
fn port_dispatch(c: &mut Criterion) {
    use lisi_bench::{wire_component, Package};
    let mut group = c.benchmark_group("port_dispatch");
    // Direct adapter call.
    group.bench_function("direct_set", |b| {
        let adapter = lisi::RkspAdapter::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            adapter.set_int("maxits", (i % 1000) as i64).unwrap();
        });
    });
    // Through the framework-fetched port object.
    group.bench_function("via_port_set", |b| {
        let (_fw, port) = wire_component(Package::Rksp);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            port.set_int("maxits", (i % 1000) as i64).unwrap();
        });
    });
    // Port fetch itself (the per-solve getPort cost).
    group.bench_function("get_port", |b| {
        use std::sync::Arc;
        let (fw, _port) = wire_component(Package::Rksp);
        let driver = fw.component_id("driver").expect("wire_component names it");
        let services = fw.services(&driver).unwrap();
        b.iter(|| {
            services
                .get_port::<Arc<dyn lisi::SparseSolverPort>>("solver")
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, rarray_vs_object, format_ingest, reuse, port_dispatch);
criterion_main!(benches);
