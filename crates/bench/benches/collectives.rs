//! Message-passing substrate benches: collective latencies at the rank
//! counts the paper's experiments use. Each iteration spins up a fresh
//! universe and runs a burst of collectives, so the number reported is
//! "universe + N collectives"; comparisons across rank counts are what
//! matter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcomm::Universe;

const BURST: usize = 100;

fn allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce");
    group.sample_size(10);
    for p in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("scalar", p), &p, |b, &p| {
            b.iter(|| {
                Universe::run(p, |comm| {
                    let mut acc = 0.0;
                    for i in 0..BURST {
                        acc += comm.allreduce(i as f64, rcomm::sum).unwrap();
                    }
                    acc
                })
            });
        });
        group.bench_with_input(BenchmarkId::new("vec32", p), &p, |b, &p| {
            b.iter(|| {
                Universe::run(p, |comm| {
                    let v = vec![1.0f64; 32];
                    let mut acc = 0.0;
                    for _ in 0..BURST / 4 {
                        acc += comm.allreduce_vec(&v, rcomm::sum).unwrap()[0];
                    }
                    acc
                })
            });
        });
    }
    group.finish();
}

fn bcast_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("bcast_barrier");
    group.sample_size(10);
    for p in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("bcast1k", p), &p, |b, &p| {
            b.iter(|| {
                Universe::run(p, |comm| {
                    let payload = if comm.is_root() { vec![1u8; 1024] } else { vec![] };
                    let mut total = 0usize;
                    for _ in 0..BURST / 4 {
                        total += comm.bcast(0, payload.clone()).unwrap().len();
                    }
                    total
                })
            });
        });
        group.bench_with_input(BenchmarkId::new("barrier", p), &p, |b, &p| {
            b.iter(|| {
                Universe::run(p, |comm| {
                    for _ in 0..BURST {
                        comm.barrier().unwrap();
                    }
                })
            });
        });
    }
    group.finish();
}

fn halo_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("halo");
    group.sample_size(10);
    // The paper's actual communication pattern: distributed SpMV halos.
    let a = rsparse::generate::laplacian_2d(60);
    for p in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("spmv_burst", p), &p, |b, &p| {
            b.iter(|| {
                Universe::run(p, |comm| {
                    let part =
                        rsparse::BlockRowPartition::even(a.rows(), comm.size());
                    let da =
                        rsparse::DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
                    let x = rsparse::generate::random_vector(a.rows(), 3);
                    let dx =
                        rsparse::DistVector::from_global(part.clone(), comm.rank(), &x).unwrap();
                    let mut dy = rsparse::DistVector::zeros(part, comm.rank());
                    for _ in 0..20 {
                        da.matvec_into(comm, &dx, &mut dy).unwrap();
                    }
                    dy.local()[0]
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, allreduce, bcast_barrier, halo_exchange);
criterion_main!(benches);
