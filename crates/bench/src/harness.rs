//! The two call paths (native vs CCA/LISI) and the timing machinery.

use std::sync::Arc;

use cca::Framework;
use lisi::{SolverComponent, SparseSolverPort, SOLVER_PORT, SOLVER_PORT_TYPE};
use rcomm::Communicator;
use rsparse::{DistCsrMatrix, DistVector};

use crate::workload::Workload;

/// Which solver package a run exercises (the paper's PETSc / Trilinos /
/// SuperLU triple).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Package {
    /// RKSP — the PETSc stand-in.
    Rksp,
    /// RAztec — the Trilinos stand-in.
    Raztec,
    /// RSLU — the SuperLU stand-in.
    Rslu,
}

impl Package {
    /// All three, in the paper's order.
    pub const ALL: [Package; 3] = [Package::Rksp, Package::Raztec, Package::Rslu];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Package::Rksp => "RKSP",
            Package::Raztec => "RAztec",
            Package::Rslu => "RSLU",
        }
    }
}

/// Outcome of one timed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Wall seconds of the solve workflow (max over ranks).
    pub seconds: f64,
    /// Iterations reported by the solver (0 for the direct package).
    pub iterations: usize,
    /// Final residual norm.
    pub residual: f64,
    /// Did the solver converge?
    pub converged: bool,
}

/// Synchronized wall-time of `f` on this communicator: barrier, run,
/// allreduce-max of the per-rank elapsed times. Timing goes through
/// [`probe::timed`], so when the probe is enabled the same measurement
/// also lands in the per-rank span table (and chrome trace) under `name`.
fn timed<R>(
    comm: &Communicator,
    name: &'static str,
    f: impl FnOnce() -> R,
) -> (f64, R) {
    comm.barrier().expect("barrier");
    let (r, mine) = probe::timed(name, f);
    let max = comm.allreduce(mine, rcomm::max).expect("allreduce");
    (max, r)
}

/// The **non-CCA** path: call the native package APIs directly, exactly
/// as a hand-coupled application would.
pub fn run_native(comm: &Communicator, package: Package, w: &Workload) -> RunResult {
    // Mesh generation is outside the measured region in the paper (it is
    // written to local files before the solve phase starts).
    let local = w.problem().assemble_local(comm);
    let partition = local.partition.clone();
    let rank = comm.rank();

    match package {
        Package::Rksp => {
            let mut opts = rkrylov::Options::new();
            for (k, v) in &w.params {
                opts.set(k, v);
            }
            let (secs, out) = timed(comm, "native", || {
                let setup = probe::SectionTimer::start("native_setup");
                let dist =
                    DistCsrMatrix::from_local_rows(comm, partition.clone(), local.matrix.clone())
                        .expect("distribute");
                let op = rkrylov::MatOperator::new(dist);
                let ksp = rkrylov::Ksp::from_options(&opts).expect("configure");
                let b = DistVector::from_local(partition.clone(), rank, local.rhs.clone())
                    .expect("rhs");
                setup.stop();
                let _solve = probe::span!("native_solve");
                let mut x = DistVector::zeros(partition.clone(), rank);
                let res = ksp.solve(comm, &op, &b, &mut x).expect("solve");
                (res.iterations, res.final_residual, res.converged())
            });
            RunResult { seconds: secs, iterations: out.0, residual: out.1, converged: out.2 }
        }
        Package::Raztec => {
            let mut az_opts = raztec::AztecOptions::default();
            for (k, v) in &w.params {
                match k.as_str() {
                    "solver" => az_opts.solver = raztec::AzSolver::parse(v).expect("solver"),
                    "preconditioner" => {
                        az_opts.precond = raztec::AzPrecond::parse(v).expect("precond")
                    }
                    "tol" => az_opts.tol = v.parse().expect("tol"),
                    "maxits" => az_opts.max_iter = v.parse().expect("maxits"),
                    _ => {}
                }
            }
            // Match the LISI convergence convention (‖r‖/‖b‖).
            az_opts.conv = raztec::AzConv::Rhs;
            let (secs, out) = timed(comm, "native", || {
                let setup = probe::SectionTimer::start("native_setup");
                let map = raztec::Map::from_partition(partition.clone(), rank);
                let a = raztec::CrsMatrix::from_local_rows(comm, map.clone(), local.matrix.clone())
                    .expect("distribute");
                let b = raztec::Vector::from_values(map.clone(), local.rhs.clone()).expect("rhs");
                let mut x = raztec::Vector::new(map);
                let mut az = raztec::AztecOO::new(&a);
                az.set_options(az_opts.clone());
                setup.stop();
                let _solve = probe::span!("native_solve");
                let st = az.iterate(comm, &b, &mut x).expect("solve");
                (st.its, st.true_residual, st.why.converged())
            });
            RunResult { seconds: secs, iterations: out.0, residual: out.1, converged: out.2 }
        }
        Package::Rslu => {
            let (secs, out) = timed(comm, "native", || {
                let setup = probe::SectionTimer::start("native_setup");
                let dist =
                    DistCsrMatrix::from_local_rows(comm, partition.clone(), local.matrix.clone())
                        .expect("distribute");
                let mut solver = rdirect::DistRslu::new(rdirect::RsluOptions::default());
                solver.factorize(comm, &dist).expect("factorize");
                let b = DistVector::from_local(partition.clone(), rank, local.rhs.clone())
                    .expect("rhs");
                setup.stop();
                let _solve = probe::span!("native_solve");
                let x = solver.solve(comm, &partition, &b).expect("solve");
                let r = {
                    // Residual check so both paths do equivalent work.
                    let ax = dist.matvec(comm, &x).expect("matvec");
                    let mut rr = b.clone();
                    rr.axpy(-1.0, &ax).expect("axpy");
                    rr.norm2(comm).expect("norm")
                };
                (0usize, r, true)
            });
            RunResult { seconds: secs, iterations: out.0, residual: out.1, converged: out.2 }
        }
    }
}

/// Build a framework with one solver component of the requested package
/// plus an application shell, wired together; returns the fetched port.
/// This is the once-per-application wiring cost, outside the measured
/// region (the paper's component instantiation happens at launch).
pub fn wire_component(package: Package) -> (Framework, Arc<dyn SparseSolverPort>) {
    struct App;
    impl cca::Component for App {
        fn set_services(&mut self, services: &cca::Services) -> cca::CcaResult<()> {
            services.register_uses_port("solver", SOLVER_PORT_TYPE)
        }
    }
    let mut fw = Framework::with_registry(cca::sidl::SidlRegistry::lisi());
    let app = fw.instantiate("driver", Box::new(App)).expect("app");
    let solver_id = match package {
        Package::Rksp => fw.instantiate("solver", Box::new(SolverComponent::rksp())),
        Package::Raztec => fw.instantiate("solver", Box::new(SolverComponent::raztec())),
        Package::Rslu => fw.instantiate("solver", Box::new(SolverComponent::rslu())),
    }
    .expect("solver component");
    fw.connect(&app, "solver", &solver_id, SOLVER_PORT).expect("connect");
    let port = fw
        .services(&app)
        .expect("services")
        .get_port::<Arc<dyn SparseSolverPort>>("solver")
        .expect("port");
    (fw, port)
}

/// The **CCA** path: the same workload pushed through the LISI port of a
/// solver component.
pub fn run_cca(comm: &Communicator, package: Package, w: &Workload) -> RunResult {
    let local = w.problem().assemble_local(comm);
    let partition = local.partition.clone();
    let rank = comm.rank();
    let range = partition.range(rank);
    let (_fw, port) = wire_component(package);

    let (secs, out) = timed(comm, "cca", || {
        let setup = probe::SectionTimer::start("cca_setup");
        port.initialize(comm.dup().expect("dup")).expect("initialize");
        port.set_start_row(range.start).expect("start row");
        port.set_local_rows(range.len()).expect("local rows");
        port.set_local_nnz(local.matrix.nnz()).expect("local nnz");
        port.set_global_cols(partition.global_rows()).expect("global cols");
        for (k, v) in &w.params {
            port.set(k, v).expect("param");
        }
        port.setup_matrix(
            local.matrix.values(),
            local.matrix.row_ptr(),
            local.matrix.col_idx(),
            lisi::SparseStruct::Csr,
        )
        .expect("setup matrix");
        port.setup_rhs(&local.rhs, 1).expect("setup rhs");
        setup.stop();
        let _solve = probe::span!("cca_solve");
        let mut x = vec![0.0; range.len()];
        let mut status = [0.0; lisi::STATUS_LEN];
        port.solve(&mut x, &mut status).expect("solve");
        lisi::SolveReport::from_slice(&status)
    });
    RunResult {
        seconds: secs,
        iterations: out.iterations,
        residual: out.residual,
        converged: out.converged,
    }
}

/// Run both paths `reps` times and return
/// `(native seconds, cca seconds, iterations)`. The paper collects ten
/// runs on dedicated cluster nodes and picks the mean; on a shared
/// machine the mean is outlier-dominated, so this harness alternates the
/// execution order every repetition (cancelling warm-up drift) and
/// reports the **median**, documenting the deviation in EXPERIMENTS.md.
pub fn measure_pair(
    comm: &Communicator,
    package: Package,
    w: &Workload,
    reps: usize,
) -> (f64, f64, usize) {
    // Warm-up pass (allocators, caches) — excluded.
    let _ = run_native(comm, package, w);
    let _ = run_cca(comm, package, w);
    let mut native = Vec::with_capacity(reps);
    let mut through_cca = Vec::with_capacity(reps);
    let mut iters = 0usize;
    for rep in 0..reps {
        let (n, c) = if rep % 2 == 0 {
            let n = run_native(comm, package, w);
            let c = run_cca(comm, package, w);
            (n, c)
        } else {
            let c = run_cca(comm, package, w);
            let n = run_native(comm, package, w);
            (n, c)
        };
        assert!(n.converged && c.converged, "benchmark solves must converge");
        native.push(n.seconds);
        through_cca.push(c.seconds);
        iters = iters.max(c.iterations.max(n.iterations));
    }
    (median(&mut native), median(&mut through_cca), iters)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        0.5 * (samples[n / 2 - 1] + samples[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::paper_workload;
    use rcomm::Universe;

    #[test]
    fn both_paths_solve_and_agree_on_iterations() {
        let w = paper_workload(12);
        for package in Package::ALL {
            let out = Universe::run(2, |comm| {
                let n = run_native(comm, package, &w);
                let c = run_cca(comm, package, &w);
                (n, c)
            });
            let (n, c) = &out[0];
            assert!(n.converged && c.converged, "{package:?}");
            assert!(n.seconds > 0.0 && c.seconds > 0.0);
            // Same algorithm, same substrate → identical iteration counts.
            assert_eq!(n.iterations, c.iterations, "{package:?}");
            if package == Package::Rslu {
                assert_eq!(n.iterations, 0);
            } else {
                assert!(n.iterations > 0);
            }
        }
    }

    #[test]
    fn measure_pair_returns_positive_means() {
        let w = paper_workload(8);
        let out = Universe::run(2, |comm| measure_pair(comm, Package::Rksp, &w, 2));
        let (native, cca_s, iters) = out[0];
        assert!(native > 0.0 && cca_s > 0.0);
        assert!(iters > 0);
    }

    #[test]
    fn package_names_are_stable() {
        assert_eq!(Package::Rksp.name(), "RKSP");
        assert_eq!(Package::Raztec.name(), "RAztec");
        assert_eq!(Package::Rslu.name(), "RSLU");
    }
}
