//! Workload definitions: the paper's PDE at the paper's sizes.

use rmesh::ConvectionDiffusion2d;

/// One benchmark workload: the paper's PDE on an `m × m` grid with a
/// fixed solver configuration.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Interior grid points per side.
    pub m: usize,
    /// Generic LISI parameters applied to every package (key, value).
    pub params: Vec<(String, String)>,
}

impl Workload {
    /// The problem generator.
    pub fn problem(&self) -> ConvectionDiffusion2d {
        rmesh::paper_problem(self.m)
    }

    /// Global unknowns `m²`.
    pub fn unknowns(&self) -> usize {
        self.m * self.m
    }

    /// Stored nonzeros `5m² − 4m` (the paper's Table 1 first column).
    pub fn nnz(&self) -> usize {
        5 * self.m * self.m - 4 * self.m
    }
}

/// The paper's workload for a given grid size: convection–diffusion with
/// the iterative configuration used by the Table 1 column (BiCGStab with
/// point-Jacobi — partition-independent, so iteration counts match across
/// processor counts, as the paper's fixed-size column implies).
pub fn paper_workload(m: usize) -> Workload {
    Workload {
        m,
        params: vec![
            ("solver".into(), "bicgstab".into()),
            ("preconditioner".into(), "jacobi".into()),
            ("tol".into(), "1e-8".into()),
            ("maxits".into(), "20000".into()),
            // RAztec-only: normalize by ‖b‖ so its convergence test lines
            // up with RKSP's convention; other packages ignore the key.
            ("conv".into(), "rhs".into()),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_reproduce_table1_nnz_column() {
        let expect = [12300usize, 49600, 199200, 448800, 798400];
        for (m, nnz) in rmesh::PAPER_GRID_SIZES.iter().zip(expect) {
            assert_eq!(paper_workload(*m).nnz(), nnz);
        }
    }

    #[test]
    fn workload_builds_the_right_problem() {
        let w = paper_workload(10);
        let (a, _) = w.problem().assemble_global();
        assert_eq!(a.rows(), w.unknowns());
        assert_eq!(a.nnz(), w.nnz());
        assert!(w.params.iter().any(|(k, _)| k == "solver"));
    }
}
