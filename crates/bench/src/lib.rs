//! `lisi_bench` — the measurement harness for the paper's evaluation
//! (§8): for each solver package, time the *same* workload through two
//! call paths that share every substrate —
//!
//! * **non-CCA**: the application calls the native package API directly
//!   (assemble → distribute → solve);
//! * **CCA**: the application talks to a LISI solver component through a
//!   CCA framework port (assemble → LISI setters → `setupMatrix` /
//!   `setupRHS` → `solve`).
//!
//! The difference is the interface overhead the paper reports in
//! Figure 5 and Table 1: format conversion/copies at the port boundary,
//! dynamic dispatch, framework port lookup.

#![warn(missing_docs)]

pub mod harness;
pub mod tables;
pub mod workload;

pub use harness::{measure_pair, run_cca, run_native, wire_component, Package, RunResult};
pub use tables::{figure5_series, table1_rows, Figure5Point, Table1Row};
pub use workload::{paper_workload, Workload};
