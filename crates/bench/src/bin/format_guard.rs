//! Paired CSR-vs-chosen-format SpMV guard.
//!
//! For each of three representative matrices — a dense band, a FEM-style
//! block assembly, and a skewed row-length pattern — this runs the
//! autotuner's model, converts to the chosen format, and times serial
//! matvecs CSR-vs-chosen in *alternating* pairs with the order swapped
//! every trial (the same pairing trick `trsv_guard` uses to cancel load
//! drift), reporting the median per-pair speedup.
//!
//! Two verdicts with different strictness, split out by
//! `scripts/bench_smoke.sh`:
//!   * `bit_identical`: every format's matvec must equal CSR's
//!     bit-for-bit on every workload — a miss is a correctness bug and a
//!     hard failure;
//!   * `speedup` (target ≥ 1.2×): only meaningful where the autotuner
//!     actually left CSR (`applicable` = chosen != csr); the skewed
//!     workload stays CSR by design and is recorded with no speedup
//!     claim.
//!
//! Output: one JSON object on stdout.

use std::hint::black_box;
use std::time::Instant;

use rsparse::autotune::{self, Format, FormatMatrix};
use rsparse::{BcsrMatrix, CsrMatrix, SellMatrix};

/// One timed window: `MATVECS` products.
const MATVECS: usize = 10;

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(p, q)| p.to_bits() == q.to_bits())
}

fn guard_one(name: &str, a: &CsrMatrix, trials: usize) -> String {
    let (n, cols) = a.shape();
    let x = rsparse::generate::random_vector(cols, 17);
    let mut y_csr = vec![0.0; n];
    a.matvec_into(&x, &mut y_csr);

    // Correctness hard gate: BOTH alternative formats must match CSR
    // bit-for-bit on this pattern, whatever the autotuner picks.
    let mut y = vec![f64::NAN; n];
    SellMatrix::from_csr(a).matvec_into(&x, &mut y);
    let mut bit_identical = bits_equal(&y, &y_csr);
    y.fill(f64::NAN);
    BcsrMatrix::from_csr(a).matvec_into(&x, &mut y);
    bit_identical &= bits_equal(&y, &y_csr);

    let chosen = autotune::choose(a);
    let applicable = chosen != Format::Csr;
    let m = FormatMatrix::build(a, chosen);

    // Warm caches on both kernels.
    for _ in 0..3 {
        a.matvec_into(&x, &mut y);
        m.matvec_into(&x, &mut y);
    }

    let window_csr = |y: &mut Vec<f64>| {
        let t0 = Instant::now();
        for _ in 0..MATVECS {
            a.matvec_into(&x, y);
        }
        t0.elapsed().as_secs_f64() / MATVECS as f64
    };
    let window_chosen = |y: &mut Vec<f64>| {
        let t0 = Instant::now();
        for _ in 0..MATVECS {
            m.matvec_into(&x, y);
        }
        t0.elapsed().as_secs_f64() / MATVECS as f64
    };

    let mut csr_s = Vec::with_capacity(trials);
    let mut chosen_s = Vec::with_capacity(trials);
    let mut speedups = Vec::with_capacity(trials);
    for trial in 0..trials {
        let (c, f) = if trial % 2 == 0 {
            (window_csr(&mut y), window_chosen(&mut y))
        } else {
            let f = window_chosen(&mut y);
            (window_csr(&mut y), f)
        };
        csr_s.push(c);
        chosen_s.push(f);
        speedups.push(c / f);
    }
    black_box(&y);

    format!(
        "{{\"workload\":\"{name}\",\"rows\":{n},\"nnz\":{},\
\"chosen\":\"{}\",\"applicable\":{applicable},\
\"bit_identical\":{bit_identical},\
\"csr_median_ns\":{:.1},\"chosen_median_ns\":{:.1},\"speedup\":{:.4}}}",
        a.nnz(),
        chosen.name(),
        median(&mut csr_s) * 1e9,
        median(&mut chosen_s) * 1e9,
        median(&mut speedups),
    )
}

fn main() {
    let trials: usize = std::env::var("FORMAT_GUARD_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);

    let banded = rsparse::generate::banded(20_000, 4, 1);
    let fem = rsparse::generate::fem_block(80, 3, 2);
    let skewed = rsparse::generate::skewed_csr(20_000, 20_000, 3, 80, 3);

    let entries = [
        guard_one("banded bw=4", &banded, trials),
        guard_one("fem-block b=3", &fem, trials),
        guard_one("skewed 3/80", &skewed, trials),
    ];
    println!("{{\"trials\":{trials},\"formats\":[{}]}}", entries.join(","));
}
