//! Paired Krylov-checkpoint overhead guard.
//!
//! The elastic-recovery checkpoint hook sits inside the CG/GMRES
//! iteration loop (`cfg.checkpoint_every`); with checkpointing *off*
//! (the default, `checkpoint_every = 0`) its cost is one integer
//! compare per iteration and must stay invisible (<1%). With
//! checkpointing *on* every 10 iterations the snapshot copy of (x, r)
//! into the double-buffered registry is paid, budgeted at <5%.
//!
//! Like `fault_guard`, a two-window A/B cannot resolve sub-percent
//! deltas on a drifting shared machine, so this bin alternates
//! *off* (`checkpoint_every = 0`) against *every-10* in order-swapped
//! pairs over a fixed-iteration fused-reduction CG solve on 4 ranks
//! and reports the median per-pair ratio. The off path's absolute
//! median is additionally compared by `scripts/bench_smoke.sh` against
//! the median stored by the previous run (the <1% off-path budget —
//! cross-process, so a miss WARNs).
//!
//! Output: one JSON object on stdout.

use std::hint::black_box;
use std::time::Instant;

use rcomm::Universe;
use rkrylov::{Ksp, KspConfig, KspType, MatOperator, PcType};
use rsparse::{generate, BlockRowPartition, DistCsrMatrix, DistVector};

fn fused_cg_workload(a: &rsparse::CsrMatrix, b: &[f64], checkpoint_every: usize) -> f64 {
    let out = Universe::run(4, move |comm| {
        let part = BlockRowPartition::even(a.rows(), comm.size());
        let da = DistCsrMatrix::from_global(comm, part.clone(), a).unwrap();
        let op = MatOperator::new(da);
        let db = DistVector::from_global(part.clone(), comm.rank(), b).unwrap();
        let mut dx = DistVector::zeros(part, comm.rank());
        let ksp = Ksp::new(KspConfig {
            ksp_type: KspType::Cg,
            pc_type: PcType::None,
            // Fixed work: 40 fused-reduction iterations, no early exit —
            // with every-10 checkpointing that is 4 snapshot deposits.
            rtol: 0.0,
            atol: 0.0,
            maxits: 40,
            keep_history: false,
            fused_reductions: true,
            checkpoint_every,
            ..KspConfig::default()
        })
        .unwrap();
        let r = ksp.solve(comm, &op, &db, &mut dx).unwrap();
        r.final_residual
    })[0];
    rkrylov::checkpoint::clear_all();
    out
}

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Run the workload in alternating off/every-10 pairs and return
/// `(off_median_s, ckpt10_median_s, overhead_pct)`.
fn paired(trials: usize, mut work: impl FnMut(usize) -> f64) -> (f64, f64, f64) {
    let mut sink = 0.0;
    for _ in 0..2 {
        sink += work(0); // warm-up
    }
    let mut off_s = Vec::with_capacity(trials);
    let mut on_s = Vec::with_capacity(trials);
    let mut ratios = Vec::with_capacity(trials);
    for t in 0..trials {
        let on_first = t % 2 == 1;
        let mut pair = [0.0f64; 2]; // [off, every-10]
        for step in 0..2 {
            let on = (step == 1) != on_first;
            let every = if on { 10 } else { 0 };
            let t0 = Instant::now();
            sink += work(every);
            sink += work(every);
            pair[usize::from(on)] = t0.elapsed().as_secs_f64() / 2.0;
        }
        off_s.push(pair[0]);
        on_s.push(pair[1]);
        ratios.push(pair[1] / pair[0]);
    }
    black_box(sink);
    let pct = 100.0 * (median(&mut ratios) - 1.0);
    (median(&mut off_s), median(&mut on_s), pct)
}

fn main() {
    let trials: usize = std::env::var("CHECKPOINT_GUARD_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(80);
    let a = generate::laplacian_2d(120);
    let b = vec![1.0; a.rows()];
    let (off, on, pct) = paired(trials, |every| fused_cg_workload(&a, &b, every));

    println!(
        "{{\"trials\":{trials},\
\"fused_cg\":{{\"workload\":\"dist4 m=120 fused cg 40 its\",\
\"off_median_ns\":{:.1},\"ckpt10_median_ns\":{:.1},\"overhead_pct\":{pct:.4}}}}}",
        off * 1e9,
        on * 1e9,
    );
}
