//! Paired fault-machinery overhead guard.
//!
//! The fault-injection hooks in `rcomm` sit on every communication call;
//! their disarmed cost must stay invisible (<1%). Like `probe_guard`,
//! a two-window A/B cannot resolve that on a drifting shared machine, so
//! this bin alternates *disarmed* against *armed-but-inert* (a plan whose
//! rule can never fire: it names a rank outside the cohort) in
//! order-swapped pairs and reports the median per-pair ratio for the two
//! communication-heavy workloads the resilience work touches:
//!
//! * `spmv` — the dist4 m=200 SpMV burst (halo p2p traffic), and
//! * `fused_cg` — a fixed-iteration fused-reduction CG solve
//!   (allreduce traffic through the guarded Monitor path).
//!
//! Two distinct costs are at stake. The *disarmed* path is a single
//! relaxed atomic load per call — the <1% no-faults budget is checked by
//! `scripts/bench_smoke.sh` comparing fresh disarmed throughput against
//! the stored `BENCH_spmv.json` baseline. What this bin pins down is the
//! *armed* path (global mutex + rule scan per call), which is only ever
//! paid while a fault plan is loaded for testing; the smoke script holds
//! it to a looser diagnostic budget in `BENCH_fault_overhead.json`.
//!
//! Output: one JSON object on stdout.

use std::hint::black_box;
use std::time::Instant;

use rcomm::Universe;
use rkrylov::{Ksp, KspConfig, KspType, MatOperator, PcType};
use rsparse::{generate, BlockRowPartition, CsrMatrix, DistCsrMatrix, DistVector};

fn spmv_workload(a: &CsrMatrix, x: &[f64]) -> f64 {
    Universe::run(4, |comm| {
        let part = BlockRowPartition::even(a.rows(), comm.size());
        let da = DistCsrMatrix::from_global(comm, part.clone(), a).unwrap();
        let dx = DistVector::from_global(part, comm.rank(), x).unwrap();
        let mut dy = da.matvec(comm, &dx).unwrap();
        for _ in 0..9 {
            da.matvec_into(comm, &dx, &mut dy).unwrap();
        }
        dy.local()[0]
    })[0]
}

fn fused_cg_workload(a: &CsrMatrix, b: &[f64]) -> f64 {
    Universe::run(4, |comm| {
        let part = BlockRowPartition::even(a.rows(), comm.size());
        let da = DistCsrMatrix::from_global(comm, part.clone(), a).unwrap();
        let op = MatOperator::new(da);
        let db = DistVector::from_global(part.clone(), comm.rank(), b).unwrap();
        let mut dx = DistVector::zeros(part, comm.rank());
        let ksp = Ksp::new(KspConfig {
            ksp_type: KspType::Cg,
            pc_type: PcType::None,
            // Fixed work: 40 fused-reduction iterations, no early exit.
            rtol: 0.0,
            atol: 0.0,
            maxits: 40,
            keep_history: false,
            fused_reductions: true,
            ..KspConfig::default()
        })
        .unwrap();
        let r = ksp.solve(comm, &op, &db, &mut dx).unwrap();
        r.final_residual
    })[0]
}

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Run one workload in alternating disarmed/inert-armed pairs and return
/// `(disarmed_median_s, armed_median_s, overhead_pct)`.
fn paired(trials: usize, mut work: impl FnMut() -> f64) -> (f64, f64, f64) {
    // The rule targets a rank no 4-rank cohort contains, so it matches
    // nothing — but the armed branch and rule scan run on every call.
    let inert = rcomm::FaultPlan::parse("op=allreduce,rank=9999,call=1,kind=error").unwrap();
    let mut sink = 0.0;
    for _ in 0..2 {
        sink += work(); // warm-up
    }
    let mut off_s = Vec::with_capacity(trials);
    let mut on_s = Vec::with_capacity(trials);
    let mut ratios = Vec::with_capacity(trials);
    for t in 0..trials {
        let armed_first = t % 2 == 1;
        let mut pair = [0.0f64; 2]; // [disarmed, armed]
        for step in 0..2 {
            let armed = (step == 1) != armed_first;
            if armed {
                rcomm::fault::arm(inert.clone());
            } else {
                rcomm::fault::disarm();
            }
            let t0 = Instant::now();
            sink += work();
            sink += work();
            pair[usize::from(armed)] = t0.elapsed().as_secs_f64() / 2.0;
        }
        off_s.push(pair[0]);
        on_s.push(pair[1]);
        ratios.push(pair[1] / pair[0]);
    }
    rcomm::fault::disarm();
    black_box(sink);
    let pct = 100.0 * (median(&mut ratios) - 1.0);
    (median(&mut off_s), median(&mut on_s), pct)
}

fn main() {
    let trials: usize = std::env::var("FAULT_GUARD_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(80);
    let a = generate::laplacian_2d(200);
    let x = generate::random_vector(a.cols(), 7);
    let (spmv_off, spmv_on, spmv_pct) = paired(trials, || spmv_workload(&a, &x));

    let c = generate::laplacian_2d(120);
    let b = vec![1.0; c.rows()];
    let (cg_off, cg_on, cg_pct) = paired(trials, || fused_cg_workload(&c, &b));

    println!(
        "{{\"trials\":{trials},\
\"spmv\":{{\"workload\":\"dist4 m=200 spmv x10\",\
\"disarmed_median_ns\":{:.1},\"armed_inert_median_ns\":{:.1},\"overhead_pct\":{spmv_pct:.4}}},\
\"fused_cg\":{{\"workload\":\"dist4 m=120 fused cg 40 its\",\
\"disarmed_median_ns\":{:.1},\"armed_inert_median_ns\":{:.1},\"overhead_pct\":{cg_pct:.4}}}}}",
        spmv_off * 1e9,
        spmv_on * 1e9,
        cg_off * 1e9,
        cg_on * 1e9,
    );
}
