//! Paired probe-overhead guard.
//!
//! A criterion-style A/B (one long disabled window, then one long enabled
//! window) cannot resolve a <2% effect on a shared machine whose load
//! drifts several percent between the windows. This bin instead runs the
//! dist4 m=200 SpMV workload in *alternating* disabled/enabled pairs —
//! order swapped every trial so a monotone load ramp biases neither mode —
//! and reports the median per-pair overhead ratio, which cancels the
//! drift. `scripts/bench_smoke.sh` turns the output into
//! `BENCH_probe_overhead.json` with the <2% target.
//!
//! Output: one JSON object on stdout.

use std::hint::black_box;
use std::time::Instant;

use probe::ProbeMode;
use rcomm::Universe;
use rsparse::{generate, BlockRowPartition, CsrMatrix, DistCsrMatrix, DistVector};

/// Same workload as the `spmv/dist4/200` and `probe_overhead` criterion
/// benches: distribute, one allocating matvec, nine in-place matvecs.
fn workload(a: &CsrMatrix, x: &[f64]) -> f64 {
    Universe::run(4, |comm| {
        let part = BlockRowPartition::even(a.rows(), comm.size());
        let da = DistCsrMatrix::from_global(comm, part.clone(), a).unwrap();
        let dx = DistVector::from_global(part, comm.rank(), x).unwrap();
        let mut dy = da.matvec(comm, &dx).unwrap();
        for _ in 0..9 {
            da.matvec_into(comm, &dx, &mut dy).unwrap();
        }
        dy.local()[0]
    })[0]
}

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn main() {
    let trials: usize = std::env::var("PROBE_GUARD_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    let a = generate::laplacian_2d(200);
    let x = generate::random_vector(a.cols(), 7);

    probe::set_mode(ProbeMode::Off);
    let mut sink = 0.0;
    for _ in 0..3 {
        sink += workload(&a, &x);
    }

    let mut off_s = Vec::with_capacity(trials);
    let mut on_s = Vec::with_capacity(trials);
    let mut ratios = Vec::with_capacity(trials);
    for t in 0..trials {
        let order = if t % 2 == 0 {
            [ProbeMode::Off, ProbeMode::Summary]
        } else {
            [ProbeMode::Summary, ProbeMode::Off]
        };
        let mut pair = [0.0f64; 2]; // [disabled, enabled]
        for mode in order {
            probe::set_mode(mode);
            let t0 = Instant::now();
            sink += workload(&a, &x);
            sink += workload(&a, &x);
            pair[usize::from(mode == ProbeMode::Summary)] = t0.elapsed().as_secs_f64() / 2.0;
        }
        off_s.push(pair[0]);
        on_s.push(pair[1]);
        ratios.push(pair[1] / pair[0]);
    }
    probe::set_mode(ProbeMode::Off);
    probe::reset();
    black_box(sink);

    let overhead_pct = 100.0 * (median(&mut ratios) - 1.0);
    println!(
        "{{\"workload\":\"dist4 m=200 spmv x10\",\"trials\":{trials},\
\"disabled_median_ns\":{:.1},\"enabled_median_ns\":{:.1},\
\"overhead_pct\":{overhead_pct:.4}}}",
        median(&mut off_s) * 1e9,
        median(&mut on_s) * 1e9,
    );
}
