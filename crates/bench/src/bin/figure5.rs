//! Regenerate the paper's Figure 5: CCA-component vs native execution
//! time for the RKSP / RAztec / RSLU packages on 1, 2, 4 and 8
//! processors, at the paper's problem size (m = 200, nnz = 199 200).
//!
//! ```text
//! cargo run -p lisi-bench --release --bin figure5 [-- --quick]
//! ```
//!
//! The paper's claim is visual: the two curves per package are "almost
//! overlaid on each other". The text output prints both series plus the
//! overhead percentage so the overlay claim can be checked numerically.

use lisi_bench::tables::{figure5_series, format_figure5};
use lisi_bench::{paper_workload, run_cca, run_native, Package};
use rcomm::Universe;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (m, reps) = if quick { (50usize, 3) } else { (200usize, 10) };
    let counts = [1usize, 2, 4, 8];
    eprintln!(
        "Figure 5 reproduction: m = {m} (nnz = {}), ranks {counts:?}, {reps} runs each",
        5 * m * m - 4 * m
    );
    // `RSPARSE_FORMAT` (csr|sell|bcsr|auto) picks the SpMV storage
    // format, mirroring `RSPARSE_THREADS`; all formats are bit-identical
    // so only the timings change.
    eprintln!("spmv format policy: {}", rsparse::autotune::active_policy().name());
    let points = figure5_series(m, &counts, reps);
    println!("{}", format_figure5(&points));
    println!("paper claim: per package, CCA and NonCCA curves nearly overlay (small overhead).");

    // Per-rank Table-1-style breakdown, measured by the probe subsystem
    // itself (port-boundary overhead = self time of the `port:*` spans).
    // `RSPARSE_PROBE` picks the sink; the summary table is the default
    // here so the breakdown always prints.
    let mode = match probe::mode() {
        probe::ProbeMode::Off => probe::ProbeMode::Summary,
        m => m,
    };
    probe::set_mode(mode);
    probe::reset();
    let breakdown_ranks = if quick { 2usize } else { 8 };
    let w = paper_workload(m);
    Universe::run(breakdown_ranks, |comm| {
        let _ = run_native(comm, Package::Rksp, &w);
        let _ = run_cca(comm, Package::Rksp, &w);
    });
    let reports = probe::aggregate();
    println!();
    println!(
        "per-rank setup/solve/port-overhead breakdown (RKSP, m = {m}, {breakdown_ranks} ranks, probe={}):",
        mode.name()
    );
    print!("{}", probe::render_breakdown(&reports));
    match mode {
        probe::ProbeMode::Json => print!("{}", probe::render_jsonl(&reports)),
        probe::ProbeMode::Chrome => {
            probe::write_chrome_trace("probe_trace.json").expect("write probe_trace.json");
            eprintln!("chrome trace written to probe_trace.json (load in chrome://tracing)");
        }
        probe::ProbeMode::Flight => print!("{}", probe::render_flight()),
        _ => {}
    }
    // Non-empty only when causal tracing was armed (RSPARSE_TRACE=1).
    print!("{}", probe::critpath::render_latest());
}
