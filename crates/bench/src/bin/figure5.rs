//! Regenerate the paper's Figure 5: CCA-component vs native execution
//! time for the RKSP / RAztec / RSLU packages on 1, 2, 4 and 8
//! processors, at the paper's problem size (m = 200, nnz = 199 200).
//!
//! ```text
//! cargo run -p lisi-bench --release --bin figure5 [-- --quick]
//! ```
//!
//! The paper's claim is visual: the two curves per package are "almost
//! overlaid on each other". The text output prints both series plus the
//! overhead percentage so the overlay claim can be checked numerically.

use lisi_bench::tables::{figure5_series, format_figure5};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (m, reps) = if quick { (50usize, 3) } else { (200usize, 10) };
    let counts = [1usize, 2, 4, 8];
    eprintln!(
        "Figure 5 reproduction: m = {m} (nnz = {}), ranks {counts:?}, {reps} runs each",
        5 * m * m - 4 * m
    );
    let points = figure5_series(m, &counts, reps);
    println!("{}", format_figure5(&points));
    println!("paper claim: per package, CCA and NonCCA curves nearly overlay (small overhead).");
}
