//! Tolerance-aware diff of two solve ledgers.
//!
//! `ledger_diff <baseline.json> <current.json> [tolerance_pct]`
//!
//! The work-model side of a ledger is deterministic — per-kernel `flops`
//! and `bytes` derive from the cached plans, so any drift there is a
//! model or plan change and is reported as a hard mismatch, per rank.
//! The measured side is noisy, and per-rank spans double as barrier-skew
//! meters, so efficiency is gated on the *rank-aggregated* figure
//! (Σbytes/Σseconds, Σflops/Σseconds per kernel) and only for compute
//! kernels (`flops > 0` — comm spans are wait-dominated; their traffic
//! is already pinned exactly by the model check) whose baseline
//! aggregate time clears `LEDGER_MIN_SECONDS` (default 5 ms). A gated
//! kernel regresses when the aggregate drops below baseline by more
//! than `tolerance_pct` (default 15). Exit status: 0 clean, 1
//! regression/mismatch, 2 usage or parse failure — the contract
//! `scripts/regression_sentinel.sh` relies on.

use std::process::ExitCode;

use serde_json::Value;

fn load(path: &str) -> Result<Value, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: parse error: {e:?}"))
}

/// Key a kernel row by (rank, kernel name, batch width). Batched
/// kernels amortize the matrix read across `nrhs` vector streams, so an
/// `nrhs=8` SpMV legitimately has different per-unit flops/bytes than
/// an `nrhs=1` one — rows only compare like with like. Ledgers written
/// before the field existed default to a width of 1.
fn kernel_key(row: &Value) -> Option<(u64, String, u64)> {
    Some((
        row.get("rank")?.as_u64()?,
        row.get("kernel")?.as_str()?.to_string(),
        row.get("nrhs").and_then(Value::as_u64).unwrap_or(1),
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: ledger_diff <baseline.json> <current.json> [tolerance_pct]");
        return ExitCode::from(2);
    }
    let tolerance_pct: f64 = args
        .get(3)
        .map(|s| s.parse().expect("tolerance_pct must be a number"))
        .unwrap_or(15.0);
    let min_seconds: f64 = std::env::var("LEDGER_MIN_SECONDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.005);
    let (base, cur) = match (load(&args[1]), load(&args[2])) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("ledger_diff: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failures = 0usize;
    let mut fail = |msg: String| {
        eprintln!("REGRESSION: {msg}");
        failures += 1;
    };

    match (base.get("schema").and_then(Value::as_str), cur.get("schema").and_then(Value::as_str)) {
        (Some(b), Some(c)) if b == c => {}
        (b, c) => fail(format!("schema mismatch: baseline {b:?} vs current {c:?}")),
    }

    let empty = Vec::new();
    let base_kernels = base
        .get("kernels")
        .and_then(Value::as_array)
        .unwrap_or(&empty);
    let cur_kernels = cur
        .get("kernels")
        .and_then(Value::as_array)
        .unwrap_or(&empty);
    for brow in base_kernels {
        let Some(key) = kernel_key(brow) else { continue };
        let Some(crow) = cur_kernels.iter().find(|r| kernel_key(r).as_ref() == Some(&key))
        else {
            fail(format!("kernel {key:?} present in baseline but missing from current"));
            continue;
        };
        // Deterministic model side: per-unit flops and bytes must agree
        // exactly (totals scale with iteration count, which may drift).
        for field in ["flops", "bytes"] {
            let per_unit = |row: &Value| -> Option<f64> {
                let total = row.get(field)?.as_f64()?;
                let units = row.get("units")?.as_f64()?;
                (units > 0.0).then(|| total / units)
            };
            match (per_unit(brow), per_unit(crow)) {
                (Some(b), Some(c)) if (b - c).abs() > 1e-9 * b.abs().max(1.0) => {
                    fail(format!("kernel {key:?}: per-unit {field} changed {b} -> {c}"));
                }
                _ => {}
            }
        }
    }

    // Noisy measured side, rank-aggregated: Σflops, Σbytes, Σseconds per
    // compute kernel; gated when the aggregate GB/s or GF/s drops below
    // baseline by more than the tolerance.
    let aggregate = |rows: &[Value]| -> std::collections::BTreeMap<(String, u64), (f64, f64, f64)> {
        let mut agg = std::collections::BTreeMap::new();
        for row in rows {
            let Some(kernel) = row.get("kernel").and_then(Value::as_str) else { continue };
            let nrhs = row.get("nrhs").and_then(Value::as_u64).unwrap_or(1);
            let f = |field: &str| row.get(field).and_then(Value::as_f64).unwrap_or(0.0);
            let e = agg.entry((kernel.to_string(), nrhs)).or_insert((0.0, 0.0, 0.0));
            e.0 += f("flops");
            e.1 += f("bytes");
            e.2 += f("seconds");
        }
        agg
    };
    let base_agg = aggregate(base_kernels);
    let cur_agg = aggregate(cur_kernels);
    for (key, &(bf, bb, bs)) in &base_agg {
        if bf <= 0.0 || bs < min_seconds {
            continue; // comm span or below the noise floor: not gated
        }
        let Some(&(cf, cb, cs)) = cur_agg.get(key) else { continue };
        if cs <= 0.0 {
            continue;
        }
        let (kernel, nrhs) = key;
        for (field, b, c) in
            [("GB/s", bb / bs, cb / cs), ("GF/s", bf / bs, cf / cs)]
        {
            if b > 0.0 && c < b * (1.0 - tolerance_pct / 100.0) {
                fail(format!(
                    "kernel {kernel} (nrhs={nrhs}): aggregate {field} dropped {:.2}% \
                     ({b:.3} -> {c:.3}, tolerance {tolerance_pct}%)",
                    100.0 * (1.0 - c / b)
                ));
            }
        }
    }

    // Convergence must not degrade: iteration-count growth beyond the
    // tolerance is an algorithmic regression, not noise.
    let iters = |v: &Value| v.get("convergence")?.get("iterations")?.as_f64();
    if let (Some(b), Some(c)) = (iters(&base), iters(&cur)) {
        if b > 0.0 && c > b * (1.0 + tolerance_pct / 100.0) {
            fail(format!("iterations grew {b} -> {c} (tolerance {tolerance_pct}%)"));
        }
    }

    if failures > 0 {
        eprintln!("ledger_diff: {failures} regression(s) vs {}", args[1]);
        ExitCode::from(1)
    } else {
        println!(
            "ledger_diff: OK ({} baseline kernel rows checked, tolerance {tolerance_pct}%)",
            base_kernels.len()
        );
        ExitCode::SUCCESS
    }
}
