//! Exporter smoke check, curl-free: start the Prometheus endpoint on an
//! ephemeral localhost port, run a small 4-rank CG under summary probing
//! with tracing armed, then fetch `/metrics` over a plain
//! `std::net::TcpStream` and assert the families a scrape relies on are
//! present. Exits nonzero on any miss so `scripts/check_all.sh` can gate
//! on it without external tooling.

use std::io::{Read, Write};
use std::net::TcpStream;

use rcomm::Universe;
use rkrylov::{Ksp, KspConfig, KspType, MatOperator, PcType};
use rsparse::{generate, BlockRowPartition, DistCsrMatrix, DistVector};

fn main() {
    probe::set_mode(probe::ProbeMode::Summary);
    probe::trace::set_armed(true);
    let server = probe::export::serve("127.0.0.1:0").expect("bind an ephemeral localhost port");
    let addr = server.addr();

    let n_side = 16usize;
    let n = n_side * n_side;
    let a = generate::laplacian_2d(n_side);
    let b = vec![1.0; n];
    let results = Universe::run(4, |comm| {
        let part = BlockRowPartition::even(n, comm.size());
        let da = DistCsrMatrix::from_global(comm, part.clone(), &a).unwrap();
        let op = MatOperator::new(da);
        let db = DistVector::from_global(part.clone(), comm.rank(), &b).unwrap();
        let cfg = KspConfig {
            ksp_type: KspType::Cg,
            pc_type: PcType::Jacobi,
            rtol: 1e-10,
            maxits: 500,
            ..KspConfig::default()
        };
        let ksp = Ksp::new(cfg).unwrap();
        let mut x = DistVector::zeros(part, comm.rank());
        ksp.solve(comm, &op, &db, &mut x).unwrap()
    });
    probe::trace::set_armed(false);
    assert!(results.iter().all(|r| r.converged()), "smoke CG must converge");

    let mut conn = TcpStream::connect(addr).expect("connect to the exporter");
    conn.write_all(b"GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n")
        .expect("send request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    server.stop();

    assert!(
        response.starts_with("HTTP/1.0 200 OK"),
        "expected 200, got:\n{response}"
    );
    assert!(response.contains("text/plain; version=0.0.4"), "exposition header");
    for family in [
        "# TYPE rsparse_ksp_iterations_total counter",
        "# TYPE rsparse_span_seconds_total counter",
        "rsparse_span_seconds_total{rank=\"0\",span=\"allreduce\"}",
        "# TYPE rsparse_iter_time_seconds histogram",
        "# TYPE rsparse_collective_seconds histogram",
        "# TYPE rsparse_halo_drain_wait_seconds histogram",
        "le=\"+Inf\"",
    ] {
        assert!(response.contains(family), "missing {family:?} in:\n{response}");
    }

    // The same solve must also have produced a mergeable causal trace.
    let cp = probe::critpath::analyze_latest().expect("traced solve yields a critical path");
    assert_eq!(cp.ranks.len(), 4, "per-rank totals for all four ranks");

    println!(
        "export smoke OK: {} bytes of metrics from http://{addr}/metrics, \
         critical path over {} segments",
        response.len(),
        cp.segments.len()
    );
}
