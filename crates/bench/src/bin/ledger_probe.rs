//! Produce one fresh `solve_ledger.json` for the regression sentinel.
//!
//! Runs the acceptance workload — a 4-rank CG+ILU(0) solve of the 2-D
//! Laplacian through the RKSP adapter — with the ledger armed, repeated
//! `LEDGER_PROBE_REPS` times (default 5), and keeps the ledger of the
//! *fastest* solve at the path given as the first argument (default
//! `solve_ledger.json`), then prints that path. Best-of-K damps shared-
//! machine load spikes the way min-of-N timing always has, so the
//! efficiency figures `scripts/regression_sentinel.sh` gates against the
//! stored baseline reflect the machine, not the moment.

use lisi::{RkspAdapter, SparseSolverPort, STATUS_LEN};
use rcomm::Universe;
use rsparse::{generate, BlockRowPartition, CsrMatrix};

fn run_once(a: &CsrMatrix, b: &[f64], dest: &str) -> (bool, f64) {
    let n = a.rows();
    probe::reset();
    probe::ledger::set_destination(dest);
    let out = Universe::run(4, |comm| {
        let part = BlockRowPartition::even(n, comm.size());
        let range = part.range(comm.rank());
        let local = a.row_block(range.start, range.end).unwrap();
        let solver = RkspAdapter::new();
        solver.initialize(comm.dup().unwrap()).unwrap();
        solver.set_start_row(range.start).unwrap();
        solver.set_local_rows(range.len()).unwrap();
        solver.set_global_cols(n).unwrap();
        solver.set("solver", "cg").unwrap();
        solver.set("preconditioner", "ilu").unwrap();
        solver.set("tol", "1e-10").unwrap();
        solver
            .setup_matrix(
                local.values(),
                local.row_ptr(),
                local.col_idx(),
                lisi::SparseStruct::Csr,
            )
            .unwrap();
        solver.setup_rhs(&b[range.clone()], 1).unwrap();
        let mut x = vec![0.0; range.len()];
        let mut status = [0.0; STATUS_LEN];
        solver.solve(&mut x, &mut status).unwrap();
        (status[0] != 0.0, status[4])
    });
    out[0]
}

fn main() {
    let dest = std::env::args().nth(1).unwrap_or_else(|| "solve_ledger.json".into());
    let m: usize = std::env::var("LEDGER_PROBE_M")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(80);
    let reps: usize = std::env::var("LEDGER_PROBE_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
        .max(1);
    let a = generate::laplacian_2d(m);
    let b = vec![1.0; a.rows()];
    let dir = std::env::temp_dir().join(format!("ledger_probe_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir for candidate ledgers");
    let mut best: Option<(f64, std::path::PathBuf)> = None;
    for rep in 0..reps {
        let candidate = dir.join(format!("candidate_{rep}.json"));
        let (converged, solve_seconds) =
            run_once(&a, &b, candidate.to_str().unwrap());
        assert!(converged, "ledger probe workload failed to converge");
        if best.as_ref().is_none_or(|(s, _)| solve_seconds < *s) {
            best = Some((solve_seconds, candidate));
        }
    }
    probe::ledger::clear_destination();
    let (_, winner) = best.expect("reps >= 1");
    std::fs::copy(&winner, &dest).expect("copy best-of-K ledger to destination");
    let _ = std::fs::remove_dir_all(&dir);
    println!("{dest}");
}
