//! Paired serial-vs-scheduled triangular-solve guard.
//!
//! Times ILU(0) preconditioner applies on the paper's 200×200
//! convection–diffusion problem (n = 40 000) two ways — serial sweeps
//! (threads = 1) and level-scheduled sweeps at `TRSV_GUARD_THREADS`
//! (default 4) — in *alternating* pairs with the order swapped every
//! trial, and reports the median per-pair speedup. The same pairing
//! trick `probe_guard` uses cancels load drift on a shared machine.
//!
//! The speedup target only means something when the host can actually
//! run the threads: the JSON records `host_cores` and a
//! `sufficient_cores` flag so `scripts/bench_smoke.sh` can gate the
//! ≥2× check on hardware that has ≥ `threads` cores instead of
//! "failing" on a single-core container where a parallel sweep cannot
//! beat a serial one.
//!
//! Also verifies (and reports) that the scheduled result is
//! bit-identical to the serial one — the determinism contract the
//! threading layer promises.
//!
//! Output: one JSON object on stdout.

use std::hint::black_box;
use std::time::Instant;

use rkrylov::Ilu0;
use rsparse::LevelSchedule;

/// One timed window: `APPLIES` preconditioner applications.
const APPLIES: usize = 10;

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn main() {
    let trials: usize = std::env::var("TRSV_GUARD_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let threads: usize = std::env::var("TRSV_GUARD_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let m: usize = std::env::var("TRSV_GUARD_M")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);

    let (a, _rhs) = rmesh::paper_problem(m).assemble_global();
    let n = a.rows();
    let ilu = Ilu0::new(&a).expect("ILU(0) factors the mesh problem");
    let r = rsparse::generate::random_vector(n, 11);

    // Determinism check first: scheduled and serial applies must agree
    // bit-for-bit.
    let mut z_serial = vec![0.0; n];
    let mut z_sched = vec![0.0; n];
    ilu.solve_local_with(&r, &mut z_serial, 1);
    ilu.solve_local_with(&r, &mut z_sched, threads);
    let bit_identical = z_serial
        .iter()
        .zip(&z_sched)
        .all(|(a, b)| a.to_bits() == b.to_bits());

    let fwd_levels = LevelSchedule::lower(ilu.factor()).levels();
    let bwd_levels = LevelSchedule::upper(ilu.factor()).levels();

    // Warm the pool and the caches.
    for _ in 0..3 {
        ilu.solve_local_with(&r, &mut z_sched, threads);
    }

    let window = |t: usize, z: &mut [f64]| {
        let t0 = Instant::now();
        for _ in 0..APPLIES {
            ilu.solve_local_with(&r, z, t);
        }
        t0.elapsed().as_secs_f64() / APPLIES as f64
    };

    let mut serial_s = Vec::with_capacity(trials);
    let mut sched_s = Vec::with_capacity(trials);
    let mut speedups = Vec::with_capacity(trials);
    for trial in 0..trials {
        let order = if trial % 2 == 0 { [1, threads] } else { [threads, 1] };
        let mut pair = [0.0f64; 2]; // [serial, scheduled]
        for t in order {
            pair[usize::from(t != 1)] = window(t, &mut z_sched);
        }
        serial_s.push(pair[0]);
        sched_s.push(pair[1]);
        speedups.push(pair[0] / pair[1]);
    }
    black_box(&z_sched);

    let host_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let sufficient_cores = host_cores >= threads;
    println!(
        "{{\"workload\":\"ilu0 apply m={m} n={n}\",\"trials\":{trials},\
\"threads\":{threads},\"host_cores\":{host_cores},\
\"sufficient_cores\":{sufficient_cores},\
\"levels_fwd\":{fwd_levels},\"levels_bwd\":{bwd_levels},\
\"serial_median_ns\":{:.1},\"scheduled_median_ns\":{:.1},\
\"speedup\":{:.4},\"bit_identical\":{bit_identical}}}",
        median(&mut serial_s) * 1e9,
        median(&mut sched_s) * 1e9,
        median(&mut speedups),
    );
}
