//! Paired batched-vs-sequential multi-RHS guard.
//!
//! Two gates for the session layer, measured on the 4-rank RKSP adapter
//! over the 2-D Laplacian:
//!
//! 1. **Batched throughput**: one `solve_batch` call over `k` right-hand
//!    sides (default 8) against `k` single `solve` calls, in alternating
//!    pairs with the order swapped every trial so machine-load drift
//!    cancels. On a collective-dominated launch the batched driver fuses
//!    the per-iteration reductions of all `k` columns into one exchange,
//!    so the median paired speedup must clear ≥1.8×. The batched
//!    solution is also checked bit-identical to the sequential one,
//!    column by column.
//!
//! 2. **Warm-session setup**: each trial performs one cold RSLU setup
//!    (a fresh option fingerprint, so the session cache misses and the
//!    adapter runs the full sparse LU factorization) and one warm setup
//!    (a second adapter instance over the same fingerprint — the cache
//!    hits, `lisi_setup` never opens, and the only remaining cost is
//!    ingesting the caller's CSR arrays). The median warm setup must
//!    cost <5% of the median cold setup.
//!
//! Output: one JSON object on stdout; `scripts/bench_smoke.sh` records
//! it as `BENCH_multirhs.json` and the regression sentinel gates it.

use std::time::Instant;

use lisi::{RkspAdapter, SparseSolverPort, SparseStruct, STATUS_LEN};
use lisi::status::STATUS_SETUP_SECONDS;
use rcomm::{Communicator, Universe};
use rsparse::{generate, BlockRowPartition, CsrMatrix};

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Wire one adapter over this rank's row block.
fn wire(
    comm: &Communicator,
    a: &CsrMatrix,
    n: usize,
    tag: &str,
    pc: &str,
) -> (RkspAdapter, std::ops::Range<usize>) {
    let part = BlockRowPartition::even(n, comm.size());
    let range = part.range(comm.rank());
    let local = a.row_block(range.start, range.end).unwrap();
    let solver = RkspAdapter::new();
    solver.initialize(comm.dup().unwrap()).unwrap();
    solver.set_start_row(range.start).unwrap();
    solver.set_local_rows(range.len()).unwrap();
    solver.set_global_cols(n).unwrap();
    solver.set("solver", "cg").unwrap();
    solver.set("preconditioner", pc).unwrap();
    solver.set("tol", "1e-10").unwrap();
    solver.set("session_tag", tag).unwrap();
    solver
        .setup_matrix(local.values(), local.row_ptr(), local.col_idx(), SparseStruct::Csr)
        .unwrap();
    (solver, range)
}

fn main() {
    let trials: usize = std::env::var("MULTIRHS_GUARD_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(9)
        .max(1);
    let k: usize = std::env::var("MULTIRHS_GUARD_K")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
        .max(1);
    let n_side: usize = std::env::var("MULTIRHS_GUARD_M")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let n = n_side * n_side;
    let a = generate::laplacian_2d(n_side);
    let rhs_full: Vec<f64> = (0..k * n).map(|i| 1.0 + ((i % 13) as f64 - 6.0) / 6.0).collect();

    let out = Universe::run(4, |comm| {
        // --- Gate 1: batched vs sequential solve time (paired). -------
        // One shared session: setup is cached after the first solve, so
        // the timed windows isolate the solve phase both ways.
        let (solver, range) = wire(comm, &a, n, "multirhs_solve", "jacobi");
        let rows = range.len();
        let mut local_rhs = Vec::with_capacity(k * rows);
        for j in 0..k {
            local_rhs.extend_from_slice(&rhs_full[j * n..][range.clone()]);
        }

        let run_batched = |x: &mut [f64]| {
            solver.set_int("nrhs", k as i64).unwrap();
            solver.setup_rhs(&local_rhs, k).unwrap();
            let mut status = [0.0; STATUS_LEN];
            solver.solve_batch(x, &mut status).unwrap();
        };
        let run_sequential = |x: &mut [f64]| {
            solver.set_int("nrhs", 1).unwrap();
            for j in 0..k {
                solver.setup_rhs(&local_rhs[j * rows..(j + 1) * rows], 1).unwrap();
                let mut status = [0.0; STATUS_LEN];
                solver.solve(&mut x[j * rows..(j + 1) * rows], &mut status).unwrap();
            }
        };

        // Correctness first: the batched bits must equal the sequential
        // bits column by column. This also warms the session cache.
        let mut x_batch = vec![0.0; k * rows];
        let mut x_seq = vec![0.0; k * rows];
        run_batched(&mut x_batch);
        run_sequential(&mut x_seq);
        let bit_identical = x_batch
            .iter()
            .zip(&x_seq)
            .all(|(p, q)| p.to_bits() == q.to_bits());

        let mut seq_s = Vec::with_capacity(trials);
        let mut batch_s = Vec::with_capacity(trials);
        let mut speedups = Vec::with_capacity(trials);
        let mut x = vec![0.0; k * rows];
        for trial in 0..trials {
            let mut pair = [0.0f64; 2]; // [sequential, batched]
            let order = if trial % 2 == 0 { [0usize, 1] } else { [1, 0] };
            for which in order {
                comm.barrier().unwrap();
                let t0 = Instant::now();
                if which == 0 {
                    run_sequential(&mut x);
                } else {
                    run_batched(&mut x);
                }
                comm.barrier().unwrap();
                pair[which] = t0.elapsed().as_secs_f64();
            }
            seq_s.push(pair[0]);
            batch_s.push(pair[1]);
            speedups.push(pair[0] / pair[1]);
        }

        // --- Gate 2: cold vs warm session setup (paired). -------------
        // A fresh fingerprint per trial forces a cold RSLU setup (the
        // full sparse LU factorization); a second instance over the same
        // fingerprint must hit the cache and skip all of it, leaving
        // only the CSR ingest cost.
        let mut cold_s = Vec::with_capacity(trials);
        let mut warm_s = Vec::with_capacity(trials);
        for trial in 0..trials {
            let tag = format!("multirhs_setup_{trial}");
            let setup_seconds = |tag: &str| {
                let part = BlockRowPartition::even(n, comm.size());
                let range = part.range(comm.rank());
                let local = a.row_block(range.start, range.end).unwrap();
                let s = lisi::RsluAdapter::new();
                s.initialize(comm.dup().unwrap()).unwrap();
                s.set_start_row(range.start).unwrap();
                s.set_local_rows(range.len()).unwrap();
                s.set_global_cols(n).unwrap();
                s.set("session_tag", tag).unwrap();
                s.setup_matrix(
                    local.values(),
                    local.row_ptr(),
                    local.col_idx(),
                    SparseStruct::Csr,
                )
                .unwrap();
                s.setup_rhs(&rhs_full[range.clone()], 1).unwrap();
                let mut x = vec![0.0; range.len()];
                let mut status = [0.0; STATUS_LEN];
                s.solve(&mut x, &mut status).unwrap();
                status[STATUS_SETUP_SECONDS]
            };
            cold_s.push(setup_seconds(&tag));
            warm_s.push(setup_seconds(&tag));
        }

        if comm.rank() == 0 {
            Some((seq_s, batch_s, speedups, bit_identical, cold_s, warm_s))
        } else {
            None
        }
    });
    let (mut seq_s, mut batch_s, mut speedups, bit_identical, mut cold_s, mut warm_s) =
        out.into_iter().flatten().next().expect("rank 0 reports");

    let cold = median(&mut cold_s);
    let warm = median(&mut warm_s);
    println!(
        "{{\"workload\":\"adapter cg dist4 n={n} k={k}\",\"trials\":{trials},\
\"sequential_median_ns\":{:.1},\"batched_median_ns\":{:.1},\
\"speedup\":{:.4},\"bit_identical\":{bit_identical},\
\"setup\":{{\"cold_median_ns\":{:.1},\"warm_median_ns\":{:.1},\
\"warm_over_cold_pct\":{:.4}}}}}",
        median(&mut seq_s) * 1e9,
        median(&mut batch_s) * 1e9,
        median(&mut speedups),
        cold * 1e9,
        warm * 1e9,
        100.0 * warm / cold,
    );
}
