//! Paired causal-tracing overhead guard.
//!
//! Causal tracing (`probe::trace`) is compiled into every p2p send,
//! receive and span close. Disarmed, each hook is one relaxed atomic
//! load — that path rides along on *every* solve and must stay invisible
//! (<2% against the stored baseline, checked cross-process by
//! `scripts/bench_smoke.sh`). Armed, each hook stamps envelopes and
//! appends fixed-size trace records — an opt-in diagnostic mode whose
//! cost must still stay under 5% so tracing a production-shaped run
//! remains honest. A two-window A/B cannot resolve either bound on a
//! drifting shared machine, so like the other `*_guard` bins this one
//! alternates disarmed against armed in order-swapped pairs and reports
//! the median per-pair ratio on the dist4 fused-reduction CG workload
//! (the allreduce- and halo-heavy path where every hook fires).
//!
//! Output: one JSON object on stdout; consumed by `scripts/bench_smoke.sh`
//! into `BENCH_trace_overhead.json`.

use std::hint::black_box;
use std::time::Instant;

use rcomm::Universe;
use rkrylov::{Ksp, KspConfig, KspType, MatOperator, PcType};
use rsparse::{generate, BlockRowPartition, CsrMatrix, DistCsrMatrix, DistVector};

fn fused_cg_workload(a: &CsrMatrix, b: &[f64]) -> f64 {
    Universe::run(4, |comm| {
        let part = BlockRowPartition::even(a.rows(), comm.size());
        let da = DistCsrMatrix::from_global(comm, part.clone(), a).unwrap();
        let op = MatOperator::new(da);
        let db = DistVector::from_global(part.clone(), comm.rank(), b).unwrap();
        let mut dx = DistVector::zeros(part, comm.rank());
        let ksp = Ksp::new(KspConfig {
            ksp_type: KspType::Cg,
            pc_type: PcType::None,
            // Fixed work: 40 fused-reduction iterations, no early exit.
            rtol: 0.0,
            atol: 0.0,
            maxits: 40,
            keep_history: false,
            fused_reductions: true,
            ..KspConfig::default()
        })
        .unwrap();
        let r = ksp.solve(comm, &op, &db, &mut dx).unwrap();
        r.final_residual
    })[0]
}

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Run the workload in alternating disarmed/armed pairs and return
/// `(disarmed_median_s, armed_median_s, overhead_pct)`.
fn paired(trials: usize, mut work: impl FnMut() -> f64) -> (f64, f64, f64) {
    let mut sink = 0.0;
    for _ in 0..2 {
        sink += work(); // warm-up
    }
    let mut off_s = Vec::with_capacity(trials);
    let mut on_s = Vec::with_capacity(trials);
    let mut ratios = Vec::with_capacity(trials);
    for t in 0..trials {
        let on_first = t % 2 == 1;
        let mut pair = [0.0f64; 2]; // [disarmed, armed]
        for step in 0..2 {
            let on = (step == 1) != on_first;
            probe::trace::set_armed(on);
            // Drop the previous window's trace records so the armed path
            // always pays the full append cost instead of bouncing off a
            // saturated budget (the steady state a user would trace in).
            probe::reset();
            let t0 = Instant::now();
            sink += work();
            sink += work();
            pair[usize::from(on)] = t0.elapsed().as_secs_f64() / 2.0;
        }
        off_s.push(pair[0]);
        on_s.push(pair[1]);
        ratios.push(pair[1] / pair[0]);
    }
    probe::trace::set_armed(false); // restore the default
    black_box(sink);
    let pct = 100.0 * (median(&mut ratios) - 1.0);
    (median(&mut off_s), median(&mut on_s), pct)
}

fn main() {
    let trials: usize = std::env::var("TRACE_GUARD_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(80);
    let a = generate::laplacian_2d(200);
    let b = vec![1.0; a.rows()];
    let (off, on, pct) = paired(trials, || fused_cg_workload(&a, &b));
    println!(
        "{{\"trials\":{trials},\
\"fused_cg\":{{\"workload\":\"dist4 m=200 fused cg 40 its\",\
\"disarmed_median_ns\":{:.1},\"armed_median_ns\":{:.1},\"overhead_pct\":{pct:.4}}}}}",
        off * 1e9,
        on * 1e9,
    );
}
