//! Paired solve-ledger overhead guard.
//!
//! The ledger machinery rides along on *every* adapter solve: model
//! registration at plan time, the `armed()` check at solve entry, and —
//! when armed — forced span collection plus the rank-0 assemble/publish.
//! Disarmed, all of that must stay invisible (<2% against the stored
//! baseline, checked cross-process by `scripts/bench_smoke.sh`); armed,
//! the cost is an opt-in diagnostic and is reported for the record. A
//! two-window A/B cannot resolve a 2% bound on a drifting shared
//! machine, so like the other `*_guard` bins this one alternates
//! disarmed against armed in order-swapped pairs and reports median
//! per-pair ratios on a 4-rank CG+ILU(0) adapter solve — the exact
//! workload the ledger acceptance test instruments.
//!
//! Output: one JSON object on stdout; consumed by `scripts/bench_smoke.sh`
//! into `BENCH_ledger_overhead.json`.

use std::hint::black_box;
use std::time::Instant;

use lisi::{SparseSolverPort, RkspAdapter, STATUS_LEN};
use rcomm::Universe;
use rsparse::{generate, BlockRowPartition, CsrMatrix};

fn adapter_cg_workload(a: &CsrMatrix, b: &[f64]) -> f64 {
    let n = a.rows();
    Universe::run(4, |comm| {
        let part = BlockRowPartition::even(n, comm.size());
        let range = part.range(comm.rank());
        let local = a.row_block(range.start, range.end).unwrap();
        let solver = RkspAdapter::new();
        solver.initialize(comm.dup().unwrap()).unwrap();
        solver.set_start_row(range.start).unwrap();
        solver.set_local_rows(range.len()).unwrap();
        solver.set_global_cols(n).unwrap();
        solver.set("solver", "cg").unwrap();
        solver.set("preconditioner", "ilu").unwrap();
        solver.set("tol", "1e-10").unwrap();
        solver
            .setup_matrix(
                local.values(),
                local.row_ptr(),
                local.col_idx(),
                lisi::SparseStruct::Csr,
            )
            .unwrap();
        solver.setup_rhs(&b[range.clone()], 1).unwrap();
        let mut x = vec![0.0; range.len()];
        let mut status = [0.0; STATUS_LEN];
        solver.solve(&mut x, &mut status).unwrap();
        status[2]
    })[0]
}

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Run the workload in alternating disarmed/armed pairs and return
/// `(disarmed_median_s, armed_median_s, overhead_pct)`.
fn paired(trials: usize, dest: &str, mut work: impl FnMut() -> f64) -> (f64, f64, f64) {
    let mut sink = 0.0;
    for _ in 0..2 {
        sink += work(); // warm-up
    }
    let mut off_s = Vec::with_capacity(trials);
    let mut on_s = Vec::with_capacity(trials);
    let mut ratios = Vec::with_capacity(trials);
    for t in 0..trials {
        let on_first = t % 2 == 1;
        let mut pair = [0.0f64; 2]; // [disarmed, armed]
        for step in 0..2 {
            let on = (step == 1) != on_first;
            probe::ledger::set_destination(if on { dest } else { "off" });
            probe::reset();
            let t0 = Instant::now();
            sink += work();
            sink += work();
            pair[usize::from(on)] = t0.elapsed().as_secs_f64() / 2.0;
        }
        off_s.push(pair[0]);
        on_s.push(pair[1]);
        ratios.push(pair[1] / pair[0]);
    }
    probe::ledger::clear_destination(); // restore the default
    black_box(sink);
    let pct = 100.0 * (median(&mut ratios) - 1.0);
    (median(&mut off_s), median(&mut on_s), pct)
}

fn main() {
    let trials: usize = std::env::var("LEDGER_GUARD_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let dir = std::env::temp_dir().join(format!("ledger_guard_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir for armed-window ledgers");
    let dest = dir.join("solve_ledger.json");
    let a = generate::laplacian_2d(120);
    let b = vec![1.0; a.rows()];
    let (off, on, pct) =
        paired(trials, dest.to_str().unwrap(), || adapter_cg_workload(&a, &b));
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "{{\"trials\":{trials},\
\"adapter_cg\":{{\"workload\":\"dist4 m=120 rksp cg+ilu\",\
\"disarmed_median_ns\":{:.1},\"armed_median_ns\":{:.1},\"overhead_pct\":{pct:.4}}}}}",
        off * 1e9,
        on * 1e9,
    );
}
