//! Regenerate the paper's Table 1: computing times of the RKSP (PETSc
//! stand-in) component with and without the LISI interface, on 8
//! processors, over the paper's five problem sizes.
//!
//! ```text
//! cargo run -p lisi-bench --release --bin table1 [-- --quick]
//! ```
//!
//! `--quick` runs smaller grids (m = 25..100) with fewer repetitions for
//! a fast sanity pass.

use lisi_bench::tables::{format_table1, table1_rows};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (grids, reps) = if quick {
        (vec![25usize, 50, 75, 100], 3)
    } else {
        (rmesh::PAPER_GRID_SIZES.to_vec(), 10)
    };
    let processors = 8;
    eprintln!(
        "Table 1 reproduction: RKSP component, {processors} ranks, grids {grids:?}, {reps} runs each"
    );
    // `RSPARSE_FORMAT` (csr|sell|bcsr|auto) picks the SpMV storage
    // format, mirroring `RSPARSE_THREADS`; all formats are bit-identical
    // so only the timings change.
    eprintln!("spmv format policy: {}", rsparse::autotune::active_policy().name());
    // Default the probe to the summary sink so the per-rank breakdown
    // below always prints; RSPARSE_PROBE=json|chrome overrides.
    let mode = match probe::mode() {
        probe::ProbeMode::Off => probe::ProbeMode::Summary,
        m => m,
    };
    probe::set_mode(mode);
    probe::reset();
    let rows = table1_rows(&grids, processors, reps);
    println!("{}", format_table1(&rows));
    let reports = probe::aggregate();
    println!(
        "per-rank setup/solve/port-overhead breakdown (cumulative over all grids and reps, probe={}):",
        mode.name()
    );
    print!("{}", probe::render_breakdown(&reports));
    if mode == probe::ProbeMode::Json {
        print!("{}", probe::render_jsonl(&reports));
    }
    if mode == probe::ProbeMode::Chrome {
        probe::write_chrome_trace("probe_trace.json").expect("write probe_trace.json");
        eprintln!("chrome trace written to probe_trace.json (load in chrome://tracing)");
    }
    if mode == probe::ProbeMode::Flight {
        print!("{}", probe::render_flight());
    }
    // Non-empty only when causal tracing was armed (RSPARSE_TRACE=1).
    print!("{}", probe::critpath::render_latest());
    println!();
    println!("paper reference (PETSc on 8 cluster nodes):");
    println!("| 12300  | 0.086   | 0.070     | +0.016/18.61     | 36    |");
    println!("| 49600  | 0.189   | 0.144     | +0.045/23.73     | 67    |");
    println!("| 199200 | 0.475   | 0.428     | +0.047/9.86      | 108   |");
    println!("| 448800 | 1.283   | 1.265     | +0.018/1.36      | 165   |");
    println!("| 798400 | 2.585   | 2.562     | +0.023/0.90      | 221   |");
}
