//! Table/figure generation: the paper's Table 1 and Figure 5, row by row
//! and point by point.

use rcomm::Universe;

use crate::harness::{measure_pair, Package};
use crate::workload::paper_workload;

/// One row of the paper's Table 1: "Computing Times of PETSc Component
/// with and without the LISI interface".
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Problem nonzeros (first column).
    pub nnz: usize,
    /// Time through the CCA/LISI component (seconds).
    pub cca_seconds: f64,
    /// Time through the native API (seconds).
    pub non_cca_seconds: f64,
    /// Absolute overhead (seconds).
    pub overhead_seconds: f64,
    /// Overhead as a percentage of the CCA time (the paper divides by
    /// the second column).
    pub overhead_percent: f64,
    /// Iterations (last column).
    pub iterations: usize,
}

/// Regenerate Table 1: the RKSP (PETSc stand-in) component on
/// `processors` ranks over the paper's grid sizes, `reps` runs each.
pub fn table1_rows(grid_sizes: &[usize], processors: usize, reps: usize) -> Vec<Table1Row> {
    grid_sizes
        .iter()
        .map(|&m| {
            let w = paper_workload(m);
            let out = Universe::run(processors, |comm| {
                measure_pair(comm, Package::Rksp, &w, reps)
            });
            let (native, cca, iters) = out[0];
            let overhead = cca - native;
            Table1Row {
                nnz: w.nnz(),
                cca_seconds: cca,
                non_cca_seconds: native,
                overhead_seconds: overhead,
                overhead_percent: 100.0 * overhead / cca,
                iterations: iters,
            }
        })
        .collect()
}

/// Render rows in the paper's format.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    s.push_str("| nnz    | CCA(s)  | NonCCA(s) | Overhead(s)/(%)  | Iters |\n");
    s.push_str("|--------|---------|-----------|------------------|-------|\n");
    for r in rows {
        s.push_str(&format!(
            "| {:<6} | {:<7.3} | {:<9.3} | {:+.3}/{:<8.2} | {:<5} |\n",
            r.nnz,
            r.cca_seconds,
            r.non_cca_seconds,
            r.overhead_seconds,
            r.overhead_percent,
            r.iterations
        ));
    }
    s
}

/// One point of Figure 5: a package at a processor count, both paths.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure5Point {
    /// The package (curve triple).
    pub package: Package,
    /// Processor (rank) count.
    pub processors: usize,
    /// CCA-path seconds (the "o" curve).
    pub cca_seconds: f64,
    /// Native-path seconds (the "+" curve).
    pub non_cca_seconds: f64,
    /// Iterations, for the record.
    pub iterations: usize,
}

/// Regenerate Figure 5: all three packages at each processor count on the
/// paper's nnz = 199200 problem (m = 200), or a smaller `m` for quick
/// runs.
pub fn figure5_series(m: usize, processor_counts: &[usize], reps: usize) -> Vec<Figure5Point> {
    let w = paper_workload(m);
    let mut points = Vec::new();
    for &package in &Package::ALL {
        for &p in processor_counts {
            let out = Universe::run(p, |comm| measure_pair(comm, package, &w, reps));
            let (native, cca, iters) = out[0];
            points.push(Figure5Point {
                package,
                processors: p,
                cca_seconds: cca,
                non_cca_seconds: native,
                iterations: iters,
            });
        }
    }
    points
}

/// Render the Figure 5 series as aligned text.
pub fn format_figure5(points: &[Figure5Point]) -> String {
    let mut s = String::new();
    s.push_str("package  procs  CCA(s)      NonCCA(s)   overhead(%)  iters\n");
    for pt in points {
        let over = 100.0 * (pt.cca_seconds - pt.non_cca_seconds) / pt.cca_seconds;
        s.push_str(&format!(
            "{:<8} {:<6} {:<11.4} {:<11.4} {:<12.2} {}\n",
            pt.package.name(),
            pt.processors,
            pt.cca_seconds,
            pt.non_cca_seconds,
            over,
            pt.iterations
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_holds_on_small_sizes() {
        // Scaled-down Table 1 (tests must stay fast): the structural
        // claims — positive times, small absolute overhead, iterations
        // growing with size — must already show.
        let rows = table1_rows(&[12, 24], 2, 2);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.cca_seconds > 0.0 && r.non_cca_seconds > 0.0);
            assert_eq!(r.overhead_seconds, r.cca_seconds - r.non_cca_seconds);
        }
        assert!(rows[1].iterations >= rows[0].iterations, "{rows:?}");
        assert!(rows[1].cca_seconds > rows[0].cca_seconds, "{rows:?}");
        let text = format_table1(&rows);
        assert!(text.contains("nnz"));
        assert!(text.contains("Iters"));
    }

    #[test]
    fn figure5_covers_all_packages_and_counts() {
        let pts = figure5_series(10, &[1, 2], 1);
        assert_eq!(pts.len(), 6);
        for pt in &pts {
            assert!(pt.cca_seconds > 0.0 && pt.non_cca_seconds > 0.0);
        }
        let text = format_figure5(&pts);
        assert!(text.contains("RKSP"));
        assert!(text.contains("RAztec"));
        assert!(text.contains("RSLU"));
    }
}
